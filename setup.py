"""Legacy setup shim: the sandbox lacks the `wheel` package, so PEP 660
editable installs are unavailable; `pip install -e .` falls back to this."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "FedProphet (MLSys 2025) reproduction: memory-efficient federated "
        "adversarial training via robust and consistent cascade learning."
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.22", "scipy>=1.8"],
)
