"""Robustness evaluation deep-dive: comparing attacks on one model.

Trains a model two ways (standard vs. adversarial) and evaluates both
against the full attack arsenal — FGSM, PGD at several step counts, APGD,
and the AutoAttack-lite worst-case ensemble — reproducing the classic
adversarial-training picture the paper's evaluation methodology rests on:

* standard training: high clean accuracy, collapses under any attack;
* adversarial training: a few points of clean accuracy traded for large
  robustness gains; stronger attacks (more steps, APGD, ensembles) only
  ever lower measured robustness.

Run:  python examples/robustness_evaluation.py
"""

import numpy as np

from repro.attacks import (
    ModelWithLoss,
    PGDConfig,
    apgd_attack,
    auto_attack_lite,
    fgsm_attack,
    pgd_attack,
)
from repro.data import make_cifar10_like
from repro.flsim.local import adversarial_local_train, standard_local_train
from repro.models import build_cnn
from repro.utils import format_table

EPS = 8.0 / 255.0
SEED = 0


def train_pair(task):
    rng_model = np.random.default_rng(SEED)
    st_model = build_cnn(3, task.num_classes, task.in_shape, base_channels=12, rng=rng_model)
    at_model = build_cnn(
        3, task.num_classes, task.in_shape, base_channels=12,
        rng=np.random.default_rng(SEED),
    )
    for ep in range(6):
        standard_local_train(
            st_model, task.train, 40, 32, lr=0.05, rng=np.random.default_rng(ep)
        )
        adversarial_local_train(
            at_model, task.train, 40, 32, lr=0.05,
            pgd=PGDConfig(eps=EPS, steps=3), rng=np.random.default_rng(ep),
        )
    return st_model, at_model


def attack_suite(model, x, y, rng):
    model.eval()
    mwl = ModelWithLoss(model)

    def acc(inputs):
        return float((mwl.logits(inputs).argmax(axis=1) == y).mean())

    return {
        "clean": acc(x),
        "FGSM": acc(fgsm_attack(mwl, x, y, EPS)),
        "PGD-5": acc(pgd_attack(mwl, x, y, PGDConfig(eps=EPS, steps=5), rng=rng)),
        "PGD-20": acc(pgd_attack(mwl, x, y, PGDConfig(eps=EPS, steps=20), rng=rng)),
        "APGD-20": acc(apgd_attack(mwl, x, y, EPS, steps=20, rng=rng)),
        "AA-lite": acc(auto_attack_lite(mwl, x, y, EPS, steps=20, rng=rng)),
    }


def main() -> None:
    task = make_cifar10_like(image_size=8, train_per_class=100, test_per_class=30, seed=SEED)
    st_model, at_model = train_pair(task)

    rng = np.random.default_rng(SEED)
    x, y = task.test.x[:200], task.test.y[:200]
    st = attack_suite(st_model, x, y, rng)
    at = attack_suite(at_model, x, y, rng)

    attacks = list(st.keys())
    print()
    print(format_table(
        ["attack", "standard training", "adversarial training"],
        [(a, f"{st[a]:.2%}", f"{at[a]:.2%}") for a in attacks],
        title=f"Accuracy under attack (eps = 8/255, n = {len(y)})",
    ))
    print(
        "\nrobustness gap (PGD-20): "
        f"ST {st['PGD-20']:.2%} vs AT {at['PGD-20']:.2%} "
        f"(+{at['PGD-20'] - st['PGD-20']:.2%} from adversarial training)"
    )


if __name__ == "__main__":
    main()
