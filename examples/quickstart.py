"""Quickstart: adversarial training and evaluation with the repro library.

Builds a small CNN on a synthetic CIFAR-10-like task, adversarially trains
it (PGD-AT, Madry et al.), and evaluates clean / PGD / AutoAttack accuracy
— the three metrics every table of the FedProphet paper reports.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.attacks import PGDConfig
from repro.data import make_cifar10_like
from repro.flsim.local import adversarial_local_train
from repro.metrics import evaluate_model
from repro.models import build_cnn

SEED = 0
EPS = 8.0 / 255.0


def main() -> None:
    task = make_cifar10_like(image_size=8, train_per_class=100, test_per_class=25, seed=SEED)
    print(f"task: {task.name}, {len(task.train)} train / {len(task.test)} test samples")

    model = build_cnn(3, task.num_classes, task.in_shape, base_channels=12,
                      rng=np.random.default_rng(SEED))
    print(f"model: {model.name}, {model.num_parameters():,} parameters, "
          f"{len(model.atoms)} atoms: {model.atom_names()}")

    pgd = PGDConfig(eps=EPS, steps=3, norm="linf")
    for epoch in range(6):
        loss = adversarial_local_train(
            model, task.train, iterations=40, batch_size=32, lr=0.05,
            pgd=pgd, rng=np.random.default_rng(SEED + epoch),
        )
        print(f"epoch {epoch + 1}: adversarial training loss = {loss:.3f}")

    result = evaluate_model(
        model, task.test, eps=EPS, pgd_steps=10, with_autoattack=True,
        rng=np.random.default_rng(SEED),
    )
    print(
        f"\nfinal: clean acc = {result.clean_acc:.2%}, "
        f"PGD-10 acc = {result.pgd_acc:.2%}, AutoAttack acc = {result.aa_acc:.2%}"
    )
    assert result.pgd_acc <= result.clean_acc + 1e-9


if __name__ == "__main__":
    main()
