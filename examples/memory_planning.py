"""Edge-deployment memory planning with the hardware toolkit.

A downstream scenario the paper's server-side machinery enables: given a
model and a fleet of heterogeneous edge devices, decide (a) whether each
device can train the model without memory swapping, (b) how Algorithm 1
would partition the model for the weakest device, and (c) the expected
per-round latency with and without FedProphet's partitioning.

Everything here is analytic, so it runs at the paper's full VGG16 /
ResNet34 scale instantly.

Run:  python examples/memory_planning.py
"""

import numpy as np

from repro.core.partitioner import (
    full_model_mem_bytes,
    partition_model,
    partition_summary,
)
from repro.hardware import (
    DeviceSampler,
    LatencyModel,
    MemoryModel,
    device_pool,
    training_flops_per_iteration,
)
from repro.models import build_vgg
from repro.utils import format_table

MB = 1024**2


def main() -> None:
    model = build_vgg("vgg16", 10, (3, 32, 32), rng=np.random.default_rng(0))
    mem = MemoryModel(batch_size=64)
    r_max = full_model_mem_bytes(model, mem)
    print(f"VGG16 training footprint (B=64): {r_max / MB:.0f} MB\n")

    # (a) which devices can train without swapping, at peak and degraded?
    rows = []
    for dev in device_pool("cifar10"):
        degraded = 0.2 * dev.mem_bytes  # worst-case co-running apps
        rows.append(
            (
                dev.name,
                f"{dev.mem_gb} GB",
                "yes" if dev.mem_bytes >= r_max else "no",
                "yes" if degraded >= r_max else "no",
            )
        )
    print(format_table(
        ["device", "peak mem", "fits at peak", "fits degraded (20%)"],
        rows, title="Device feasibility for end-to-end PGD-AT",
    ))

    # (b) Algorithm 1 partition for a 60 MB budget (weakest degraded device).
    partition = partition_model(model, 60 * MB, mem)
    rows = [
        (r["module"], ", ".join(r["atoms"]), f"{r['mem_bytes'] / MB:.1f} MB")
        for r in partition_summary(model, partition, mem)
    ]
    print()
    print(format_table(
        ["module", "layers", "MemReq"], rows,
        title="Algorithm 1 partition at R_min = 60 MB",
    ))

    # (c) expected per-round latency: whole model w/ swap vs largest module.
    lat = LatencyModel()
    flops = training_flops_per_iteration(model, (3, 32, 32), 64, pgd_steps=10)
    sampler = DeviceSampler(device_pool("cifar10"), "balanced")
    rng = np.random.default_rng(1)
    states = sampler.sample_many(200, rng)
    whole = [lat.local_training_cost(s, flops, r_max, 30, 10).total_s for s in states]
    biggest = max(r["mem_bytes"] for r in partition_summary(model, partition, mem))
    module_flops = flops / partition.num_modules  # rough per-module share
    parts = [lat.local_training_cost(s, module_flops, biggest, 30, 10).total_s for s in states]
    print()
    print(format_table(
        ["strategy", "median round (s)", "p90 round (s)"],
        [
            ("whole model (swap allowed)", f"{np.median(whole):.0f}", f"{np.percentile(whole, 90):.0f}"),
            ("largest FedProphet module", f"{np.median(parts):.0f}", f"{np.percentile(parts, 90):.0f}"),
        ],
        title="Expected local-training latency across the device fleet",
    ))


if __name__ == "__main__":
    main()
