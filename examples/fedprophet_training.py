"""FedProphet end-to-end: memory-efficient federated adversarial training.

The paper's full pipeline on a scaled workload:

1. a VGG backbone is partitioned into memory-constrained modules (Alg. 1),
2. one hundred simulated edge devices (paper Table 5 pool) participate in
   non-IID federated adversarial cascade learning,
3. the server coordinates perturbation budgets (APA) and module
   assignments (DMA),
4. the final backbone is evaluated against PGD and an AutoAttack surrogate.

Run:  python examples/fedprophet_training.py
"""

import numpy as np

from repro.core import FedProphet, FedProphetConfig
from repro.data import make_cifar10_like
from repro.hardware import DEVICE_POOL_CIFAR10, DeviceSampler
from repro.models import build_vgg

SHAPE = (3, 8, 8)


def main() -> None:
    task = make_cifar10_like(image_size=SHAPE[1], train_per_class=80, test_per_class=20)
    builder = lambda rng: build_vgg("vgg11", 10, SHAPE, width_mult=0.25, rng=rng)

    config = FedProphetConfig(
        num_clients=20, clients_per_round=4, local_iters=5, batch_size=32,
        lr=0.08, rounds=40, rounds_per_module=10, patience=6,
        train_pgd_steps=2, eval_pgd_steps=5, eval_every=0,
        r_min_fraction=0.35, mu=1e-5, val_samples=80, val_pgd_steps=3, seed=0,
    )
    sampler = DeviceSampler(DEVICE_POOL_CIFAR10, heterogeneity="balanced")
    fed = FedProphet(task, builder, config, device_sampler=sampler)

    print(f"backbone: {fed.global_model.name} with {len(fed.global_model.atoms)} atoms")
    print(f"R_max = {fed.r_max / 2**20:.1f} MB, R_min = {fed.r_min / 2**20:.1f} MB")
    print(f"partition into {fed.partition.num_modules} modules: {fed.partition.ranges}")

    fed.run(verbose=True)

    print("\nper-module training stages:")
    for stage in fed.stage_results:
        print(
            f"  module {stage.module + 1}: {stage.rounds} rounds, "
            f"clean {stage.final_clean_acc:.2%} / adv {stage.final_adv_acc:.2%}, "
            f"eps* = {stage.eps_star:.3f}"
        )

    result = fed.final_eval(max_samples=150)
    print(
        f"\nfinal backbone: clean {result.clean_acc:.2%}, "
        f"PGD {result.pgd_acc:.2%}, AA {result.aa_acc:.2%}; "
        f"simulated training time {fed.clock_s:.1f}s "
        f"(compute {fed.total_compute_s:.1f}s + access {fed.total_access_s:.1f}s)"
    )


if __name__ == "__main__":
    main()
