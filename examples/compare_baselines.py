"""Compare FedProphet against memory-efficient FAT baselines.

Runs jFAT (the accuracy upper bound that needs memory swapping),
FedRolex-AT (the strongest partial-training baseline) and FedProphet on
the same non-IID workload and device fleet, then prints the Table-2-style
accuracy columns and the Figure-7-style simulated time breakdown.

Run:  python examples/compare_baselines.py        (~2-3 minutes)
"""

import time

import numpy as np

from repro.baselines import FedRolexAT, JointFAT
from repro.core import FedProphet, FedProphetConfig
from repro.data import make_cifar10_like
from repro.flsim import FLConfig
from repro.hardware import DeviceSampler, Device, device_pool, mem_req_bytes, forward_flops
from repro.models import build_vgg
from repro.utils import format_table

SHAPE = (3, 8, 8)
ROUNDS = 30


def scaled_pool(builder):
    """Shrink the paper's device pool to this workload's footprint so the
    memory-pressure regime (and hence swapping) matches the paper's."""
    ours = builder(np.random.default_rng(0))
    full = build_vgg("vgg16", 10, (3, 32, 32))
    mem_ratio = mem_req_bytes(ours, SHAPE, 32) / mem_req_bytes(full, (3, 32, 32), 64)
    flops_ratio = forward_flops(ours, SHAPE) / forward_flops(full, (3, 32, 32))
    return [
        Device(d.name, d.perf_tflops * flops_ratio, d.mem_gb * mem_ratio, d.io_gbps * mem_ratio)
        for d in device_pool("cifar10")
    ]


def main() -> None:
    task = make_cifar10_like(image_size=SHAPE[1], train_per_class=100, test_per_class=25)
    builder = lambda rng: build_vgg("vgg11", 10, SHAPE, width_mult=0.25, rng=rng)
    sampler = DeviceSampler(scaled_pool(builder), "balanced")

    common = dict(
        num_clients=20, clients_per_round=4, local_iters=6, batch_size=32,
        lr=0.08, train_pgd_steps=2, eval_pgd_steps=5, eval_every=0,
        eval_max_samples=150, seed=0,
    )
    experiments = {
        "jFAT": JointFAT(task, builder, FLConfig(rounds=ROUNDS, **common), device_sampler=sampler),
        "FedRolex-AT": FedRolexAT(task, builder, FLConfig(rounds=ROUNDS, **common), device_sampler=sampler),
        "FedProphet": FedProphet(
            task, builder,
            FedProphetConfig(rounds=3 * ROUNDS, rounds_per_module=12, patience=8,
                             r_min_fraction=0.35, val_samples=80, val_pgd_steps=3, **common),
            device_sampler=sampler,
        ),
    }

    rows = []
    for name, exp in experiments.items():
        t0 = time.time()
        exp.run()
        res = exp.final_eval(max_samples=150)
        rows.append(
            (
                name,
                f"{res.clean_acc:.2%}",
                f"{res.pgd_acc:.2%}",
                f"{res.aa_acc:.2%}",
                f"{exp.total_compute_s:.3g}",
                f"{exp.total_access_s:.3g}",
                f"{time.time() - t0:.0f}s",
            )
        )
    print()
    print(format_table(
        ["method", "clean", "PGD", "AA", "sim compute (s)", "sim access (s)", "wall"],
        rows, title="FedProphet vs baselines (scaled CIFAR-like workload)",
    ))


if __name__ == "__main__":
    main()
