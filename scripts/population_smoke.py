#!/usr/bin/env python
"""Population-engine smoke: O(cohort) scale and lazy/eager determinism.

The CI ``population-smoke`` job runs this script.  It checks the two
load-bearing claims of the population engine (``docs/architecture.md``):

1. a **1,000,000-client** lazy virtual-scheme run (cohort 10) completes
   in seconds — setup must not grow with the population, and the number
   of clients ever materialised must stay within the LRU capacity;
2. **lazy ≡ eager**: on a small population, a lazily materialised run is
   bit-identical to the eager one, sync and pipelined-async
   (``pipeline_depth=2``), and the bounded cache reproduces the
   unbounded one exactly.
"""

import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import numpy as np  # noqa: E402

from repro.baselines import JointFAT  # noqa: E402
from repro.data import make_cifar10_like  # noqa: E402
from repro.flsim import FLConfig  # noqa: E402
from repro.models import build_cnn  # noqa: E402

TASK = make_cifar10_like(image_size=8, train_per_class=40, test_per_class=10, seed=0)


def _builder(rng):
    return build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng)


def _run(materialisation, cache_size=None, mode="sync", num_clients=8,
         scheme="auto", rounds=3):
    cfg = FLConfig(
        num_clients=num_clients, clients_per_round=4, local_iters=3,
        batch_size=8, lr=0.02, rounds=rounds, train_pgd_steps=2,
        eval_pgd_steps=2, eval_every=0, seed=0,
        aggregation_mode=mode,
        pipeline_depth=2 if mode == "async" else 1,
        population_scheme=scheme,
        client_materialisation=materialisation,
        client_cache_size=cache_size,
    )
    exp = JointFAT(TASK, _builder, cfg)
    exp.run()
    return exp.global_model.state_dict()


def _identical(a, b):
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


def main() -> int:
    failures = []

    # 1. Population scale: a million-client run must be O(cohort).
    cfg = FLConfig(
        num_clients=1_000_000, clients_per_round=10, local_iters=2,
        batch_size=8, lr=0.02, rounds=2, train_pgd_steps=2,
        eval_pgd_steps=2, eval_every=0, seed=0,
        population_scheme="virtual", client_materialisation="lazy",
        samples_per_client=32,
    )
    t0 = time.perf_counter()
    exp = JointFAT(TASK, _builder, cfg)
    setup_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    exp.run()
    run_s = time.perf_counter() - t0
    stats = exp.clients.stats()
    capacity = exp.clients.cache_capacity
    print(
        f"[population-smoke] 1M clients: setup {setup_s:.3f}s, "
        f"run {run_s:.3f}s, materialised peak {stats['peak_live']} "
        f"(cache cap {capacity}), total_samples {exp.total_samples:,}"
    )
    if setup_s > 5.0:
        failures.append(f"1M-client setup took {setup_s:.1f}s (> 5s)")
    if capacity is not None and stats["peak_live"] > capacity:
        failures.append(
            f"1M-client run materialised {stats['peak_live']} clients, "
            f"over the cache capacity {capacity}"
        )

    # 2. Determinism: lazy == eager, bounded cache == unbounded.
    for mode in ("sync", "async"):
        eager = _run("eager", mode=mode)
        lazy = _run("lazy", mode=mode)
        ok = _identical(eager, lazy)
        print(f"[population-smoke] {mode}: eager == lazy: {ok}")
        if not ok:
            failures.append(f"{mode}: lazy run diverges from eager")

    tiny = _run("lazy", cache_size=4)
    unbounded = _run("lazy", cache_size=10**9)
    ok = _identical(tiny, unbounded)
    print(f"[population-smoke] cache_size=4 == unbounded: {ok}")
    if not ok:
        failures.append("bounded cache diverges from unbounded")

    virtual_eager = _run("eager", scheme="virtual", num_clients=32)
    virtual_lazy = _run("lazy", scheme="virtual", num_clients=32)
    ok = _identical(virtual_eager, virtual_lazy)
    print(f"[population-smoke] virtual scheme: eager == lazy: {ok}")
    if not ok:
        failures.append("virtual scheme: lazy diverges from eager")

    if failures:
        print("[population-smoke] FAILED:\n  " + "\n  ".join(failures))
        return 1
    print("[population-smoke] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
