#!/usr/bin/env python
"""Markdown link checker for README.md + docs/ (stdlib only, no network).

Checks every ``[text](target)`` link in the repo's documentation:

* relative file targets must exist (checked against the repo root for
  README.md and against ``docs/`` for pages in it);
* ``#anchor`` fragments on relative targets (and intra-page anchors)
  must match a heading in the target file, using GitHub's slug rule
  (lowercase, punctuation stripped, spaces to dashes);
* ``http(s)`` and ``mailto:`` targets are recorded but not fetched — CI
  has no business depending on external uptime.

Exit status 0 when every link resolves, 1 otherwise (one line per broken
link).  Run directly or via the ``docs`` CI job:

    python scripts/check_md_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

# [text](target) — skips images' leading "!" capture-wise (same syntax),
# which is fine: image targets should resolve too.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces→dashes."""
    heading = re.sub(r"[`*_]", "", heading.strip()).lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def heading_slugs(path: Path) -> set:
    text = CODE_FENCE_RE.sub("", path.read_text())
    return {github_slug(m.group(1)) for m in HEADING_RE.finditer(text)}


def doc_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_file(path: Path) -> List[str]:
    errors: List[str] = []
    text = CODE_FENCE_RE.sub("", path.read_text())
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
                continue
        else:
            resolved = path
        if fragment and resolved.suffix == ".md":
            if github_slug(fragment) not in heading_slugs(resolved):
                errors.append(
                    f"{path.relative_to(REPO_ROOT)}: missing anchor -> {target}"
                )
    return errors


def main() -> int:
    files = doc_files()
    errors: List[str] = []
    checked = 0
    for path in files:
        errors.extend(check_file(path))
        checked += 1
    for line in errors:
        print(f"BROKEN: {line}")
    print(f"checked {checked} file(s): " + ", ".join(str(f.relative_to(REPO_ROOT)) for f in files))
    if errors:
        print(f"{len(errors)} broken link(s)")
        return 1
    print("all markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
