#!/usr/bin/env python
"""Replay smoke: SIGKILL a hard-mode run, resume it, then replay the journal.

The end-to-end exercise of the PR-10 replay contract, in CI's
``replay-smoke`` job:

1. record a journalled depth-2 async run with an **active fault plan and
   robust (median) aggregation** — checkpoints every round;
2. SIGKILL the recording subprocess mid-flight and resume it to
   completion (bit-identical weights/history/merge log vs the
   uninterrupted reference);
3. ``replay_run`` the resulting journal — resume folded — on the
   **serial** backend and again on the **thread** backend, asserting
   every event re-emits bit-for-bit with zero divergences.

Usage: ``python scripts/replay_smoke.py`` (also ``--child <journal>`` as
the subprocess entry point).
"""

import os
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import numpy as np  # noqa: E402

from repro.baselines import JointFAT  # noqa: E402
from repro.data import make_cifar10_like  # noqa: E402
from repro.flsim import FaultPlan, FLConfig, RunJournal  # noqa: E402
from repro.flsim.replay import replay_run  # noqa: E402
from repro.models import build_cnn  # noqa: E402

import resume_smoke  # noqa: E402 - reuse the kill/poll orchestration

ROUNDS = 8


def build_experiment(journal_path=None, checkpoint_every=0,
                     executor_backend="thread", round_parallelism=2):
    """Hard mode: depth-2 async + faults + median aggregation."""
    task = make_cifar10_like(
        image_size=8, train_per_class=40, test_per_class=10, seed=0
    )
    cfg = FLConfig(
        num_clients=6, clients_per_round=3, local_iters=4, batch_size=8,
        lr=0.02, rounds=ROUNDS, train_pgd_steps=2, eval_pgd_steps=2,
        eval_every=0, eval_max_samples=24, seed=0,
        executor_backend=executor_backend, round_parallelism=round_parallelism,
        aggregation_mode="async", max_staleness=2, pipeline_depth=2,
        aggregation_rule="median",
        fault_plan=FaultPlan(seed=7, dropout_prob=0.3, straggler_prob=0.2),
        journal_path=journal_path, checkpoint_every=checkpoint_every,
    )
    builder = lambda rng: build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng)
    return JointFAT(task, builder, cfg)


def _child(journal_path: str) -> int:
    exp = build_experiment(journal_path, checkpoint_every=1)
    exp.run()
    exp.close()
    return 0


def main() -> int:
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        return _child(sys.argv[2])

    print(f"reference: uninterrupted {ROUNDS}-round hard-mode run")
    ref = build_experiment()
    ref.run()
    ref_state = {k: v.copy() for k, v in ref.global_model.state_dict().items()}
    ref_alphas = [e.alpha for e in ref.async_log]
    ref.close()

    journal = os.path.join(tempfile.mkdtemp(prefix="replay-smoke-"), "run.jsonl")
    print("child: journalled hard-mode run, checkpoint every round")
    killed = _spawn_and_kill(journal)
    if killed:
        print(f"SIGKILLed child after "
              f"{resume_smoke.checkpoints_logged(journal)} checkpoints")
    else:
        print("note: child finished before the kill; replay still exercised")

    resumed = build_experiment(journal, checkpoint_every=1)
    resumed.resume(journal)
    final = resumed.global_model.state_dict()
    mismatched = [
        k for k in ref_state if not np.array_equal(ref_state[k], final[k])
    ]
    if mismatched:
        print(f"FAIL: resumed weights differ from reference: {mismatched}")
        return 1
    if len(resumed.history) != ROUNDS:
        print(f"FAIL: resumed history has {len(resumed.history)} records")
        return 1
    if [e.alpha for e in resumed.async_log] != ref_alphas:
        print("FAIL: resumed merge log differs from reference")
        return 1
    resumed.close()
    print("resume ok: bit-identical weights, history, merge log")

    for backend, workers in (("serial", 1), ("thread", 2)):
        report = replay_run(
            journal,
            lambda: build_experiment(
                executor_backend=backend, round_parallelism=workers
            ),
        )
        if report.rounds != ROUNDS:
            print(f"FAIL: replay on {backend} verified {report.rounds} rounds")
            return 1
        print(f"replay on {backend} x{workers}: {report.summary()}")

    events = RunJournal.read(journal)
    kinds = [e["kind"] for e in events]
    if kinds[-1] != "run_end":
        print(f"FAIL: journal lifecycle malformed: {kinds}")
        return 1
    print("replay smoke ok: zero divergent events on both backends")
    return 0


def _spawn_and_kill(journal_path: str) -> bool:
    """resume_smoke's kill orchestration, but spawning *this* script."""
    import signal
    import subprocess
    import time

    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    child = subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--child", journal_path],
        env=env,
    )
    deadline = time.monotonic() + resume_smoke.KILL_DEADLINE_S
    while time.monotonic() < deadline:
        if child.poll() is not None:
            return False
        if resume_smoke.checkpoints_logged(journal_path) >= \
                resume_smoke.KILL_AFTER_CHECKPOINTS:
            child.send_signal(signal.SIGKILL)
            child.wait()
            return True
        time.sleep(0.05)
    child.kill()
    child.wait()
    raise RuntimeError(
        f"no checkpoint appeared in {journal_path} within "
        f"{resume_smoke.KILL_DEADLINE_S}s"
    )


if __name__ == "__main__":
    sys.exit(main())
