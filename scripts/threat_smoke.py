#!/usr/bin/env python
"""Threat-layer smoke: determinism of a defended adversarial run.

The CI ``threat-smoke`` job runs this script.  It checks the two load-
bearing corners of the threat contract (``docs/threat-model.md``):

1. a **label-flip + Krum** run is bit-identical between the serial and
   thread backends (attacker selection and robust aggregation are pure
   functions of ``(seed, round, cid)``, never of scheduling);
2. an **inactive plan** (``byzantine_prob=0``) reproduces the clean run
   (no plan at all) bit for bit — the threat layer is free when off.

Both checks run sync and pipelined-async (``pipeline_depth=2``).
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import numpy as np  # noqa: E402

from repro.baselines import JointFAT  # noqa: E402
from repro.data import make_cifar10_like  # noqa: E402
from repro.flsim import FLConfig, ThreatPlan  # noqa: E402
from repro.models import build_cnn  # noqa: E402

TASK = make_cifar10_like(image_size=8, train_per_class=40, test_per_class=10, seed=0)


def _builder(rng):
    return build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng)


def _run(plan, rule, mode="sync", backend="serial", workers=None):
    cfg = FLConfig(
        num_clients=8, clients_per_round=4, local_iters=3, batch_size=8,
        lr=0.02, rounds=4, train_pgd_steps=2, eval_pgd_steps=2,
        eval_every=0, seed=0,
        executor_backend=backend, round_parallelism=workers,
        aggregation_mode=mode,
        pipeline_depth=2 if mode == "async" else 1,
        threat_plan=plan, aggregation_rule=rule,
    )
    exp = JointFAT(TASK, _builder, cfg)
    exp.run()
    return exp.global_model.state_dict()


def _identical(a, b):
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


def main() -> int:
    failures = []
    plan = ThreatPlan(seed=11, byzantine_prob=0.4, attack="label_flip")
    inactive = ThreatPlan(seed=11, byzantine_prob=0.0, attack="label_flip")
    for mode in ("sync", "async"):
        serial = _run(plan, "krum", mode=mode)
        thread = _run(plan, "krum", mode=mode, backend="thread", workers=4)
        ok = _identical(serial, thread)
        print(f"[threat-smoke] {mode}: label_flip+krum serial==thread4: {ok}")
        if not ok:
            failures.append(f"{mode}: serial vs thread mismatch")

        clean = _run(None, "fedavg", mode=mode)
        off = _run(inactive, "fedavg", mode=mode)
        ok = _identical(clean, off)
        print(f"[threat-smoke] {mode}: inactive plan == clean run: {ok}")
        if not ok:
            failures.append(f"{mode}: inactive plan diverges from clean run")

    if failures:
        print("[threat-smoke] FAILED:\n  " + "\n  ".join(failures))
        return 1
    print("[threat-smoke] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
