#!/usr/bin/env python
"""Staleness study: how attacks land under async pipelines, and what clipping bounds.

A ``model_replacement`` attacker boosts its delta by ``scale``.  Under
synchronous FedAvg the full boost enters the round average and the
poisoned server poisons the next round's training — drift compounds
catastrophically.  Under the cross-round async pipeline
(``pipeline_depth=2``) each update is merged with the FedAsync
``1/(1 + staleness)`` attenuation, which damps the boost but does not
remove it.  ``norm_clip`` measures each delta against the *merge-time*
server state, so a boosted update — fresh or stale — is clipped where
it lands.

One practical caveat this study pins down: **adaptive** clipping
(``clip_norm=None``, radius = the cohort's median delta norm) needs a
cohort.  Async merge events can be singletons, where the median of one
norm is that norm and nothing ever clips — async defences should set an
explicit ``clip_norm`` (here calibrated to the honest delta-norm range).

The study runs the 2×2 grid (sync / async ``pipeline_depth=2``) ×
(``fedavg`` / ``norm_clip``) and prints each cell's final parameter
distance from the matching clean run.  Asserted shape: ``norm_clip``
keeps the drift strictly below FedAvg's in both modes.

See ``docs/threat-model.md``.
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import numpy as np  # noqa: E402

from repro.baselines import JointFAT  # noqa: E402
from repro.data import make_cifar10_like  # noqa: E402
from repro.flsim import FLConfig, ThreatPlan  # noqa: E402
from repro.models import build_cnn  # noqa: E402

TASK = make_cifar10_like(image_size=8, train_per_class=40, test_per_class=10, seed=0)
PLAN = ThreatPlan(seed=5, byzantine_prob=0.3, attack="model_replacement", scale=25.0)
#: Explicit clip radius, calibrated to the honest per-client delta-norm
#: range of this workload (~0.8–3.5 over the first rounds).
CLIP_NORM = 2.0


def _builder(rng):
    return build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng)


def _run(plan, rule, mode):
    cfg = FLConfig(
        num_clients=10, clients_per_round=5, local_iters=3, batch_size=8,
        lr=0.02, rounds=6, train_pgd_steps=2, eval_pgd_steps=2,
        eval_every=0, seed=0, aggregation_mode=mode,
        pipeline_depth=2 if mode == "async" else 1, max_staleness=4,
        threat_plan=plan, aggregation_rule=rule,
        clip_norm=CLIP_NORM if rule == "norm_clip" else None,
    )
    exp = JointFAT(TASK, _builder, cfg)
    exp.run()
    return exp.global_model.state_dict()


def _distance(a, b):
    return float(
        np.sqrt(sum(float(((a[k] - b[k]) ** 2).sum()) for k in a))
    )


def main() -> int:
    drift = {}
    for mode in ("sync", "async"):
        clean = _run(None, "fedavg", mode)
        for rule in ("fedavg", "norm_clip"):
            d = _distance(_run(PLAN, rule, mode), clean)
            drift[(mode, rule)] = d
            print(f"[staleness-amplification] {mode:5s} {rule:9s} "
                  f"||attacked - clean|| = {d:.4f}")

    attenuated = drift[("async", "fedavg")] < drift[("sync", "fedavg")]
    print(f"[staleness-amplification] FedAsync 1/(1+s) attenuation damps "
          f"the undefended drift: {attenuated}")
    bounded = all(
        drift[(m, "norm_clip")] < drift[(m, "fedavg")] for m in ("sync", "async")
    )
    print(f"[staleness-amplification] norm_clip bounds the drift in both "
          f"modes: {bounded}")
    if not bounded:
        print("[staleness-amplification] FAILED: clipping did not reduce drift")
        return 1
    print("[staleness-amplification] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
