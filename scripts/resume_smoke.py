#!/usr/bin/env python
"""Kill-and-resume smoke: SIGKILL a journalled run, resume, expect bit-identity.

The assertions live in ``tests/test_resume_smoke.py`` (the CI
``resume-smoke`` job runs that pytest module, so failures produce pytest
diffs); this script keeps two roles:

* ``--child <journal>``: the subprocess entry point — a journalled run
  with per-round checkpoints that the orchestrator SIGKILLs mid-flight
  (both the test and the standalone mode spawn it);
* standalone (no args): a self-contained smoke run for manual use, the
  same checks as the test with print/exit-code reporting.

The run uses the async cross-round pipeline (``pipeline_depth=2``) on the
thread backend, so the kill lands while rounds are genuinely in flight —
the hardest case the checkpoint layer supports.
"""

import os
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import numpy as np  # noqa: E402

from repro.baselines import JointFAT  # noqa: E402
from repro.data import make_cifar10_like  # noqa: E402
from repro.flsim import FLConfig, RunJournal  # noqa: E402
from repro.models import build_cnn  # noqa: E402

ROUNDS = 8
KILL_AFTER_CHECKPOINTS = 2
KILL_DEADLINE_S = 300.0


def build_experiment(journal_path=None, checkpoint_every=0):
    """The smoke config: 8 async rounds, depth 2, thread x2."""
    task = make_cifar10_like(
        image_size=8, train_per_class=40, test_per_class=10, seed=0
    )
    cfg = FLConfig(
        num_clients=6, clients_per_round=3, local_iters=4, batch_size=8,
        lr=0.02, rounds=ROUNDS, train_pgd_steps=2, eval_pgd_steps=2,
        eval_every=0, eval_max_samples=24, seed=0,
        executor_backend="thread", round_parallelism=2,
        aggregation_mode="async", max_staleness=2, pipeline_depth=2,
        journal_path=journal_path, checkpoint_every=checkpoint_every,
    )
    builder = lambda rng: build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng)
    return JointFAT(task, builder, cfg)


def run_reference():
    """The uninterrupted run's final weights + merge-log alphas."""
    ref = build_experiment()
    ref.run()
    state = {k: v.copy() for k, v in ref.global_model.state_dict().items()}
    alphas = [e.alpha for e in ref.async_log]
    ref.close()
    return state, alphas


def checkpoints_logged(journal_path: str) -> int:
    if not os.path.exists(journal_path):
        return 0
    return sum(
        1 for e in RunJournal.read(journal_path) if e.get("kind") == "checkpoint"
    )


def spawn_and_kill(journal_path: str) -> bool:
    """Run the ``--child`` subprocess; SIGKILL it mid-run.

    Polls the journal until ``KILL_AFTER_CHECKPOINTS`` checkpoints have
    landed, then kills.  Returns True if the kill landed mid-run; False
    if the child outran the poll loop and finished (resume still must
    reproduce the reference from the last checkpoint, so the caller's
    checks stay meaningful either way).  Raises on deadline expiry with
    no checkpoint — that means the child never made progress.
    """
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    child = subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--child", journal_path],
        env=env,
    )
    deadline = time.monotonic() + KILL_DEADLINE_S
    while time.monotonic() < deadline:
        if child.poll() is not None:
            return False
        if checkpoints_logged(journal_path) >= KILL_AFTER_CHECKPOINTS:
            child.send_signal(signal.SIGKILL)
            child.wait()
            return True
        time.sleep(0.05)
    child.kill()
    child.wait()
    raise RuntimeError(
        f"no checkpoint appeared in {journal_path} within {KILL_DEADLINE_S}s"
    )


def _child(journal_path: str) -> int:
    exp = build_experiment(journal_path, checkpoint_every=1)
    exp.run()
    exp.close()
    return 0


def main() -> int:
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        return _child(sys.argv[2])

    print(f"reference: uninterrupted {ROUNDS}-round run (journal off)")
    ref_state, ref_alphas = run_reference()

    journal = os.path.join(tempfile.mkdtemp(prefix="resume-smoke-"), "run.jsonl")
    print("child: journalled run, checkpoint every round")
    if spawn_and_kill(journal):
        print(f"SIGKILLed child after {checkpoints_logged(journal)} checkpoints")
    else:
        print("note: child finished before the kill; resuming post-run")

    resumed = build_experiment(journal, checkpoint_every=1)
    resumed.resume(journal)
    final = resumed.global_model.state_dict()
    mismatched = [
        k for k in ref_state if not np.array_equal(ref_state[k], final[k])
    ]
    if mismatched:
        print(f"FAIL: resumed weights differ from reference: {mismatched}")
        return 1
    if len(resumed.history) != ROUNDS:
        print(f"FAIL: resumed history has {len(resumed.history)} records")
        return 1
    if [e.alpha for e in resumed.async_log] != ref_alphas:
        print("FAIL: resumed merge log differs from reference")
        return 1
    events = RunJournal.read(journal)
    kinds = [e["kind"] for e in events]
    if "resume" not in kinds or kinds[-1] != "run_end":
        print(f"FAIL: journal lifecycle malformed: {kinds}")
        return 1
    resumed.close()
    print(
        f"resume smoke ok: {ROUNDS} rounds, bit-identical weights + history "
        f"+ {len(resumed.async_log)} merge events after SIGKILL/resume"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
