"""Calibration: medium-scale comparison of jFAT / FedRolex-AT / FedProphet.

Used during development to choose benchmark scales; not part of the bench
suite.  Run: python scripts/calibrate.py
"""

import time

import numpy as np

from repro.baselines import FedRolexAT, JointFAT
from repro.core import FedProphet, FedProphetConfig
from repro.data import make_cifar10_like
from repro.flsim import FLConfig
from repro.hardware import DEVICE_POOL_CIFAR10, DeviceSampler
from repro.models import build_vgg

SHAPE = (3, 10, 10)
ROUNDS = 40

task = make_cifar10_like(image_size=10, train_per_class=150, test_per_class=30, seed=0)
builder = lambda rng: build_vgg("vgg11", 10, SHAPE, width_mult=0.25, rng=rng)
sampler = DeviceSampler(DEVICE_POOL_CIFAR10, "balanced")

common = dict(
    num_clients=20, clients_per_round=5, local_iters=5, batch_size=32,
    lr=0.05, train_pgd_steps=4, eval_pgd_steps=5, eval_every=0,
    eval_max_samples=150, seed=0,
)

results = {}
for name, make in [
    ("jfat", lambda: JointFAT(task, builder, FLConfig(rounds=ROUNDS, **common), device_sampler=sampler)),
    ("fedrolex", lambda: FedRolexAT(task, builder, FLConfig(rounds=ROUNDS, **common), device_sampler=sampler)),
    ("fedprophet", lambda: FedProphet(
        task, builder,
        FedProphetConfig(rounds=2 * ROUNDS, rounds_per_module=30, patience=12,
                         r_min_fraction=0.25, val_samples=100, val_pgd_steps=3, **common),
        device_sampler=sampler)),
]:
    t0 = time.time()
    exp = make()
    exp.run()
    res = exp.evaluate(max_samples=200)
    wall = time.time() - t0
    results[name] = res
    extra = ""
    if name == "fedprophet":
        extra = f" modules={exp.partition.num_modules} stages={[(s.rounds, round(s.final_adv_acc,2)) for s in exp.stage_results]}"
    print(f"{name:10s} clean={res.clean_acc:.3f} pgd={res.pgd_acc:.3f} "
          f"clock={exp.clock_s:.0f}s wall={wall:.0f}s{extra}", flush=True)
