"""Figure 10: perturbation magnitude per dimension during training.

Runs FedProphet with APA in the balanced setting and prints the
per-dimension perturbation magnitude over the rounds, annotated with the
module stage boundaries (the orange dashed lines of the paper's figure).
Expected shape: within each module stage after the first, ε starts at a
small value (α initialised to 0.3) and is adjusted by APA; the trajectory
is piecewise by module.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import make_experiment
from repro.utils import format_table


def compute_trajectory():
    exp = make_experiment("fedprophet", "cifar10", "balanced")
    exp.run()
    return exp


def test_fig10_apa_trajectory(benchmark):
    exp = benchmark.pedantic(compute_trajectory, rounds=1, iterations=1)
    log = exp.pert_log
    assert log, "trajectory must be non-empty"

    rows = []
    for entry in log:
        rows.append((entry.round, entry.module + 1, f"{entry.eps:.4f}", f"{entry.eps_per_dim:.5f}"))
    print()
    print(
        format_table(
            ["round", "module", "eps", "eps per dim"],
            rows,
            title="Figure 10 — APA perturbation trajectory (balanced CIFAR-like)",
        )
    )
    boundaries = [
        i for i in range(1, len(log)) if log[i].module != log[i - 1].module
    ]
    print(f"module stage boundaries at rounds: {[log[i].round for i in boundaries]}")

    # Shape checks: multiple module stages were traversed, the first module
    # uses the fixed raw-input budget eps0, later modules use APA's ℓ2 eps.
    assert len({e.module for e in log}) >= 2
    first_stage = [e for e in log if e.module == 0]
    assert all(e.eps == pytest.approx(exp.config.eps0) for e in first_stage)
    later = [e for e in log if e.module > 0]
    assert all(np.isfinite(e.eps) and e.eps >= 0 for e in later)
    # APA arms each stage at alpha_init * base; epsilons are positive once
    # the first module has produced a base magnitude.
    assert any(e.eps > 0 for e in later)
