"""Tables 7–8: the model partitions of VGG16 and ResNet34 at paper scale.

Runs Algorithm 1 with the paper's R_min (60 MB for VGG16 at B=64, 224 MB
for ResNet34 at B=32) and prints the per-module layer lists, memory
requirements, and forward FLOPs — the direct analogue of the appendix
tables.  Expected shape: a handful of modules (paper: 7 each), every
multi-atom module under R_min.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.partitioner import partition_model, partition_summary, segment_mem_bytes
from repro.hardware import MemoryModel
from repro.models import build_resnet, build_vgg
from repro.utils import format_table

MB = 1024**2


def compute_partitions():
    rng = np.random.default_rng(0)
    vgg = build_vgg("vgg16", 10, (3, 32, 32), rng=rng)
    mem_v = MemoryModel(batch_size=64)
    part_v = partition_model(vgg, 60 * MB, mem_v)

    r34 = build_resnet("resnet34", 256, (3, 224, 224), rng=rng)
    mem_r = MemoryModel(batch_size=32)
    part_r = partition_model(r34, 224 * MB, mem_r)
    return (vgg, mem_v, part_v), (r34, mem_r, part_r)


def _print_table(model, mem, partition, title):
    rows = []
    for r in partition_summary(model, partition, mem):
        rows.append(
            (
                r["module"],
                ", ".join(r["atoms"]),
                f"{r['mem_bytes'] / MB:.1f} MB",
                f"{r['flops_fwd'] / 1e9:.2f} G",
            )
        )
    print()
    print(format_table(["module", "layers", "MemReq", "FLOPs (fwd)"], rows, title=title))


def test_table7_8_partition(benchmark):
    (vgg, mem_v, part_v), (r34, mem_r, part_r) = benchmark.pedantic(
        compute_partitions, rounds=1, iterations=1
    )
    _print_table(vgg, mem_v, part_v, "Table 7 — VGG16 partition (R_min = 60 MB)")
    _print_table(r34, mem_r, part_r, "Table 8 — ResNet34 partition (R_min = 224 MB)")

    # Paper: both models partition into 7 modules; our memory model differs
    # in small constants, so accept the ballpark.
    assert 5 <= part_v.num_modules <= 10
    assert 5 <= part_r.num_modules <= 10
    # Every multi-atom module must respect the budget.
    for model, mem, part, r_min in [
        (vgg, mem_v, part_v, 60 * MB),
        (r34, mem_r, part_r, 224 * MB),
    ]:
        for a, b in part.ranges:
            if b - a > 1:
                assert segment_mem_bytes(model, a, b, mem) < r_min
