"""Shared setup for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced,
NumPy-trainable scale (see DESIGN.md §4 "Scaling policy").  This module
fixes the two workloads — a CIFAR-10-like task with a VGG backbone and a
Caltech-256-like task with a ResNet backbone — plus the device pools and
the method registry, so that all benches share one consistent universe.

Scale is controlled by the REPRO_BENCH_SCALE env var: "quick" (CI-sized,
default) or "full" (longer runs, sharper separations).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.baselines import (
    FedDFAT,
    FedDropAT,
    FedETAT,
    FedRBN,
    FedRolexAT,
    HeteroFLAT,
    JointFAT,
)
from repro.core import FedProphet, FedProphetConfig
from repro.data import make_caltech256_like, make_cifar10_like
from repro.data.synthetic import SyntheticImageTask
from repro.flsim import FLConfig
from repro.hardware import DeviceSampler, device_pool
from repro.models import build_cnn, build_resnet, build_vgg
from repro.nn import DualBatchNorm2d

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


@dataclass(frozen=True)
class BenchScale:
    rounds: int
    prophet_rounds_per_module: int
    local_iters: int
    num_clients: int
    clients_per_round: int
    train_per_class: int
    pgd_steps: int
    eval_samples: int


SCALES = {
    "quick": BenchScale(
        rounds=30, prophet_rounds_per_module=16, local_iters=6, num_clients=20,
        clients_per_round=4, train_per_class=120, pgd_steps=2, eval_samples=150,
    ),
    "full": BenchScale(
        rounds=120, prophet_rounds_per_module=48, local_iters=8, num_clients=40,
        clients_per_round=8, train_per_class=200, pgd_steps=4, eval_samples=300,
    ),
}


def bench_scale() -> BenchScale:
    return SCALES[SCALE]


# ------------------------------------------------------------------------
# Workloads: the paper's two dataset/model pairs at reduced scale.
# ------------------------------------------------------------------------

CIFAR_SHAPE = (3, 8, 8)
CALTECH_SHAPE = (3, 12, 12)


def cifar_task(seed: int = 0) -> SyntheticImageTask:
    s = bench_scale()
    return make_cifar10_like(
        image_size=CIFAR_SHAPE[1],
        train_per_class=s.train_per_class,
        test_per_class=max(20, s.train_per_class // 5),
        seed=seed,
    )


def caltech_task(seed: int = 1) -> SyntheticImageTask:
    s = bench_scale()
    return make_caltech256_like(
        image_size=CALTECH_SHAPE[1],
        num_classes=16,
        train_per_class=max(30, s.train_per_class // 2),
        test_per_class=max(10, s.train_per_class // 10),
        seed=seed,
    )


def cifar_builder(rng: np.random.Generator):
    """Scaled VGG16-family backbone for the CIFAR-like workload."""
    return build_vgg("vgg11", 10, CIFAR_SHAPE, width_mult=0.25, rng=rng)


def cifar_builder_dual(rng: np.random.Generator):
    return build_vgg(
        "vgg11", 10, CIFAR_SHAPE, width_mult=0.25, rng=rng, bn_cls=DualBatchNorm2d
    )


def caltech_builder(rng: np.random.Generator):
    """Scaled ResNet34-family backbone for the Caltech-like workload."""
    return build_resnet("resnet10", 16, CALTECH_SHAPE, width_mult=0.25, rng=rng)


def caltech_builder_dual(rng: np.random.Generator):
    return build_resnet(
        "resnet10", 16, CALTECH_SHAPE, width_mult=0.25, rng=rng, bn_cls=DualBatchNorm2d
    )


def cifar_family():
    return {
        "cnn2": lambda rng: build_cnn(2, 10, CIFAR_SHAPE, base_channels=8, rng=rng),
        "vgg11": cifar_builder,
    }


def caltech_family():
    return {
        "cnn2": lambda rng: build_cnn(2, 16, CALTECH_SHAPE, base_channels=8, rng=rng),
        "resnet10": caltech_builder,
    }


WORKLOADS = {
    "cifar10": dict(
        task=cifar_task, builder=cifar_builder, dual_builder=cifar_builder_dual,
        family=cifar_family, shape=CIFAR_SHAPE, pool="cifar10",
    ),
    "caltech256": dict(
        task=caltech_task, builder=caltech_builder, dual_builder=caltech_builder_dual,
        family=caltech_family, shape=CALTECH_SHAPE, pool="caltech256",
    ),
}


# ------------------------------------------------------------------------
# Device pools, rescaled to the shrunken workloads.
#
# Our backbones are orders of magnitude smaller than the paper's VGG16 /
# ResNet34, so against the raw device pools nothing would ever swap and
# every latency effect would vanish.  We therefore shrink each device's
# memory and I/O bandwidth by the MemReq ratio and its performance by the
# FLOPs ratio between the scaled and the paper-scale backbone — the
# avail-memory / requirement and access / compute regimes then match the
# paper's exactly.
# ------------------------------------------------------------------------

from repro.hardware import Device, forward_flops, mem_req_bytes
from repro.models import build_resnet as _build_resnet_full
from repro.models import build_vgg as _build_vgg_full

_PAPER_SPECS = {
    # workload -> (builder of paper-scale model, input shape, batch size)
    "cifar10": (lambda: _build_vgg_full("vgg16", 10, (3, 32, 32)), (3, 32, 32), 64),
    "caltech256": (
        lambda: _build_resnet_full("resnet34", 256, (3, 224, 224)),
        (3, 224, 224),
        32,
    ),
}

_scaled_pools: Dict[str, list] = {}


def scaled_device_pool(workload: str) -> list:
    """The paper's device pool for this workload, shrunk to our scale."""
    if workload not in _scaled_pools:
        w = WORKLOADS[workload]
        paper_builder, paper_shape, paper_batch = _PAPER_SPECS[workload]
        paper_model = paper_builder()
        ours = w["builder"](np.random.default_rng(0))
        mem_ratio = mem_req_bytes(ours, w["shape"], 32) / mem_req_bytes(
            paper_model, paper_shape, paper_batch
        )
        flops_ratio = forward_flops(ours, w["shape"]) / forward_flops(
            paper_model, paper_shape
        )
        _scaled_pools[workload] = [
            Device(
                d.name,
                d.perf_tflops * flops_ratio,
                d.mem_gb * mem_ratio,
                d.io_gbps * mem_ratio,
            )
            for d in device_pool(w["pool"])
        ]
    return _scaled_pools[workload]


# ------------------------------------------------------------------------
# Method registry
# ------------------------------------------------------------------------

METHODS = [
    "jfat",
    "feddf-at",
    "fedet-at",
    "heterofl-at",
    "feddrop-at",
    "fedrolex-at",
    "fedrbn",
    "fedprophet",
]


def fl_config(seed: int = 0, **overrides) -> FLConfig:
    s = bench_scale()
    defaults = dict(
        num_clients=s.num_clients, clients_per_round=s.clients_per_round,
        local_iters=s.local_iters, batch_size=32, lr=0.08,
        rounds=s.rounds, train_pgd_steps=s.pgd_steps, eval_pgd_steps=5,
        eval_every=0, eval_max_samples=s.eval_samples, seed=seed,
    )
    defaults.update(overrides)
    return FLConfig(**defaults)


def prophet_config(seed: int = 0, **overrides) -> FedProphetConfig:
    s = bench_scale()
    defaults = dict(
        num_clients=s.num_clients, clients_per_round=s.clients_per_round,
        local_iters=s.local_iters, batch_size=32, lr=0.08,
        rounds=4 * s.rounds, train_pgd_steps=s.pgd_steps, eval_pgd_steps=5,
        eval_every=0, eval_max_samples=s.eval_samples, seed=seed,
        rounds_per_module=s.prophet_rounds_per_module,
        patience=max(5, s.prophet_rounds_per_module // 2),
        r_min_fraction=0.35, val_samples=100, val_pgd_steps=3,
    )
    defaults.update(overrides)
    return FedProphetConfig(**defaults)


def make_experiment(
    method: str,
    workload: str,
    heterogeneity: str = "balanced",
    seed: int = 0,
    config_overrides: Optional[dict] = None,
    prophet_overrides: Optional[dict] = None,
):
    """Instantiate any registered method on a registered workload."""
    w = WORKLOADS[workload]
    sampler = DeviceSampler(scaled_device_pool(workload), heterogeneity)
    overrides = dict(config_overrides or {})
    if method == "fedprophet":
        overrides.update(prophet_overrides or {})
        return FedProphet(
            w["task"](), w["builder"], prophet_config(seed, **overrides),
            device_sampler=sampler,
        )
    cfg = fl_config(seed, **overrides)
    if method == "jfat":
        return JointFAT(w["task"](), w["builder"], cfg, device_sampler=sampler)
    if method == "heterofl-at":
        return HeteroFLAT(w["task"](), w["builder"], cfg, device_sampler=sampler)
    if method == "feddrop-at":
        return FedDropAT(w["task"](), w["builder"], cfg, device_sampler=sampler)
    if method == "fedrolex-at":
        return FedRolexAT(w["task"](), w["builder"], cfg, device_sampler=sampler)
    if method == "feddf-at":
        return FedDFAT(
            w["task"](), w["family"](), cfg, device_sampler=sampler, distill_iters=16
        )
    if method == "fedet-at":
        return FedETAT(
            w["task"](), w["family"](), cfg, device_sampler=sampler, distill_iters=16
        )
    if method == "fedrbn":
        return FedRBN(w["task"](), w["dual_builder"], cfg, device_sampler=sampler)
    raise ValueError(f"unknown method {method!r}")


# Completed runs, shared across benchmark files in one pytest session so
# Table 2 and Figure 7 (same runs, different columns) execute only once.
_RUN_CACHE: Dict[tuple, tuple] = {}


def run_method(method: str, workload: str, heterogeneity: str = "balanced", seed: int = 0):
    """Run a method to completion; returns (experiment, final EvalResult).

    Results are memoised per (method, workload, heterogeneity, seed) for
    the lifetime of the process.
    """
    key = (method, workload, heterogeneity, seed)
    if key not in _RUN_CACHE:
        exp = make_experiment(method, workload, heterogeneity, seed)
        exp.run()
        result = exp.final_eval(max_samples=bench_scale().eval_samples)
        _RUN_CACHE[key] = (exp, result)
    return _RUN_CACHE[key]
