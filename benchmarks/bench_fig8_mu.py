"""Figure 8: influence of the strong-convexity hyperparameter μ.

Sweeps μ and reports FedProphet's adversarial accuracy together with the
ℓ2 magnitude of the first module's output perturbation ‖Δz₁‖.  Expected
shape (paper): the perturbation magnitude decreases monotonically once μ
is large enough (Lemma 1), while adversarial accuracy peaks at a moderate
μ and degrades for very large values.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import bench_scale, make_experiment
from repro.utils import format_table

# The scaled task saturates Lemma 1's bound at larger μ than the paper's
# full-size models, so the sweep extends further right.
MUS = [1e-6, 1e-4, 1e-2, 1.0]


def compute_mu_sweep():
    out = []
    for mu in MUS:
        exp = make_experiment(
            "fedprophet", "cifar10", "balanced", prophet_overrides={"mu": mu}
        )
        exp.run()
        res = exp.final_eval(max_samples=bench_scale().eval_samples)
        out.append(
            dict(
                mu=mu,
                adv_acc=res.pgd_acc,
                clean_acc=res.clean_acc,
                dz1=exp.eps_star[0] if exp.eps_star else float("nan"),
            )
        )
    return out


def test_fig8_mu(benchmark):
    rows = benchmark.pedantic(compute_mu_sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["mu", "clean acc", "adv acc", "||dz1|| (l2)"],
            [
                (f"{r['mu']:.0e}", f"{r['clean_acc']:.2%}", f"{r['adv_acc']:.2%}", f"{r['dz1']:.2f}")
                for r in rows
            ],
            title="Figure 8 — strong-convexity regularization sweep (CIFAR-like)",
        )
    )
    # Paper shape: strong regularization shrinks the output perturbation.
    assert rows[-1]["dz1"] < rows[0]["dz1"]
    # All runs stay alive (no divergence to NaN).
    assert all(np.isfinite(r["adv_acc"]) for r in rows)
