"""Figure 6 (+ Tables 5–6): device samplings and memory consumption.

Upper panels: the balanced/unbalanced distributions of real-time available
memory and performance drawn from the paper's device pools.  Lower panels:
the training memory consumption of jFAT (whole model) vs FedProphet
(largest module + head), at the paper's full scale — the claimed ~80 %
memory reduction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.partitioner import full_model_mem_bytes, partition_model, segment_mem_bytes
from repro.hardware import DeviceSampler, MemoryModel, device_pool
from repro.models import build_resnet, build_vgg
from repro.utils import format_table

GB = 1024**3
MB = 1024**2


def sample_distributions(pool_name: str, n: int = 500):
    out = {}
    for het in ("balanced", "unbalanced"):
        sampler = DeviceSampler(device_pool(pool_name), het)
        rng = np.random.default_rng(0)
        states = sampler.sample_many(n, rng)
        out[het] = dict(
            mem_gb=np.array([s.avail_mem_bytes / GB for s in states]),
            perf_tflops=np.array([s.avail_perf_flops / 1e12 for s in states]),
        )
    return out


def memory_consumption(model, shape, batch):
    mem = MemoryModel(batch_size=batch)
    r_max = full_model_mem_bytes(model, mem)
    partition = partition_model(model, 0.2 * r_max, mem)
    worst_module = max(
        segment_mem_bytes(model, a, b, mem) for a, b in partition.ranges
    )
    return r_max, worst_module, partition.num_modules


def compute_figure6():
    rng = np.random.default_rng(0)
    vgg = build_vgg("vgg16", 10, (3, 32, 32), rng=rng)
    r34 = build_resnet("resnet34", 256, (3, 224, 224), rng=rng)
    return {
        "cifar10": (sample_distributions("cifar10"), memory_consumption(vgg, (3, 32, 32), 64)),
        "caltech256": (
            sample_distributions("caltech256"),
            memory_consumption(r34, (3, 224, 224), 32),
        ),
    }


def test_fig6_devices(benchmark):
    data = benchmark.pedantic(compute_figure6, rounds=1, iterations=1)
    for workload, (dists, (r_max, worst, n_modules)) in data.items():
        rows = []
        for het, d in dists.items():
            rows.append(
                (
                    het,
                    f"{d['mem_gb'].mean():.2f}",
                    f"{d['mem_gb'].max():.2f}",
                    f"{d['perf_tflops'].mean():.2f}",
                    f"{d['perf_tflops'].max():.2f}",
                )
            )
        print()
        print(
            format_table(
                ["sampling", "mean mem (GB)", "max mem (GB)", "mean perf (TF)", "max perf (TF)"],
                rows,
                title=f"Figure 6 upper — {workload} device sampling",
            )
        )
        reduction = 1 - worst / r_max
        print(
            format_table(
                ["method", "mem (MB)"],
                [
                    ("jFAT (whole model)", f"{r_max / MB:.0f}"),
                    (f"FedProphet (max of {n_modules} modules)", f"{worst / MB:.0f}"),
                    ("reduction", f"{100 * reduction:.0f}%"),
                ],
                title=f"Figure 6 lower — {workload} training memory consumption",
            )
        )
        # Paper shape: unbalanced sampling yields weaker devices on average.
        assert dists["unbalanced"]["perf_tflops"].mean() < dists["balanced"]["perf_tflops"].mean()
        assert dists["unbalanced"]["mem_gb"].mean() < dists["balanced"]["mem_gb"].mean()
        # Paper claim: ~80% memory reduction (modules fit in 20% budget,
        # modulo one oversized module; accept >= 60%).
        assert reduction >= 0.6
