"""Table 4: training time with and without Differentiated Module Assignment.

DMA lets resource-rich clients train extra modules, but the FLOPs
constraint (Eq. 15) caps their local time at the slowest client's
single-module time — so the synchronous round length, and hence the total
training time, must not grow.  Expected shape (paper): w/ DMA ≈ w/o DMA
(sometimes slightly faster through better-converged modules).
"""

from __future__ import annotations

import pytest

from benchmarks.common import make_experiment
from repro.utils import format_table

SETTINGS = [
    ("cifar10", "balanced"),
    ("cifar10", "unbalanced"),
]


def compute_dma_timing():
    out = {}
    for workload, het in SETTINGS:
        for dma in (True, False):
            exp = make_experiment(
                "fedprophet", workload, het, prophet_overrides={"use_dma": dma}
            )
            exp.run()
            out[(workload, het, dma)] = exp.clock_s
    return out


def test_table4_dma_time(benchmark):
    clocks = benchmark.pedantic(compute_dma_timing, rounds=1, iterations=1)
    rows = []
    for workload, het in SETTINGS:
        rows.append(
            (
                f"{workload}/{het}",
                f"{clocks[(workload, het, True)]:.3g}s",
                f"{clocks[(workload, het, False)]:.3g}s",
            )
        )
    print()
    print(
        format_table(
            ["setting", "w/ DMA", "w/o DMA"],
            rows,
            title="Table 4 — training time with/without DMA",
        )
    )
    for workload, het in SETTINGS:
        with_dma = clocks[(workload, het, True)]
        without = clocks[(workload, het, False)]
        # The FLOPs constraint keeps DMA from inflating the round time.
        assert with_dma <= 1.2 * without
