"""Table 3: ablation of APA and DMA (plus Table 4's DMA timing column).

Runs FedProphet with each of the four (APA, DMA) combinations on the
CIFAR-like workload, balanced and unbalanced.  Expected shape (paper):

* removing APA raises clean accuracy but lowers adversarial accuracy
  (worse utility-robustness balance),
* removing DMA hurts both accuracies,
* DMA adds no wall-clock time (the FLOPs constraint, Table 4).
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from benchmarks.common import bench_scale, make_experiment
from repro.utils import format_table


def compute_ablation():
    out = {}
    for apa, dma in itertools.product([True, False], repeat=2):
        for het in ("balanced", "unbalanced"):
            exp = make_experiment(
                "fedprophet",
                "cifar10",
                het,
                prophet_overrides={"use_apa": apa, "use_dma": dma},
            )
            exp.run()
            res = exp.final_eval(max_samples=bench_scale().eval_samples)
            out[(apa, dma, het)] = (res, exp.clock_s)
    return out


def test_table3_ablation(benchmark):
    results = benchmark.pedantic(compute_ablation, rounds=1, iterations=1)
    rows = []
    for (apa, dma, het), (res, clock) in sorted(results.items(), reverse=True):
        rows.append(
            (
                "Y" if apa else "N",
                "Y" if dma else "N",
                het,
                f"{res.clean_acc:.2%}",
                f"{res.pgd_acc:.2%}",
                f"{clock:.2f}s",
            )
        )
    print()
    print(
        format_table(
            ["APA", "DMA", "heterogeneity", "clean acc", "adv acc", "sim time"],
            rows,
            title="Table 3 (+Table 4 timing) — APA/DMA ablation (CIFAR-like)",
        )
    )

    # Table 4 shape: DMA must not inflate the simulated training time.
    for het in ("balanced", "unbalanced"):
        with_dma = results[(True, True, het)][1]
        without_dma = results[(True, False, het)][1]
        assert with_dma <= without_dma * 1.2
    # Sanity: all runs produced valid accuracies.
    for (apa, dma, het), (res, _) in results.items():
        assert 0 <= res.clean_acc <= 1 and 0 <= res.pgd_acc <= 1
