"""Figure 2: local-training latency breakdown at paper scale.

Reproduces the motivation experiment: one client's local-training latency
on (a) VGG16/CIFAR-10 and (b) ResNet34/Caltech-256 under three regimes:

* "Suff. Mem"     — enough memory, no swapping;
* "Lim. w/ Swap"  — 20 % memory, end-to-end training with memory swapping;
* "Lim. w/o Swap" — 20 % memory, FedRolex-style sub-model (no swapping).

Expected shape (paper): with swapping, data-access time dominates the
total; the sub-model run removes data access at the cost of training only
a fraction of the model.  Everything here is analytic, so the *paper's
full-scale models* are used directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware import (
    Device,
    DeviceState,
    LatencyModel,
    MemoryModel,
    training_flops_per_iteration,
)
from repro.models import build_resnet, build_vgg
from repro.utils import format_table

PGD_STEPS = 10
ITERATIONS = 30


def _workloads():
    rng = np.random.default_rng(0)
    return [
        ("VGG16/CIFAR-10", build_vgg("vgg16", 10, (3, 32, 32), rng=rng), (3, 32, 32), 64),
        (
            "ResNet34/Caltech-256",
            build_resnet("resnet34", 256, (3, 224, 224), rng=rng),
            (3, 224, 224),
            32,
        ),
    ]


def _device(perf_tflops=2.0, io_gbps=1.5, mem_gb=64):
    d = Device("bench-device", perf_tflops, mem_gb, io_gbps)
    return d


def _breakdown(model, shape, batch):
    mem = MemoryModel(batch_size=batch)
    lat = LatencyModel()
    mem_req = mem.bytes_for(model, shape)
    flops = training_flops_per_iteration(model, shape, batch, PGD_STEPS)
    dev = _device()

    rows = []
    # Sufficient memory
    state = DeviceState(dev, avail_mem_bytes=2 * mem_req, avail_perf_flops=dev.perf_flops)
    rows.append(("Suff. Mem", lat.local_training_cost(state, flops, mem_req, ITERATIONS, PGD_STEPS)))
    # Limited memory with swapping (20% of requirement)
    state = DeviceState(dev, avail_mem_bytes=0.2 * mem_req, avail_perf_flops=dev.perf_flops)
    rows.append(("Lim. w/ Swap", lat.local_training_cost(state, flops, mem_req, ITERATIONS, PGD_STEPS)))
    # Limited memory, sub-model (no swap): FLOPs/mem scale with the width
    # ratio; a 0.2-memory sub-model has roughly 0.2x activations and ~0.04x
    # weight FLOPs, we take the activation-dominated 0.2x estimate.
    sub_flops = 0.2 * flops
    state = DeviceState(dev, avail_mem_bytes=0.2 * mem_req, avail_perf_flops=dev.perf_flops)
    rows.append(("Lim. w/o Swap", lat.local_training_cost(state, sub_flops, 0.2 * mem_req, ITERATIONS, PGD_STEPS)))
    return rows


def compute_figure2():
    out = {}
    for name, model, shape, batch in _workloads():
        out[name] = _breakdown(model, shape, batch)
    return out


def test_fig2_overhead(benchmark):
    data = benchmark.pedantic(compute_figure2, rounds=1, iterations=1)
    for name, rows in data.items():
        table = [
            (
                regime,
                round(c.compute_s, 2),
                round(c.access_s, 2),
                round(c.total_s, 2),
                f"{100 * c.access_s / max(c.total_s, 1e-12):.0f}%",
            )
            for regime, c in rows
        ]
        print()
        print(
            format_table(
                ["regime", "compute (s)", "data access (s)", "total (s)", "access share"],
                table,
                title=f"Figure 2 — {name} local-training latency breakdown",
            )
        )
        costs = dict(rows)
        # Paper shape: swapping makes data access dominate the latency...
        swap = costs["Lim. w/ Swap"]
        assert swap.access_s > swap.compute_s
        # ...and both alternatives are much faster than swapping.
        assert costs["Suff. Mem"].total_s < 0.5 * swap.total_s
        assert costs["Lim. w/o Swap"].total_s < 0.5 * swap.total_s
        # No swap regimes have zero data-access time.
        assert costs["Suff. Mem"].access_s == 0.0
        assert costs["Lim. w/o Swap"].access_s == 0.0
