"""Figure 9: number of modules and accuracy as R_min varies.

Sweeps the minimal reserved memory from a small fraction of R_max to
above it.  Expected shape (paper): the module count decreases to 1
(degenerating to jFAT) as R_min grows, while clean/adversarial accuracy
stay roughly flat — the inconsistency-reduction designs make FedProphet
insensitive to the partition depth.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import bench_scale, make_experiment
from repro.utils import format_table

FRACTIONS = [0.35, 0.6, 1.2]


def compute_rmin_sweep():
    out = []
    for frac in FRACTIONS:
        exp = make_experiment(
            "fedprophet",
            "cifar10",
            "balanced",
            prophet_overrides={"r_min_fraction": frac},
        )
        exp.run()
        res = exp.final_eval(max_samples=bench_scale().eval_samples)
        out.append(
            dict(
                frac=frac,
                modules=exp.partition.num_modules,
                clean=res.clean_acc,
                adv=res.pgd_acc,
            )
        )
    return out


def test_fig9_rmin(benchmark):
    rows = benchmark.pedantic(compute_rmin_sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["R_min / R_max", "#modules", "clean acc", "adv acc"],
            [
                (r["frac"], r["modules"], f"{r['clean']:.2%}", f"{r['adv']:.2%}")
                for r in rows
            ],
            title="Figure 9 — partition depth vs accuracy (CIFAR-like)",
        )
    )
    counts = [r["modules"] for r in rows]
    # Paper shape: fewer modules as the memory budget grows, ending at 1.
    assert counts == sorted(counts, reverse=True)
    assert counts[-1] == 1
    assert counts[0] > 1
