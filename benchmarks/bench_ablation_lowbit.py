"""Ablation: FedProphet + low-bit training (paper §8, future work).

The paper argues FedProphet is complementary to parameter-level
quantization: the partitioner operates at layer/block granularity, so
shrinking every tensor's storage width simply relaxes the memory
constraint and yields fewer, larger modules.  This bench quantifies that
interaction analytically at the paper's full scale: module counts and
worst-module footprints for fp32 / fp16 / int8 accounting.

Expected shape: module count is non-increasing in precision reduction;
at int8 the whole VGG16 fits in far fewer modules under the same R_min.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.partitioner import full_model_mem_bytes, partition_model, segment_mem_bytes
from repro.hardware import MemoryModel
from repro.models import build_resnet, build_vgg
from repro.utils import format_table

MB = 1024**2
PRECISIONS = [("fp32", 4), ("fp16", 2), ("int8", 1)]


def compute_lowbit():
    rng = np.random.default_rng(0)
    workloads = [
        ("VGG16/CIFAR-10", build_vgg("vgg16", 10, (3, 32, 32), rng=rng), (3, 32, 32), 64, 60 * MB),
        (
            "ResNet34/Caltech-256",
            build_resnet("resnet34", 256, (3, 224, 224), rng=rng),
            (3, 224, 224),
            32,
            224 * MB,
        ),
    ]
    out = {}
    for name, model, shape, batch, r_min in workloads:
        rows = []
        for label, width in PRECISIONS:
            mem = MemoryModel(batch_size=batch, bytes_per_scalar=width)
            part = partition_model(model, r_min, mem)
            worst = max(segment_mem_bytes(model, a, b, mem) for a, b in part.ranges)
            rows.append((label, part.num_modules, worst, full_model_mem_bytes(model, mem)))
        out[name] = rows
    return out


def test_ablation_lowbit(benchmark):
    data = benchmark.pedantic(compute_lowbit, rounds=1, iterations=1)
    for name, rows in data.items():
        print()
        print(
            format_table(
                ["precision", "#modules", "worst module", "R_max"],
                [
                    (label, n, f"{worst / MB:.0f} MB", f"{rmax / MB:.0f} MB")
                    for label, n, worst, rmax in rows
                ],
                title=f"Low-bit x FedProphet partitioning — {name}",
            )
        )
        counts = [n for _, n, _, _ in rows]
        # Lower precision never needs more modules under the same budget.
        assert counts == sorted(counts, reverse=True)
        assert counts[-1] < counts[0]
