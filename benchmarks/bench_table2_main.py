"""Table 2: the headline comparison — clean / PGD / AutoAttack accuracy of
all eight methods on both workloads under balanced and unbalanced
systematic heterogeneity.

Expected shape (paper):

* FedProphet attains the best adversarial accuracy among the
  memory-efficient methods, close to (or better than) jFAT;
* FedRBN reaches high clean accuracy but weak robustness;
* knowledge-distillation methods (FedDF/FedET) are weakest overall;
* partial-training methods sit in between.

Runs are shared with the Figure 7 bench via the common run cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import METHODS, run_method
from repro.utils import format_table

SETTINGS = [
    ("cifar10", "balanced"),
    ("cifar10", "unbalanced"),
    ("caltech256", "balanced"),
    ("caltech256", "unbalanced"),
]


def compute_table2():
    results = {}
    for workload, het in SETTINGS:
        for method in METHODS:
            _, res = run_method(method, workload, het)
            results[(workload, het, method)] = res
    return results


def test_table2_main(benchmark):
    results = benchmark.pedantic(compute_table2, rounds=1, iterations=1)
    for workload, het in SETTINGS:
        rows = []
        for method in METHODS:
            r = results[(workload, het, method)]
            rows.append(
                (
                    method,
                    f"{r.clean_acc:.2%}",
                    f"{r.pgd_acc:.2%}",
                    f"{r.aa_acc:.2%}" if r.aa_acc is not None else "-",
                )
            )
        print()
        print(
            format_table(
                ["method", "clean acc", "PGD acc", "AA acc"],
                rows,
                title=f"Table 2 — {workload}, {het}",
            )
        )

    # Shape assertions, aggregated across settings for stability at this
    # reduced scale (per-setting numbers are printed above).
    def mean(metric, method):
        return float(
            np.mean(
                [getattr(results[(w, h, method)], metric) for w, h in SETTINGS]
            )
        )

    memory_efficient = [m for m in METHODS if m not in ("jfat", "fedprophet")]
    prophet_adv = mean("pgd_acc", "fedprophet")
    # FedProphet beats every other memory-efficient method on robustness.
    for m in memory_efficient:
        assert prophet_adv >= mean("pgd_acc", m) - 0.02, (
            f"fedprophet adv {prophet_adv:.3f} vs {m} {mean('pgd_acc', m):.3f}"
        )
    # AutoAttack is never easier than PGD.
    for key, r in results.items():
        if r.aa_acc is not None and r.pgd_acc is not None:
            assert r.aa_acc <= r.pgd_acc + 0.02
