"""Figure 7: simulated training time (computation + data access) of all
methods in all four settings.

Expected shape (paper): jFAT's time is dominated by data access (memory
swapping of the full model on memory-poor clients); the memory-efficient
methods avoid swapping, and FedProphet achieves low compute *and* low
access time (the paper reports 2.4×/1.9×/10.8×/7.7× speedups over jFAT).

The runs are shared with Table 2 through the common run cache, so this
bench only reads the simulated clocks.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import METHODS, run_method
from repro.utils import format_table

SETTINGS = [
    ("cifar10", "balanced"),
    ("cifar10", "unbalanced"),
    ("caltech256", "balanced"),
    ("caltech256", "unbalanced"),
]


def compute_fig7():
    clocks = {}
    for workload, het in SETTINGS:
        for method in METHODS:
            exp, _ = run_method(method, workload, het)
            clocks[(workload, het, method)] = (
                exp.total_compute_s,
                exp.total_access_s,
                exp.clock_s,
            )
    return clocks


def test_fig7_training_time(benchmark):
    clocks = benchmark.pedantic(compute_fig7, rounds=1, iterations=1)
    for workload, het in SETTINGS:
        jfat_total = clocks[(workload, het, "jfat")][2]
        rows = []
        for method in METHODS:
            compute, access, total = clocks[(workload, het, method)]
            speedup = jfat_total / max(total, 1e-12)
            rows.append(
                (
                    method,
                    f"{compute:.3g}",
                    f"{access:.3g}",
                    f"{total:.3g}",
                    f"{speedup:.1f}x",
                )
            )
        print()
        print(
            format_table(
                ["method", "compute (s)", "data access (s)", "total (s)", "vs jFAT"],
                rows,
                title=f"Figure 7 — training time, {workload}, {het}",
            )
        )

        compute, access, total = clocks[(workload, het, "jfat")]
        # Paper shape: jFAT pays substantial data-access time (swapping)...
        assert access > 0, "jFAT should swap on memory-poor devices"
        # ...while FedProphet's modules mostly fit: its data-access *share*
        # must be far below jFAT's (the weakest degraded devices can still
        # swap the largest module occasionally).
        p_compute, p_access, p_total = clocks[(workload, het, "fedprophet")]
        assert p_access / max(p_total, 1e-12) < 0.5 * access / max(total, 1e-12)
        # FedProphet is faster than jFAT end to end.
        assert p_total < total
