"""Table 1: FAT with small vs. large vs. Large-PT models.

The motivation table: adversarial training needs model capacity — the
large backbone beats the small CNN on both clean and adversarial accuracy,
while training the large model via partial-training FL at a small-model
memory budget ("Large-PT", FedRolex) is no better than the small model.

Scaled workload: CNN2 as the small model (≈1× memory), the VGG backbone as
the large model (≈5× memory), FedRolex-AT at a fixed small-memory ratio as
Large-PT.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import (
    CIFAR_SHAPE,
    bench_scale,
    cifar_builder,
    cifar_task,
    fl_config,
)
from repro.baselines import FedRolexAT, JointFAT
from repro.hardware import mem_req_bytes
from repro.models import build_cnn
from repro.utils import format_table


def small_builder(rng):
    return build_cnn(2, 10, CIFAR_SHAPE, base_channels=8, rng=rng)


class _FixedRatioRolex(FedRolexAT):
    """FedRolex with every client pinned at the small-model memory ratio."""

    def __init__(self, *args, ratio: float, **kwargs):
        super().__init__(*args, **kwargs)
        self._ratio = ratio

    def client_ratio(self, state):
        return self._ratio


def compute_table1():
    task = cifar_task()
    cfg = fl_config()
    results = {}

    small = JointFAT(task, small_builder, cfg)
    small.run()
    results["Small (1x)"] = (small, small.final_eval(max_samples=bench_scale().eval_samples))

    large = JointFAT(task, cifar_builder, cfg)
    large.run()
    results["Large (5x)"] = (large, large.final_eval(max_samples=bench_scale().eval_samples))

    small_mem = mem_req_bytes(small_builder(np.random.default_rng(0)), CIFAR_SHAPE, cfg.batch_size)
    large_mem = mem_req_bytes(cifar_builder(np.random.default_rng(0)), CIFAR_SHAPE, cfg.batch_size)
    ratio = float(np.clip(small_mem / large_mem, 0.125, 1.0))
    pt = _FixedRatioRolex(task, cifar_builder, cfg, ratio=ratio)
    pt.run()
    results["Large-PT (1x)"] = (pt, pt.final_eval(max_samples=bench_scale().eval_samples))
    return results, large_mem / small_mem


def test_table1_model_size(benchmark):
    results, mem_ratio = benchmark.pedantic(compute_table1, rounds=1, iterations=1)
    rows = [
        (name, f"{r.clean_acc:.2%}", f"{r.pgd_acc:.2%}")
        for name, (_, r) in results.items()
    ]
    print()
    print(
        format_table(
            ["model (mem)", "clean acc", "adv acc"],
            rows,
            title=f"Table 1 — FAT vs model size (large/small memory ratio ≈ {mem_ratio:.1f}x)",
        )
    )
    small = results["Small (1x)"][1]
    large = results["Large (5x)"][1]
    pt = results["Large-PT (1x)"][1]
    # Paper shape: the large model dominates the small one...
    assert large.clean_acc >= small.clean_acc - 0.05
    assert large.pgd_acc >= small.pgd_acc - 0.02
    # ...and partial-training at small-memory budget gives up the advantage.
    assert pt.pgd_acc <= large.pgd_acc + 0.05
