"""Hot-path performance benchmark: the fast-path execution engine vs seed.

Measures samples/sec for the three dominant hot paths of the FedProphet
reproduction —

* conv forward / backward (the substrate's inner loop),
* a PGD-10 attack against a frozen model (robust evaluation / inner max),
* one full FedProphet communication round at module 1 (prefix + cascade),

each under two execution modes *in the same run*:

* ``baseline`` — the seed behaviour: float64 compute, full parameter
  gradients during attacks, no frozen-prefix activation cache;
* ``fast``     — the fast-path engine: float32 compute policy,
  input-grad-only attacks, frozen-prefix cache enabled.

A fourth section benchmarks the **round execution engine** (PR 2) on top
of the fast path: one FedProphet round at module 1 under

* ``serial_cold``   — serial clients + per-round cache invalidation
  (the PR 1 execution path);
* ``serial_warm``   — serial clients + the stage-scoped (version-keyed)
  cache, so re-sampled clients hit activations cached in earlier rounds;
* ``parallel_warm`` — thread-backend clients + warm stage cache.

A fifth section benchmarks the **sharded evaluation engine** (PR 3):
one clean + PGD-20 evaluation pass decomposed into ``(attack, sample
range)`` shards under the ``serial`` and ``thread`` backends (process is
checked for bit-identity when fork() exists).  All backends must produce
**bit-identical** EvalResults — a mismatch fails the run outright — and
on ≥2-core machines the thread-sharded pass must be ≥1.5× faster.

A sixth section benchmarks the **pipeline engine** (PR 4): a short
round+eval loop with the classic phase barrier vs ``overlap_eval`` (eval
shards of round *r* streaming through the unified scheduler concurrently
with round *r+1*'s clients).  The eval stream must be bit-identical
between the modes, and on ≥4-core machines the overlapped run must be
≥1.2× faster.

A seventh section benchmarks the **cross-round async pipeline** (PR 5):
a jFAT run under staleness-bounded async aggregation with
``pipeline_depth=1`` (the classic round-drain) vs ``pipeline_depth>1``
(the next round's fast clients dispatch against the latest merged server
state while stragglers finish).  The pipelined run must be
**bit-identical** between the serial and thread backends (hard failure —
the merge replay is simulated-order, so wall-clock scheduling must not
leak in), and on ≥4-core machines ≥1.2× faster than the depth-1 barrier.

An eighth section benchmarks the **crash-tolerance layer** (PR 6): the
same synchronous run bare vs journalled-and-checkpointed.  The
journalled run must be **bit-identical** to the bare one (hard failure)
and its wall-clock overhead is gated at ≤5 %.

A ninth section benchmarks the **robust-aggregation layer** (PR 7): the
same synchronous run under ``aggregation_rule`` = ``fedavg`` vs
``median`` vs ``trimmed_mean``; the robust rules' wall-clock overhead
is gated at ≤10 % of the FedAvg run.

A tenth section benchmarks the **population engine** (PR 9): the same
lazy virtual-scheme jFAT run at populations of 100, 10k, and 1M
clients (cohort 10).  The materialised-client count must stay within
the LRU capacity and the lazy run must be **bit-identical** to the
eager one (hard failures); the 1M-client setup is gated at ≤ 2× the
100-client setup — construction independent of population size.

``BENCH_PERF.json`` (repo root) keeps a **history**: one entry per run,
keyed by git SHA + date + runner core count, so the perf trajectory
across PRs stays visible; a metric dropping more than 20 % against the
previous entry of the same scale **and the same ``cpu_count``** prints a
regression warning (parallel-section throughput scales with cores, so
cross-runner comparisons are noise, not regressions).  Scale via
``REPRO_BENCH_SCALE``: "quick" (CI-sized, default) or "full".

Run:  PYTHONPATH=src python benchmarks/bench_perf_hotpath.py
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path
from typing import Callable, Dict, Tuple

import numpy as np

from repro.attacks import ModelWithLoss, PGDConfig, pgd_attack
from repro.core import FedProphet, FedProphetConfig
from repro.data import make_cifar10_like
from repro.models import build_vgg
from repro.nn import ConvBNReLU, Sequential, dtype_scope, set_fast_path
from repro.utils import format_table

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")
REGRESSION_TOLERANCE = 0.20  # warn when a metric drops >20% vs previous run

SCALES = {
    # (conv batch, conv reps, pgd batch, pgd steps, round local_iters, round
    #  clients, eval samples / shard batch for the evaluation engine,
    #  rounds per timed pipeline run)
    "quick": dict(conv_batch=64, reps=3, pgd_batch=64, pgd_steps=10,
                  local_iters=6, clients_per_round=3, train_per_class=40,
                  eval_samples=64, eval_batch=16, pipeline_rounds=3),
    "full": dict(conv_batch=128, reps=5, pgd_batch=128, pgd_steps=10,
                 local_iters=8, clients_per_round=5, train_per_class=80,
                 eval_samples=192, eval_batch=32, pipeline_rounds=4),
}

MODES = {
    "baseline": dict(dtype=np.float64, fast_path=False, cache=False),
    "fast": dict(dtype=np.float32, fast_path=True, cache=True),
}


def _best_of(fn: Callable[[], None], reps: int) -> float:
    """Best wall-clock of ``reps`` timed calls (after one warmup)."""
    fn()
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ------------------------------------------------------------------------
# Workloads.  Each returns (seconds, samples) under the *active* dtype
# scope; models/data are rebuilt per mode so parameters and activations
# live in the mode's dtype.
# ------------------------------------------------------------------------


def bench_conv(params: dict) -> Dict[str, Tuple[float, int]]:
    """Forward and backward over a small conv stack."""
    rng = np.random.default_rng(0)
    model = Sequential(
        ConvBNReLU(3, 32, rng=rng),
        ConvBNReLU(32, 64, rng=rng),
        ConvBNReLU(64, 64, rng=rng),
    )
    model.train()
    n = params["conv_batch"]
    x = rng.normal(size=(n, 3, 16, 16)).astype(np.asarray(model.parameters()[0].data).dtype)
    out = model(x)
    g = rng.normal(size=out.shape).astype(x.dtype)

    def fwd():
        model(x)

    def bwd():
        model(x)  # repopulate single-shot caches consumed by backward
        model.backward(g)

    t_fwd = _best_of(fwd, params["reps"])
    t_fwdbwd = _best_of(bwd, params["reps"])
    return {
        "conv_forward": (t_fwd, n),
        "conv_forward_backward": (t_fwdbwd, n),
    }


def bench_pgd(params: dict) -> Dict[str, Tuple[float, int]]:
    """A PGD-10 linf attack against a frozen (eval-mode) VGG."""
    rng = np.random.default_rng(1)
    model = build_vgg("vgg11", 10, (3, 16, 16), width_mult=0.25, rng=rng)
    model.eval()
    mwl = ModelWithLoss(model)
    n = params["pgd_batch"]
    x = rng.uniform(0.0, 1.0, size=(n, 3, 16, 16)).astype(
        model.parameters()[0].data.dtype
    )
    y = rng.integers(0, 10, size=n)
    cfg = PGDConfig(eps=8 / 255, steps=params["pgd_steps"], norm="linf")

    def attack():
        pgd_attack(mwl, x, y, cfg, rng=np.random.default_rng(2))
        model.zero_grad()

    t = _best_of(attack, params["reps"])
    return {"pgd10_attack": (t, n)}


def _build_round_exp(
    params: dict,
    use_cache: bool,
    backend: str = "serial",
    workers: int = 1,
):
    """A FedProphet experiment positioned at module 1 (prefix active)."""
    task = make_cifar10_like(
        image_size=8, train_per_class=params["train_per_class"],
        test_per_class=10, seed=0,
    )
    cfg = FedProphetConfig(
        num_clients=6, clients_per_round=params["clients_per_round"],
        local_iters=params["local_iters"], batch_size=32, lr=0.05,
        rounds=4, train_pgd_steps=3, eval_pgd_steps=2, eval_every=0,
        seed=0, rounds_per_module=2, patience=2, r_min_fraction=0.35,
        val_samples=32, val_pgd_steps=2, use_prefix_cache=use_cache,
        executor_backend=backend, round_parallelism=workers,
    )
    exp = FedProphet(
        task,
        lambda rng: build_vgg("vgg11", 10, (3, 8, 8), width_mult=0.25, rng=rng),
        cfg,
    )
    # Jump straight to module 1 so the frozen prefix (module 0) is on the
    # hot path, as it is for most of a real FedProphet run.
    exp.current_module = 1
    exp.eps_feature = 0.5
    clients, states = exp.sample_round(0)
    return exp, cfg, clients, states


def bench_fed_round(params: dict, use_cache: bool) -> Dict[str, Tuple[float, int]]:
    """One FedProphet communication round at module 1 (prefix active).

    The cache is bumped before every round, reproducing the PR 1 per-round
    invalidation so the baseline/fast comparison stays an apples-to-apples
    fast-path measurement (the stage-scoped warm cache is measured by
    :func:`bench_round_engine`).
    """
    exp, cfg, clients, states = _build_round_exp(params, use_cache)

    def one_round():
        if exp.prefix_cache is not None:
            exp.prefix_cache.bump_version()
        exp.run_round(0, clients, states)

    t = _best_of(one_round, params["reps"])
    samples = cfg.clients_per_round * cfg.local_iters * cfg.batch_size
    stats = exp.prefix_cache.stats() if exp.prefix_cache is not None else None
    return {"federated_round": (t, samples, stats)}


def bench_round_engine(params: dict) -> Dict[str, dict]:
    """The PR 2 round execution engine vs the PR 1 serial path.

    All variants run the PR 1 fast path (float32, input-grad-only attacks,
    prefix cache on); they differ only in executor backend and cache
    scoping, so the speedups isolate the round engine itself.
    """
    cpus = os.cpu_count() or 1
    workers = max(1, min(cpus, params["clients_per_round"]))
    variants = {
        "serial_cold": dict(backend="serial", workers=1, stage_cache=False),
        "serial_warm": dict(backend="serial", workers=1, stage_cache=True),
        "parallel_warm": dict(backend="thread", workers=workers, stage_cache=True),
    }
    out: Dict[str, dict] = {"cpus": cpus, "workers": workers}
    for name, spec in variants.items():
        exp, cfg, clients, states = _build_round_exp(
            params, use_cache=True, backend=spec["backend"], workers=spec["workers"]
        )

        def one_round():
            if not spec["stage_cache"]:
                # PR 1 semantics: every round starts with a cold cache.
                exp.prefix_cache.bump_version()
            exp.run_round(0, clients, states)

        t = _best_of(one_round, params["reps"])
        samples = cfg.clients_per_round * cfg.local_iters * cfg.batch_size
        out[name] = {
            "seconds": t,
            "samples_per_sec": samples / t,
            "prefix_cache": exp.prefix_cache.stats(),
        }
    out["speedups"] = {
        "stage_cache": out["serial_cold"]["seconds"] / out["serial_warm"]["seconds"],
        "parallel_warm_round": (
            out["serial_cold"]["seconds"] / out["parallel_warm"]["seconds"]
        ),
    }
    return out


def bench_eval_engine(params: dict) -> Dict[str, dict]:
    """The sharded evaluation engine: serial vs thread-sharded PGD-20 eval.

    One clean + PGD-20 plan over a frozen VGG, decomposed into
    per-batch shards.  Serial is the reference; the thread backend must be
    bit-identical to it (hard failure otherwise — determinism is
    correctness, not a timing) and ≥1.5× faster on ≥2-core machines.  The
    process backend, where fork() exists, is checked for identity only.
    """
    from repro.flsim.eval_executor import EvalExecutor, EvalTarget
    from repro.flsim.executor import BACKENDS as EXEC_BACKENDS, RoundExecutor
    from repro.metrics.evaluation import EvalPlan
    from repro.data import ArrayDataset

    cpus = os.cpu_count() or 1
    n = params["eval_samples"]
    rng = np.random.default_rng(3)
    x = rng.uniform(0.0, 1.0, size=(n, 3, 16, 16))
    y = rng.integers(0, 10, size=n)

    def build():
        model = build_vgg("vgg11", 10, (3, 16, 16), width_mult=0.25,
                          rng=np.random.default_rng(4))
        model.eval()
        return model

    base = build()
    state = base.state_dict()
    x = x.astype(base.parameters()[0].data.dtype)
    dataset = ArrayDataset(x, y)
    plan = EvalPlan.standard(
        eps=8 / 255, pgd_steps=20, batch_size=params["eval_batch"], seed=0
    )
    num_shards = 2 * ((n + params["eval_batch"] - 1) // params["eval_batch"])
    workers = max(1, min(cpus, num_shards))

    replicas = {0: base}

    def target_for_slot(slot):
        model = replicas.get(slot)
        if model is None:
            model = build()
            model.load_state_dict(state)
            replicas[slot] = model
        return EvalTarget(ModelWithLoss(model))

    out: Dict[str, dict] = {"cpus": cpus, "workers": workers}
    results = {}
    timed = {"serial": RoundExecutor("serial"), "thread": RoundExecutor("thread", workers)}
    for name, executor in timed.items():
        engine = EvalExecutor(executor)

        def one_eval(engine=engine):
            # run() zero-grads every target it used before returning
            results[name] = engine.run(plan, dataset, target_for_slot)

        t = _best_of(one_eval, params["reps"])
        out[name] = {"seconds": t, "samples_per_sec": n / t}
    if "process" in EXEC_BACKENDS and hasattr(os, "fork"):
        engine = EvalExecutor(RoundExecutor("process", workers))
        results["process"] = engine.run(plan, dataset, target_for_slot)

    reference = results["serial"]
    for name, result in results.items():
        if result.as_dict() != reference.as_dict():
            raise SystemExit(
                f"FAIL: eval_engine {name} backend diverged from serial: "
                f"{result.as_dict()} != {reference.as_dict()}"
            )
    out["identical_backends"] = sorted(results)
    out["accuracies"] = reference.as_dict()
    out["speedups"] = {
        "thread_sharded_eval": out["serial"]["seconds"] / out["thread"]["seconds"]
    }
    return out


def bench_pipeline_engine(params: dict) -> Dict[str, dict]:
    """The unified task scheduler: barrier vs overlapped round+eval.

    A short jFAT run evaluating every round, on the thread backend, under

    * ``barrier``    — the PR 3 path: the eval shards run after the round
      completes, on the same pool, before the next round starts;
    * ``overlapped`` — ``overlap_eval=True``: each round publishes an
      immutable weight snapshot and its eval shards stream through the
      scheduler concurrently with the next round's clients.

    The round deliberately under-fills the pool (fewer clients than
    workers) — the realistic straggler regime where overlap pays: idle
    cores absorb the previous round's eval shards.  The eval stream must
    be **bit-identical** between the two modes (hard failure otherwise);
    on ≥4-core machines the overlapped run must be ≥1.2× faster.
    """
    from repro.baselines import JointFAT
    from repro.flsim import FLConfig

    cpus = os.cpu_count() or 1
    workers = max(2, min(cpus, 4))
    clients = max(2, workers // 2)
    rounds = params["pipeline_rounds"]

    def build(overlap: bool) -> JointFAT:
        task = make_cifar10_like(
            image_size=8, train_per_class=params["train_per_class"],
            test_per_class=25, seed=0,
        )
        cfg = FLConfig(
            num_clients=6, clients_per_round=clients,
            local_iters=params["local_iters"], batch_size=32, lr=0.05,
            rounds=rounds, train_pgd_steps=2,
            eval_pgd_steps=params["pgd_steps"], eval_every=1,
            eval_max_samples=params["eval_samples"], seed=0,
            executor_backend="thread", round_parallelism=workers,
            overlap_eval=overlap,
        )
        return JointFAT(
            task,
            lambda rng: build_vgg("vgg11", 10, (3, 8, 8), width_mult=0.25, rng=rng),
            cfg,
        )

    out: Dict[str, dict] = {
        "cpus": cpus, "workers": workers,
        "clients_per_round": clients, "rounds": rounds,
    }
    evals = {}
    for name, overlap in (("barrier", False), ("overlapped", True)):
        best = float("inf")
        history = None
        for _ in range(params["reps"]):
            exp = build(overlap)
            t0 = time.perf_counter()
            history = exp.run()
            best = min(best, time.perf_counter() - t0)
            exp.close()
        evals[name] = [r.eval.as_dict() for r in history]
        out[name] = {"seconds": best, "rounds_per_sec": rounds / best}
    if evals["overlapped"] != evals["barrier"]:
        raise SystemExit(
            "FAIL: pipeline_engine overlapped eval stream diverged from the "
            f"barrier path: {evals['overlapped']} != {evals['barrier']}"
        )
    out["identical_eval_stream"] = True
    out["speedups"] = {
        "overlapped_round_eval": out["barrier"]["seconds"] / out["overlapped"]["seconds"]
    }
    return out


def bench_pipeline_async(params: dict) -> Dict[str, dict]:
    """The cross-round async pipeline: round-drain vs pipelined dispatch.

    A short jFAT run under async aggregation on the thread backend, with
    an *unbalanced* device pool (heterogeneous simulated latencies — the
    straggler regime cross-round dispatch exists for) and fewer clients
    per round than workers:

    * ``barrier_async`` — ``pipeline_depth=1``: every round drains before
      the next dispatches (the PR 4 async engine);
    * ``pipelined``     — ``pipeline_depth=3``: up to three rounds in
      flight; fast clients of round *r+1* train against the latest merged
      server state while round *r*'s stragglers finish, so idle workers
      stay fed.

    The pipelined run is executed on both the serial and thread backends
    and must produce **bit-identical** final weights and merge logs (hard
    failure otherwise); on ≥4-core machines the thread-pipelined run must
    be ≥1.2× faster than the depth-1 barrier.
    """
    from repro.baselines import JointFAT
    from repro.flsim import FLConfig
    from repro.hardware import DeviceSampler, device_pool

    cpus = os.cpu_count() or 1
    workers = max(2, min(cpus, 4))
    clients = max(2, workers // 2)
    rounds = params["pipeline_rounds"] + 2
    depth = 3

    def build(pipeline_depth: int, backend: str = "thread") -> JointFAT:
        task = make_cifar10_like(
            image_size=8, train_per_class=params["train_per_class"],
            test_per_class=10, seed=0,
        )
        cfg = FLConfig(
            num_clients=6, clients_per_round=clients,
            local_iters=params["local_iters"], batch_size=32, lr=0.05,
            rounds=rounds, train_pgd_steps=2, eval_pgd_steps=2, eval_every=0,
            seed=0, executor_backend=backend,
            round_parallelism=workers if backend == "thread" else 1,
            aggregation_mode="async", max_staleness=2,
            pipeline_depth=pipeline_depth,
        )
        return JointFAT(
            task,
            lambda rng: build_vgg("vgg11", 10, (3, 8, 8), width_mult=0.25, rng=rng),
            cfg,
            device_sampler=DeviceSampler(device_pool("cifar10"), "unbalanced"),
        )

    out: Dict[str, dict] = {
        "cpus": cpus, "workers": workers,
        "clients_per_round": clients, "rounds": rounds, "depth": depth,
    }
    finals = {}
    logs = {}
    for name, pipeline_depth in (("barrier_async", 1), ("pipelined", depth)):
        best = float("inf")
        exp = None
        for _ in range(params["reps"]):
            exp = build(pipeline_depth)
            t0 = time.perf_counter()
            exp.run()
            best = min(best, time.perf_counter() - t0)
            exp.close()
        finals[name] = exp.global_model.state_dict()
        logs[name] = exp.async_log
        out[name] = {
            "seconds": best,
            "rounds_per_sec": rounds / best,
            "peak_in_flight": exp._last_pipeline_stats["peak_in_flight"],
        }
    # Hard determinism check: the pipelined schedule replays identically on
    # the serial backend (no wall-clock overlap, same simulated order).
    serial = build(depth, backend="serial")
    serial.run()
    serial.close()
    for key, value in serial.global_model.state_dict().items():
        if not np.array_equal(value, finals["pipelined"][key]):
            raise SystemExit(
                f"FAIL: pipeline_async thread backend diverged from serial "
                f"at {key!r}"
            )
    if serial.async_log != logs["pipelined"]:
        raise SystemExit(
            "FAIL: pipeline_async merge log diverged between serial and "
            "thread backends"
        )
    out["identical_backends"] = ["serial", "thread"]
    out["speedups"] = {
        "pipelined_async": (
            out["barrier_async"]["seconds"] / out["pipelined"]["seconds"]
        )
    }
    return out


def bench_fault_tolerance(params: dict) -> Dict[str, dict]:
    """The crash-tolerance layer: journal + checkpoints vs a bare run.

    The same short synchronous jFAT run twice:

    * ``journal_off`` — no journal, no checkpoints (the PR 5 engine);
    * ``journal_on``  — an append-only JSONL journal (flushed per event)
      plus an atomic full-state checkpoint every 2 rounds.

    The journalled run must produce **bit-identical** final weights (the
    journal only observes the run; checkpointing must not perturb it —
    hard failure otherwise), and its wall-clock overhead is gated at
    <= 5% of the bare run.
    """
    import shutil
    import tempfile

    from repro.baselines import JointFAT
    from repro.flsim import FLConfig

    rounds = params["pipeline_rounds"] + 2
    checkpoint_every = 2

    def build(journal_path=None) -> JointFAT:
        task = make_cifar10_like(
            image_size=8, train_per_class=params["train_per_class"],
            test_per_class=10, seed=0,
        )
        cfg = FLConfig(
            num_clients=6, clients_per_round=3,
            local_iters=params["local_iters"], batch_size=32, lr=0.05,
            rounds=rounds, train_pgd_steps=2, eval_pgd_steps=2, eval_every=0,
            seed=0, journal_path=journal_path,
            checkpoint_every=checkpoint_every if journal_path else 0,
        )
        return JointFAT(
            task,
            lambda rng: build_vgg("vgg11", 10, (3, 8, 8), width_mult=0.25, rng=rng),
            cfg,
        )

    out: Dict[str, dict] = {
        "cpus": os.cpu_count() or 1, "rounds": rounds,
        "checkpoint_every": checkpoint_every,
    }
    workdir = tempfile.mkdtemp(prefix="bench-fault-tolerance-")
    finals = {}
    best = {"journal_off": float("inf"), "journal_on": float("inf")}
    try:
        # Interleave the variants (alternating which goes first) so
        # machine-load drift hits both equally instead of biasing the
        # overhead ratio, and use extra reps: the gate compares two
        # near-equal times, so the min needs more samples to converge
        # than a >=2x speedup check does.
        for rep in range(max(params["reps"], 5)):
            order = ("journal_off", "journal_on")
            for name in (order if rep % 2 == 0 else order[::-1]):
                journal = (
                    os.path.join(workdir, f"run-{rep}.jsonl")
                    if name == "journal_on" else None
                )
                exp = build(journal)
                t0 = time.perf_counter()
                exp.run()
                best[name] = min(best[name], time.perf_counter() - t0)
                exp.close()
                finals[name] = exp.global_model.state_dict()
        for name in ("journal_off", "journal_on"):
            out[name] = {
                "seconds": best[name], "rounds_per_sec": rounds / best[name],
            }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    for key, value in finals["journal_off"].items():
        if not np.array_equal(value, finals["journal_on"][key]):
            raise SystemExit(
                f"FAIL: fault_tolerance journalled run diverged from the "
                f"bare run at {key!r}"
            )
    out["identical_with_journal"] = True
    out["overhead_frac"] = (
        out["journal_on"]["seconds"] / out["journal_off"]["seconds"] - 1.0
    )
    return out


def bench_robust_agg(params: dict) -> Dict[str, dict]:
    """The robust-aggregation layer: median / trimmed-mean vs FedAvg.

    The same short synchronous jFAT run under ``aggregation_rule`` =
    ``fedavg`` (the historical weighted average), ``median``, and
    ``trimmed_mean``.  The robust statistic replaces one vectorised
    average per round — a cold path next to local training — so its
    wall-clock overhead is gated at <= 10% of the FedAvg run
    (``docs/threat-model.md``).
    """
    from repro.baselines import JointFAT
    from repro.flsim import FLConfig

    rounds = params["pipeline_rounds"] + 2
    rules = ("fedavg", "median", "trimmed_mean")

    def build(rule: str) -> JointFAT:
        task = make_cifar10_like(
            image_size=8, train_per_class=params["train_per_class"],
            test_per_class=10, seed=0,
        )
        cfg = FLConfig(
            num_clients=6, clients_per_round=3,
            local_iters=params["local_iters"], batch_size=32, lr=0.05,
            rounds=rounds, train_pgd_steps=2, eval_pgd_steps=2, eval_every=0,
            seed=0, aggregation_rule=rule,
        )
        return JointFAT(
            task,
            lambda rng: build_vgg("vgg11", 10, (3, 8, 8), width_mult=0.25, rng=rng),
            cfg,
        )

    out: Dict[str, dict] = {"cpus": os.cpu_count() or 1, "rounds": rounds}
    best = {rule: float("inf") for rule in rules}
    # Interleave the rules (rotating which goes first) so machine-load
    # drift hits all of them equally: the gate compares near-equal times,
    # same as the fault-tolerance overhead gate.
    for rep in range(max(params["reps"], 5)):
        order = rules[rep % len(rules):] + rules[:rep % len(rules)]
        for rule in order:
            exp = build(rule)
            t0 = time.perf_counter()
            exp.run()
            best[rule] = min(best[rule], time.perf_counter() - t0)
            exp.close()
    for rule in rules:
        out[rule] = {
            "seconds": best[rule], "rounds_per_sec": rounds / best[rule],
        }
    out["overhead_frac"] = {
        rule: best[rule] / best["fedavg"] - 1.0 for rule in rules[1:]
    }
    return out


def _build_jfat_many_small(params: dict, backend: str, workers: int,
                           fusion_width: int = 1, rounds: int = 1,
                           aggregation_mode: str = "sync",
                           pipeline_depth: int = 1, unbalanced: bool = False):
    """A jFAT run in the many-small-clients regime the batched backend
    targets: 16 clients per round, tiny per-client batches over a small
    CNN, so Python/numpy per-call overhead — not BLAS — dominates the
    serial round.  Equal shards mean every client shares one fusion key.
    """
    from repro.baselines import JointFAT
    from repro.flsim import FLConfig
    from repro.hardware import DeviceSampler, device_pool
    from repro.models.cnn import build_cnn

    task = make_cifar10_like(
        image_size=8, train_per_class=params["train_per_class"],
        test_per_class=10, seed=0,
    )
    cfg = FLConfig(
        num_clients=16, clients_per_round=16,
        local_iters=params["local_iters"], batch_size=4, lr=0.05,
        rounds=rounds, train_pgd_steps=2, eval_pgd_steps=2, eval_every=0,
        seed=0, executor_backend=backend, round_parallelism=workers,
        fusion_width=fusion_width,
        aggregation_mode=aggregation_mode, max_staleness=2,
        pipeline_depth=pipeline_depth,
    )
    return JointFAT(
        task,
        lambda rng: build_cnn(3, num_classes=10, in_shape=(3, 8, 8),
                              base_channels=8, rng=rng),
        cfg,
        device_sampler=(
            DeviceSampler(device_pool("cifar10"), "unbalanced")
            if unbalanced else None
        ),
    )


def bench_client_batched(params: dict) -> Dict[str, dict]:
    """The client-batched execution backend vs per-client dispatch.

    One synchronous jFAT round over 16 homogeneous clients with tiny
    per-client batches, under three backends:

    * ``serial``  — the reference per-client loop;
    * ``thread``  — per-client tasks on the thread pool (GIL-bound on
      this workload: the ops are too small for BLAS to release the GIL
      for long);
    * ``batched`` — fusion cohorts of 8: one stacked forward/backward
      per cohort over per-layer weight slabs, cohorts striped over the
      same pool.

    The batched backend must be **bit-identical to serial** — checked
    hard on final weights and round history for a full sync run at
    fusion widths 1, 2 and 4, and on final weights + merge log for a
    ``pipeline_depth=2`` async run (SystemExit otherwise) — and ≥2×
    faster than the thread backend on ≥4-core machines (vectorisation
    and parallelism compose: cohorts stripe over workers).
    """
    cpus = os.cpu_count() or 1
    workers = max(1, min(cpus, 4))
    fusion = 8
    out: Dict[str, dict] = {"cpus": cpus, "workers": workers, "fusion_width": fusion}

    variants = {
        "serial": dict(backend="serial", workers=1, fusion_width=1),
        "thread": dict(backend="thread", workers=workers, fusion_width=1),
        "batched": dict(backend="batched", workers=workers, fusion_width=fusion),
    }
    for name, spec in variants.items():
        exp = _build_jfat_many_small(params, spec["backend"], spec["workers"],
                                     fusion_width=spec["fusion_width"])
        clients, states = exp.sample_round(0)

        def one_round():
            exp.run_round(0, clients, states)

        t = _best_of(one_round, params["reps"])
        samples = exp.config.clients_per_round * exp.config.local_iters * exp.config.batch_size
        out[name] = {"seconds": t, "samples_per_sec": samples / t}
        exp.close()

    # Hard bit-identity, sync: full runs at fusion widths 1/2/4/8 must
    # reproduce the serial weights and history exactly.
    def run_sync(backend, fusion_width):
        exp = _build_jfat_many_small(params, backend,
                                     workers if backend != "serial" else 1,
                                     fusion_width=fusion_width, rounds=2)
        history = exp.run()
        final = exp.global_model.state_dict()
        exp.close()
        return final, [(r.round, r.sim_time_s, r.compute_s) for r in history]

    ref_state, ref_history = run_sync("serial", 1)
    widths = (1, 2, 4, fusion)
    for width in widths:
        state, history = run_sync("batched", width)
        if history != ref_history:
            raise SystemExit(
                f"FAIL: client_batched fusion={width} history diverged from serial"
            )
        for key, value in ref_state.items():
            if not np.array_equal(value, state[key]):
                raise SystemExit(
                    f"FAIL: client_batched fusion={width} diverged from "
                    f"serial at {key!r}"
                )

    # Hard bit-identity, async: the cross-round pipeline (depth 2) must
    # replay the same merge log and weights under cohort fusion.
    def run_async(backend, fusion_width):
        exp = _build_jfat_many_small(
            params, backend, workers if backend != "serial" else 1,
            fusion_width=fusion_width, rounds=3,
            aggregation_mode="async", pipeline_depth=2, unbalanced=True,
        )
        exp.run()
        final = exp.global_model.state_dict()
        log = exp.async_log
        exp.close()
        return final, log

    ref_async, ref_log = run_async("serial", 1)
    async_state, async_log = run_async("batched", fusion)
    if async_log != ref_log:
        raise SystemExit(
            "FAIL: client_batched async merge log diverged from serial"
        )
    for key, value in ref_async.items():
        if not np.array_equal(value, async_state[key]):
            raise SystemExit(
                f"FAIL: client_batched async run diverged from serial at {key!r}"
            )

    out["identical_fusion_widths"] = list(widths)
    out["identical_async_depth2"] = True
    out["speedups"] = {
        "batched_vs_serial": out["serial"]["seconds"] / out["batched"]["seconds"],
        "batched_vs_thread": out["thread"]["seconds"] / out["batched"]["seconds"],
    }
    return out


def bench_thread_scaling(params: dict) -> Dict[str, dict]:
    """Thread-backend scaling sweep: the same sync round at 1/2/4/8 workers.

    Report-only (no gate): records where per-client thread dispatch
    stops scaling on this runner, as the baseline the batched backend is
    judged against.  Worker counts above the core count are skipped, and
    the regression differ already restricts comparisons to history
    entries with a matching ``cpu_count``, so sweeps from different
    runners never diff against each other.
    """
    cpus = os.cpu_count() or 1
    counts = [w for w in (1, 2, 4, 8) if w <= cpus] or [1]
    out: Dict[str, dict] = {"cpus": cpus, "worker_counts": counts}
    for w in counts:
        exp = _build_jfat_many_small(params, "thread", w)
        clients, states = exp.sample_round(0)

        def one_round():
            exp.run_round(0, clients, states)

        t = _best_of(one_round, params["reps"])
        samples = exp.config.clients_per_round * exp.config.local_iters * exp.config.batch_size
        out[f"w{w}"] = {"seconds": t, "samples_per_sec": samples / t}
        exp.close()
    base = out[f"w{counts[0]}"]["seconds"]
    out["scaling"] = {f"w{w}": base / out[f"w{w}"]["seconds"] for w in counts}
    return out


def bench_replay_service(params: dict) -> Dict[str, dict]:
    """The streaming-metrics service (PR 10) vs a bare journalled run.

    The same short journalled jFAT run twice:

    * ``metrics_off`` — journal only (the PR 6 fault-tolerance engine);
    * ``metrics_on``  — journal plus the :class:`MetricsService` tee:
      flushed JSONL metrics rows and a live HTTP status endpoint on an
      ephemeral port.

    The observed run must produce **bit-identical** final weights (the
    service only reads event payloads — hard failure otherwise), and its
    wall-clock overhead is gated at <= 5% of the bare journalled run.
    The recorded journal is then verified end-to-end with
    :func:`~repro.flsim.replay.replay_run` (bit-identity is a hard
    check; the replay timing itself is report-only).
    """
    import shutil
    import tempfile

    from repro.baselines import JointFAT
    from repro.flsim import FLConfig
    from repro.flsim.replay import replay_run

    rounds = params["pipeline_rounds"] + 2

    def build(journal_path, metrics=False):
        task = make_cifar10_like(
            image_size=8, train_per_class=params["train_per_class"],
            test_per_class=10, seed=0,
        )
        cfg = FLConfig(
            num_clients=6, clients_per_round=3,
            local_iters=params["local_iters"], batch_size=32, lr=0.05,
            rounds=rounds, train_pgd_steps=2, eval_pgd_steps=2, eval_every=0,
            seed=0, journal_path=journal_path,
            metrics_path=(
                journal_path + ".metrics.jsonl" if metrics else None
            ),
            status_port=0 if metrics else None,
        )
        return JointFAT(
            task,
            lambda rng: build_vgg("vgg11", 10, (3, 8, 8), width_mult=0.25, rng=rng),
            cfg,
        )

    out: Dict[str, dict] = {"cpus": os.cpu_count() or 1, "rounds": rounds}
    workdir = tempfile.mkdtemp(prefix="bench-replay-service-")
    finals = {}
    best = {"metrics_off": float("inf"), "metrics_on": float("inf")}
    journal_for_replay = None
    try:
        # Interleave the variants (alternating which goes first) so
        # machine-load drift hits both equally; the gate compares two
        # near-equal times, so the min needs the extra reps to converge.
        for rep in range(max(params["reps"], 5)):
            order = ("metrics_off", "metrics_on")
            for name in (order if rep % 2 == 0 else order[::-1]):
                journal = os.path.join(workdir, f"{name}-{rep}.jsonl")
                exp = build(journal, metrics=name == "metrics_on")
                t0 = time.perf_counter()
                exp.run()
                best[name] = min(best[name], time.perf_counter() - t0)
                exp.close()
                finals[name] = exp.global_model.state_dict()
                if name == "metrics_off":
                    journal_for_replay = journal
        for name in ("metrics_off", "metrics_on"):
            out[name] = {
                "seconds": best[name], "rounds_per_sec": rounds / best[name],
            }
        for key, value in finals["metrics_off"].items():
            if not np.array_equal(value, finals["metrics_on"][key]):
                raise SystemExit(
                    f"FAIL: replay_service observed run diverged from the "
                    f"bare journalled run at {key!r}"
                )
        out["identical_with_metrics"] = True
        t0 = time.perf_counter()
        report = replay_run(journal_for_replay, lambda: build(None))
        out["replay"] = {
            "seconds": time.perf_counter() - t0,
            "events_verified": report.events_verified,
            "rounds": report.rounds,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    out["overhead_frac"] = (
        out["metrics_on"]["seconds"] / out["metrics_off"]["seconds"] - 1.0
    )
    return out


def bench_population_scale(params: dict) -> Dict[str, dict]:
    """The population engine (PR 9): O(cohort) setup at any population.

    The same lazy virtual-scheme jFAT experiment at populations 100,
    10k, and 1M clients (cohort 10, fixed ``samples_per_client`` so the
    per-round work is identical).  Setup (experiment construction —
    which used to partition the whole dataset and build every client)
    and one full federated round are timed per population.

    Hard checks: the number of clients ever materialised must stay
    within the LRU capacity at every population (``SystemExit``
    otherwise — that *is* the O(cohort) memory claim), and at the small
    population a full lazy run must be bit-identical to the eager run.
    The soft gate requires 1M-client setup ≤ 2× the 100-client setup
    (plus 50 ms slack for timer noise): setup independent of population.
    """
    from repro.baselines import JointFAT
    from repro.flsim import FLConfig
    from repro.models.cnn import build_cnn

    populations = (100, 10_000, 1_000_000)
    cohort = 10

    task = make_cifar10_like(
        image_size=8, train_per_class=params["train_per_class"],
        test_per_class=10, seed=0,
    )

    def build(population: int, materialisation: str = "lazy") -> JointFAT:
        cfg = FLConfig(
            num_clients=population, clients_per_round=cohort,
            local_iters=params["local_iters"], batch_size=8, lr=0.05,
            rounds=2, train_pgd_steps=2, eval_pgd_steps=2, eval_every=0,
            seed=0, population_scheme="virtual",
            client_materialisation=materialisation, samples_per_client=32,
        )
        return JointFAT(
            task,
            lambda rng: build_cnn(3, num_classes=10, in_shape=(3, 8, 8),
                                  base_channels=8, rng=rng),
            cfg,
        )

    out: Dict[str, dict] = {
        "cpus": os.cpu_count() or 1,
        "populations": list(populations),
        "cohort": cohort,
    }
    for population in populations:
        best_setup = best_round = float("inf")
        stats = capacity = None
        for _ in range(max(params["reps"], 3)):
            t0 = time.perf_counter()
            exp = build(population)
            setup = time.perf_counter() - t0
            clients, states = exp.sample_round(0)
            t0 = time.perf_counter()
            exp.run_round(0, clients, states)
            best_round = min(best_round, time.perf_counter() - t0)
            best_setup = min(best_setup, setup)
            stats = exp.clients.stats()
            capacity = exp.clients.cache_capacity
            exp.close()
        if capacity is not None and stats["peak_live"] > capacity:
            raise SystemExit(
                f"FAIL: population_scale {population}-client run "
                f"materialised {stats['peak_live']} clients, over the LRU "
                f"capacity {capacity}"
            )
        out[f"p{population}"] = {
            "setup_seconds": best_setup,
            "round_seconds": best_round,
            "rounds_per_sec": 1.0 / best_round,
            "materialised_peak": stats["peak_live"],
            "cache_capacity": capacity,
        }

    # Hard bit-identity: lazy and eager materialisation are the same run.
    finals = {}
    for materialisation in ("eager", "lazy"):
        exp = build(populations[0], materialisation)
        exp.run()
        finals[materialisation] = exp.global_model.state_dict()
        exp.close()
    for key, value in finals["eager"].items():
        if not np.array_equal(value, finals["lazy"][key]):
            raise SystemExit(
                f"FAIL: population_scale lazy run diverged from eager "
                f"at {key!r}"
            )
    out["identical_lazy_eager"] = True
    out["setup_ratio_1m_vs_100"] = (
        out[f"p{populations[-1]}"]["setup_seconds"]
        / max(out[f"p{populations[0]}"]["setup_seconds"], 1e-9)
    )
    return out


def run_mode(mode: str, params: dict) -> Dict[str, dict]:
    spec = MODES[mode]
    previous = set_fast_path(spec["fast_path"])
    results: Dict[str, dict] = {}
    try:
        with dtype_scope(spec["dtype"]):
            for name, (secs, n) in bench_conv(params).items():
                results[name] = {"seconds": secs, "samples_per_sec": n / secs}
            for name, (secs, n) in bench_pgd(params).items():
                results[name] = {"seconds": secs, "samples_per_sec": n / secs}
            for name, (secs, n, stats) in bench_fed_round(
                params, use_cache=spec["cache"]
            ).items():
                results[name] = {"seconds": secs, "samples_per_sec": n / secs}
                if stats is not None:
                    results[name]["prefix_cache"] = stats
    finally:
        set_fast_path(previous)
    return results


def _git_sha() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, cwd=Path(__file__).resolve().parent,
                timeout=10,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - git absent/hung
        return "unknown"


def _flat_metrics(entry: dict) -> Dict[str, float]:
    """All samples/sec metrics of one history entry, flattened for diffing."""
    out: Dict[str, float] = {}
    for mode, paths in entry.get("modes", {}).items():
        for name, rec in paths.items():
            out[f"{mode}.{name}"] = rec["samples_per_sec"]
    for variant in ("serial_cold", "serial_warm", "parallel_warm"):
        rec = entry.get("round_engine", {}).get(variant)
        if rec is not None:
            out[f"round_engine.{variant}"] = rec["samples_per_sec"]
    for variant in ("serial", "thread"):
        rec = entry.get("eval_engine", {}).get(variant)
        if rec is not None:
            out[f"eval_engine.{variant}"] = rec["samples_per_sec"]
    for variant in ("barrier", "overlapped"):
        rec = entry.get("pipeline_engine", {}).get(variant)
        if rec is not None:
            out[f"pipeline_engine.{variant}"] = rec["rounds_per_sec"]
    for variant in ("barrier_async", "pipelined"):
        rec = entry.get("pipeline_async", {}).get(variant)
        if rec is not None:
            out[f"pipeline_async.{variant}"] = rec["rounds_per_sec"]
    for variant in ("journal_off", "journal_on"):
        rec = entry.get("fault_tolerance", {}).get(variant)
        if rec is not None:
            out[f"fault_tolerance.{variant}"] = rec["rounds_per_sec"]
    for variant in ("fedavg", "median", "trimmed_mean"):
        rec = entry.get("robust_agg", {}).get(variant)
        if rec is not None:
            out[f"robust_agg.{variant}"] = rec["rounds_per_sec"]
    for variant in ("serial", "thread", "batched"):
        rec = entry.get("client_batched", {}).get(variant)
        if rec is not None:
            out[f"client_batched.{variant}"] = rec["samples_per_sec"]
    for w in entry.get("thread_scaling", {}).get("worker_counts", []):
        rec = entry["thread_scaling"].get(f"w{w}")
        if rec is not None:
            out[f"thread_scaling.w{w}"] = rec["samples_per_sec"]
    for n in entry.get("population_scale", {}).get("populations", []):
        rec = entry["population_scale"].get(f"p{n}")
        if rec is not None:
            out[f"population_scale.p{n}"] = rec["rounds_per_sec"]
    return out


def _load_history(path: Path) -> list:
    """Existing run history; wraps a pre-history single-report file."""
    if not path.exists():
        return []
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError:
        return []
    if isinstance(data, dict) and "history" in data:
        return list(data["history"])
    if isinstance(data, dict) and "modes" in data:  # PR 1 single-report format
        legacy = {k: v for k, v in data.items() if k != "bench"}
        legacy.setdefault("sha", "pre-history")
        legacy.setdefault("date", None)
        return [legacy]
    return []


def _check_regressions(history: list, entry: dict) -> list:
    """Warnings for metrics that dropped >20% vs the previous comparable run.

    Comparable means the same scale *and* the same runner ``cpu_count``:
    the parallel sections' throughput scales with cores, so diffing a
    4-core entry against a 2-core one reports phantom regressions (or
    masks real ones).  Entries from before ``cpu_count`` was recorded
    never match — an unknown core count is not evidence of anything.
    """
    previous = next(
        (
            e
            for e in reversed(history)
            if e.get("scale") == entry["scale"]
            and e.get("cpu_count") == entry["cpu_count"]
        ),
        None,
    )
    if previous is None:
        return []
    old, new = _flat_metrics(previous), _flat_metrics(entry)
    warnings = []
    for name in sorted(set(old) & set(new)):
        if old[name] <= 0:
            continue
        drop = 1.0 - new[name] / old[name]
        if drop > REGRESSION_TOLERANCE:
            warnings.append(
                f"{name}: {new[name]:.1f} samples/s, down "
                f"{drop * 100:.0f}% vs {previous.get('sha', '?')} ({old[name]:.1f})"
            )
    return warnings


def main() -> dict:
    if SCALE not in SCALES:
        raise SystemExit(
            f"unknown REPRO_BENCH_SCALE {SCALE!r}; expected one of {sorted(SCALES)}"
        )
    params = SCALES[SCALE]
    report = {
        "sha": _git_sha(),
        "date": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scale": SCALE,
        "cpu_count": os.cpu_count() or 1,
        "modes": {},
        "speedups": {},
    }
    for mode in ("baseline", "fast"):
        report["modes"][mode] = run_mode(mode, params)

    rows = []
    for name in report["modes"]["baseline"]:
        base = report["modes"]["baseline"][name]["samples_per_sec"]
        fast = report["modes"]["fast"][name]["samples_per_sec"]
        speedup = fast / base
        report["speedups"][name] = speedup
        rows.append((name, f"{base:.1f}", f"{fast:.1f}", f"{speedup:.2f}x"))

    print(
        format_table(
            ["hot path", "baseline (samples/s)", "fast (samples/s)", "speedup"],
            rows,
            title=f"Fast-path execution engine — scale={SCALE}",
        )
    )

    # Round execution engine: runs entirely on the fast path.
    previous_fast = set_fast_path(True)
    try:
        report["round_engine"] = bench_round_engine(params)
    finally:
        set_fast_path(previous_fast)
    engine = report["round_engine"]
    print(
        format_table(
            ["variant", "seconds", "samples/s", "hit rate"],
            [
                (
                    name,
                    f"{engine[name]['seconds']:.3f}",
                    f"{engine[name]['samples_per_sec']:.1f}",
                    f"{engine[name]['prefix_cache']['hit_rate']:.2f}",
                )
                for name in ("serial_cold", "serial_warm", "parallel_warm")
            ],
            title=(
                f"Round execution engine — {engine['workers']} worker(s), "
                f"{engine['cpus']} cpu(s)"
            ),
        )
    )
    print(
        f"stage-scoped cache: {engine['speedups']['stage_cache']:.2f}x, "
        f"parallel+warm round: {engine['speedups']['parallel_warm_round']:.2f}x"
    )

    # Sharded evaluation engine: also runs entirely on the fast path.
    previous_fast = set_fast_path(True)
    try:
        report["eval_engine"] = bench_eval_engine(params)
    finally:
        set_fast_path(previous_fast)
    ee = report["eval_engine"]
    print(
        format_table(
            ["backend", "seconds", "samples/s"],
            [
                (name, f"{ee[name]['seconds']:.3f}", f"{ee[name]['samples_per_sec']:.1f}")
                for name in ("serial", "thread")
            ],
            title=(
                f"Evaluation engine (clean + PGD-20) — {ee['workers']} worker(s), "
                f"{ee['cpus']} cpu(s), backends bit-identical: "
                f"{','.join(ee['identical_backends'])}"
            ),
        )
    )
    print(
        f"thread-sharded eval: {ee['speedups']['thread_sharded_eval']:.2f}x"
    )

    # Pipeline engine: barrier vs overlapped round+eval on the scheduler.
    previous_fast = set_fast_path(True)
    try:
        report["pipeline_engine"] = bench_pipeline_engine(params)
    finally:
        set_fast_path(previous_fast)
    pe = report["pipeline_engine"]
    print(
        format_table(
            ["mode", "seconds", "rounds/s"],
            [
                (name, f"{pe[name]['seconds']:.3f}", f"{pe[name]['rounds_per_sec']:.2f}")
                for name in ("barrier", "overlapped")
            ],
            title=(
                f"Pipeline engine (round+eval x{pe['rounds']}) — "
                f"{pe['clients_per_round']} client(s)/round on {pe['workers']} "
                f"worker(s), {pe['cpus']} cpu(s), eval stream bit-identical: "
                f"{pe['identical_eval_stream']}"
            ),
        )
    )
    print(
        f"overlapped round+eval: {pe['speedups']['overlapped_round_eval']:.2f}x"
    )

    # Cross-round async pipeline: barrier async vs pipelined dispatch.
    previous_fast = set_fast_path(True)
    try:
        report["pipeline_async"] = bench_pipeline_async(params)
    finally:
        set_fast_path(previous_fast)
    pa = report["pipeline_async"]
    print(
        format_table(
            ["mode", "seconds", "rounds/s", "peak in flight"],
            [
                (
                    name,
                    f"{pa[name]['seconds']:.3f}",
                    f"{pa[name]['rounds_per_sec']:.2f}",
                    str(pa[name]["peak_in_flight"]),
                )
                for name in ("barrier_async", "pipelined")
            ],
            title=(
                f"Cross-round async pipeline (depth {pa['depth']}, "
                f"{pa['rounds']} rounds) — {pa['clients_per_round']} "
                f"client(s)/round on {pa['workers']} worker(s), "
                f"{pa['cpus']} cpu(s), backends bit-identical: "
                f"{','.join(pa['identical_backends'])}"
            ),
        )
    )
    print(f"pipelined async rounds: {pa['speedups']['pipelined_async']:.2f}x")

    # Crash-tolerance layer: journalled + checkpointed run vs bare run.
    previous_fast = set_fast_path(True)
    try:
        report["fault_tolerance"] = bench_fault_tolerance(params)
    finally:
        set_fast_path(previous_fast)
    ft = report["fault_tolerance"]
    print(
        format_table(
            ["mode", "seconds", "rounds/s"],
            [
                (name, f"{ft[name]['seconds']:.3f}", f"{ft[name]['rounds_per_sec']:.2f}")
                for name in ("journal_off", "journal_on")
            ],
            title=(
                f"Crash tolerance (journal + checkpoint every "
                f"{ft['checkpoint_every']} of {ft['rounds']} rounds) — "
                f"weights bit-identical: {ft['identical_with_journal']}"
            ),
        )
    )
    print(f"journal+checkpoint overhead: {ft['overhead_frac'] * 100:.1f}%")

    # Robust aggregation: median / trimmed-mean vs the FedAvg reference.
    previous_fast = set_fast_path(True)
    try:
        report["robust_agg"] = bench_robust_agg(params)
    finally:
        set_fast_path(previous_fast)
    ra = report["robust_agg"]
    print(
        format_table(
            ["rule", "seconds", "rounds/s", "overhead"],
            [
                (
                    rule,
                    f"{ra[rule]['seconds']:.3f}",
                    f"{ra[rule]['rounds_per_sec']:.2f}",
                    "-" if rule == "fedavg"
                    else f"{ra['overhead_frac'][rule] * 100:.1f}%",
                )
                for rule in ("fedavg", "median", "trimmed_mean")
            ],
            title=f"Robust aggregation ({ra['rounds']} rounds, sync jFAT)",
        )
    )

    # Client-batched execution backend: fusion cohorts vs per-client dispatch.
    previous_fast = set_fast_path(True)
    try:
        report["client_batched"] = bench_client_batched(params)
    finally:
        set_fast_path(previous_fast)
    cb = report["client_batched"]
    print(
        format_table(
            ["backend", "seconds", "samples/s"],
            [
                (name, f"{cb[name]['seconds']:.3f}", f"{cb[name]['samples_per_sec']:.1f}")
                for name in ("serial", "thread", "batched")
            ],
            title=(
                f"Client-batched backend (fusion width {cb['fusion_width']}) — "
                f"{cb['workers']} worker(s), {cb['cpus']} cpu(s), bit-identical "
                f"at widths {cb['identical_fusion_widths']} sync + depth-2 async"
            ),
        )
    )
    print(
        f"batched vs serial: {cb['speedups']['batched_vs_serial']:.2f}x, "
        f"batched vs thread: {cb['speedups']['batched_vs_thread']:.2f}x"
    )

    # Thread-backend scaling sweep (report-only baseline for the above).
    previous_fast = set_fast_path(True)
    try:
        report["thread_scaling"] = bench_thread_scaling(params)
    finally:
        set_fast_path(previous_fast)
    ts = report["thread_scaling"]
    print(
        format_table(
            ["workers", "seconds", "samples/s", "scaling"],
            [
                (
                    str(w),
                    f"{ts[f'w{w}']['seconds']:.3f}",
                    f"{ts[f'w{w}']['samples_per_sec']:.1f}",
                    f"{ts['scaling'][f'w{w}']:.2f}x",
                )
                for w in ts["worker_counts"]
            ],
            title=f"Thread-backend scaling sweep — {ts['cpus']} cpu(s)",
        )
    )

    # Population engine: O(cohort) lazy materialisation at any population.
    previous_fast = set_fast_path(True)
    try:
        report["population_scale"] = bench_population_scale(params)
    finally:
        set_fast_path(previous_fast)
    ps = report["population_scale"]
    print(
        format_table(
            ["population", "setup (s)", "round (s)", "materialised", "cache cap"],
            [
                (
                    f"{n:,}",
                    f"{ps[f'p{n}']['setup_seconds']:.4f}",
                    f"{ps[f'p{n}']['round_seconds']:.3f}",
                    str(ps[f"p{n}"]["materialised_peak"]),
                    str(ps[f"p{n}"]["cache_capacity"]),
                )
                for n in ps["populations"]
            ],
            title=(
                f"Population engine (lazy virtual, cohort {ps['cohort']}) — "
                f"lazy/eager bit-identical: {ps['identical_lazy_eager']}"
            ),
        )
    )
    print(
        f"1M-vs-100-client setup ratio: {ps['setup_ratio_1m_vs_100']:.2f}x"
    )

    # Streaming-metrics service + deterministic replay (PR 10).
    previous_fast = set_fast_path(True)
    try:
        report["replay_service"] = bench_replay_service(params)
    finally:
        set_fast_path(previous_fast)
    rs = report["replay_service"]
    print(
        format_table(
            ["mode", "seconds", "rounds/s"],
            [
                (name, f"{rs[name]['seconds']:.3f}", f"{rs[name]['rounds_per_sec']:.2f}")
                for name in ("metrics_off", "metrics_on")
            ],
            title=(
                f"Streaming metrics service ({rs['rounds']} journalled "
                f"rounds) — weights bit-identical: "
                f"{rs['identical_with_metrics']}"
            ),
        )
    )
    print(
        f"metrics+status overhead: {rs['overhead_frac'] * 100:.1f}%, replay "
        f"verified {rs['replay']['events_verified']} events in "
        f"{rs['replay']['seconds']:.3f}s"
    )

    out_path = Path(__file__).resolve().parent.parent / "BENCH_PERF.json"
    history = _load_history(out_path)
    for warning in _check_regressions(history, report):
        print(f"WARN regression: {warning}")
    history.append(report)
    out_path.write_text(
        json.dumps({"bench": "perf_hotpath", "history": history}, indent=2) + "\n"
    )
    print(f"wrote {out_path} ({len(history)} history entries)")

    # REPRO_BENCH_ENFORCE=0 turns the gates into a report-only smoke run
    # (shared CI runners are too noisy to fail a build on a timing).
    enforce = os.environ.get("REPRO_BENCH_ENFORCE", "1") != "0"
    failures = []
    for hot in ("pgd10_attack", "federated_round"):
        if report["speedups"][hot] < 2.0:
            failures.append(f"{hot} speedup {report['speedups'][hot]:.2f}x < 2.0x")
    if engine["cpus"] >= 2:
        if engine["speedups"]["parallel_warm_round"] < 1.5:
            failures.append(
                "round_engine parallel+warm speedup "
                f"{engine['speedups']['parallel_warm_round']:.2f}x < 1.5x"
            )
        if ee["speedups"]["thread_sharded_eval"] < 1.5:
            failures.append(
                "eval_engine thread-sharded speedup "
                f"{ee['speedups']['thread_sharded_eval']:.2f}x < 1.5x"
            )
    else:
        print(
            "NOTE: single-core runner; the >=1.5x parallel round/eval gates "
            "need >=2 cores and were skipped"
        )
    if pe["cpus"] >= 4:
        if pe["speedups"]["overlapped_round_eval"] < 1.2:
            failures.append(
                "pipeline_engine overlapped round+eval speedup "
                f"{pe['speedups']['overlapped_round_eval']:.2f}x < 1.2x"
            )
        if pa["speedups"]["pipelined_async"] < 1.2:
            failures.append(
                "pipeline_async pipelined-vs-barrier speedup "
                f"{pa['speedups']['pipelined_async']:.2f}x < 1.2x"
            )
    else:
        print(
            "NOTE: <4-core runner; the >=1.2x overlapped round+eval and "
            "pipelined-async gates were skipped (both need idle cores to "
            "absorb cross-phase work)"
        )
    if cb["cpus"] >= 4:
        if cb["speedups"]["batched_vs_thread"] < 2.0:
            failures.append(
                "client_batched batched-vs-thread speedup "
                f"{cb['speedups']['batched_vs_thread']:.2f}x < 2.0x"
            )
    else:
        print(
            "NOTE: <4-core runner; the >=2.0x client-batched gate was "
            "skipped (cohorts need idle cores to stripe over; thread "
            "timings on shared small runners are noise)"
        )
    big, small = ps["populations"][-1], ps["populations"][0]
    if (
        ps[f"p{big}"]["setup_seconds"]
        > 2.0 * ps[f"p{small}"]["setup_seconds"] + 0.05
    ):
        failures.append(
            f"population_scale {big:,}-client setup "
            f"{ps[f'p{big}']['setup_seconds']:.4f}s > 2x the {small}-client "
            f"setup {ps[f'p{small}']['setup_seconds']:.4f}s (+50ms slack)"
        )
    if ft["overhead_frac"] > 0.05:
        failures.append(
            "fault_tolerance journal+checkpoint overhead "
            f"{ft['overhead_frac'] * 100:.1f}% > 5%"
        )
    for rule, frac in ra["overhead_frac"].items():
        if frac > 0.10:
            failures.append(
                f"robust_agg {rule} overhead {frac * 100:.1f}% > 10% vs fedavg"
            )
    # +50ms absolute slack (like the population gate): the two timings
    # are near-equal seconds-scale numbers, so pure timer noise can fake
    # a few percent of "overhead" on small/loaded runners.
    if rs["metrics_on"]["seconds"] > 1.05 * rs["metrics_off"]["seconds"] + 0.05:
        failures.append(
            "replay_service metrics+status overhead "
            f"{rs['overhead_frac'] * 100:.1f}% > 5% (+50ms slack)"
        )
    for msg in failures:
        if enforce:
            raise SystemExit(f"FAIL: {msg}")
        print(f"WARN (not enforced): {msg}")
    if enforce and not failures:
        print("OK: all enforced speedup gates passed")
    return report


if __name__ == "__main__":
    main()
