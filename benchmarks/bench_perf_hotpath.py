"""Hot-path performance benchmark: the fast-path execution engine vs seed.

Measures samples/sec for the three dominant hot paths of the FedProphet
reproduction —

* conv forward / backward (the substrate's inner loop),
* a PGD-10 attack against a frozen model (robust evaluation / inner max),
* one full FedProphet communication round at module 1 (prefix + cascade),

each under two execution modes *in the same run*:

* ``baseline`` — the seed behaviour: float64 compute, full parameter
  gradients during attacks, no frozen-prefix activation cache;
* ``fast``     — the fast-path engine: float32 compute policy,
  input-grad-only attacks, frozen-prefix cache enabled.

Writes ``BENCH_PERF.json`` (repo root) with the before/after table that
seeds the perf trajectory.  Scale via ``REPRO_BENCH_SCALE``: "quick"
(CI-sized, default) or "full".

Run:  PYTHONPATH=src python benchmarks/bench_perf_hotpath.py
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, Tuple

import numpy as np

from repro.attacks import ModelWithLoss, PGDConfig, pgd_attack
from repro.core import FedProphet, FedProphetConfig
from repro.data import make_cifar10_like
from repro.models import build_vgg
from repro.nn import ConvBNReLU, Sequential, dtype_scope, set_fast_path
from repro.utils import format_table

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")

SCALES = {
    # (conv batch, conv reps, pgd batch, pgd steps, round local_iters, round clients)
    "quick": dict(conv_batch=64, reps=3, pgd_batch=64, pgd_steps=10,
                  local_iters=6, clients_per_round=3, train_per_class=40),
    "full": dict(conv_batch=128, reps=5, pgd_batch=128, pgd_steps=10,
                 local_iters=8, clients_per_round=5, train_per_class=80),
}

MODES = {
    "baseline": dict(dtype=np.float64, fast_path=False, cache=False),
    "fast": dict(dtype=np.float32, fast_path=True, cache=True),
}


def _best_of(fn: Callable[[], None], reps: int) -> float:
    """Best wall-clock of ``reps`` timed calls (after one warmup)."""
    fn()
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ------------------------------------------------------------------------
# Workloads.  Each returns (seconds, samples) under the *active* dtype
# scope; models/data are rebuilt per mode so parameters and activations
# live in the mode's dtype.
# ------------------------------------------------------------------------


def bench_conv(params: dict) -> Dict[str, Tuple[float, int]]:
    """Forward and backward over a small conv stack."""
    rng = np.random.default_rng(0)
    model = Sequential(
        ConvBNReLU(3, 32, rng=rng),
        ConvBNReLU(32, 64, rng=rng),
        ConvBNReLU(64, 64, rng=rng),
    )
    model.train()
    n = params["conv_batch"]
    x = rng.normal(size=(n, 3, 16, 16)).astype(np.asarray(model.parameters()[0].data).dtype)
    out = model(x)
    g = rng.normal(size=out.shape).astype(x.dtype)

    def fwd():
        model(x)

    def bwd():
        model(x)  # repopulate single-shot caches consumed by backward
        model.backward(g)

    t_fwd = _best_of(fwd, params["reps"])
    t_fwdbwd = _best_of(bwd, params["reps"])
    return {
        "conv_forward": (t_fwd, n),
        "conv_forward_backward": (t_fwdbwd, n),
    }


def bench_pgd(params: dict) -> Dict[str, Tuple[float, int]]:
    """A PGD-10 linf attack against a frozen (eval-mode) VGG."""
    rng = np.random.default_rng(1)
    model = build_vgg("vgg11", 10, (3, 16, 16), width_mult=0.25, rng=rng)
    model.eval()
    mwl = ModelWithLoss(model)
    n = params["pgd_batch"]
    x = rng.uniform(0.0, 1.0, size=(n, 3, 16, 16)).astype(
        model.parameters()[0].data.dtype
    )
    y = rng.integers(0, 10, size=n)
    cfg = PGDConfig(eps=8 / 255, steps=params["pgd_steps"], norm="linf")

    def attack():
        pgd_attack(mwl, x, y, cfg, rng=np.random.default_rng(2))
        model.zero_grad()

    t = _best_of(attack, params["reps"])
    return {"pgd10_attack": (t, n)}


def bench_fed_round(params: dict, use_cache: bool) -> Dict[str, Tuple[float, int]]:
    """One FedProphet communication round at module 1 (prefix active)."""
    task = make_cifar10_like(
        image_size=8, train_per_class=params["train_per_class"],
        test_per_class=10, seed=0,
    )
    cfg = FedProphetConfig(
        num_clients=6, clients_per_round=params["clients_per_round"],
        local_iters=params["local_iters"], batch_size=32, lr=0.05,
        rounds=4, train_pgd_steps=3, eval_pgd_steps=2, eval_every=0,
        seed=0, rounds_per_module=2, patience=2, r_min_fraction=0.35,
        val_samples=32, val_pgd_steps=2, use_prefix_cache=use_cache,
    )
    exp = FedProphet(
        task,
        lambda rng: build_vgg("vgg11", 10, (3, 8, 8), width_mult=0.25, rng=rng),
        cfg,
    )
    # Jump straight to module 1 so the frozen prefix (module 0) is on the
    # hot path, as it is for most of a real FedProphet run.
    exp.current_module = 1
    exp.eps_feature = 0.5
    clients, states = exp.sample_round(0)

    def one_round():
        exp.run_round(0, clients, states)

    t = _best_of(one_round, params["reps"])
    samples = cfg.clients_per_round * cfg.local_iters * cfg.batch_size
    stats = exp.prefix_cache.stats() if exp.prefix_cache is not None else None
    return {"federated_round": (t, samples, stats)}


def run_mode(mode: str, params: dict) -> Dict[str, dict]:
    spec = MODES[mode]
    previous = set_fast_path(spec["fast_path"])
    results: Dict[str, dict] = {}
    try:
        with dtype_scope(spec["dtype"]):
            for name, (secs, n) in bench_conv(params).items():
                results[name] = {"seconds": secs, "samples_per_sec": n / secs}
            for name, (secs, n) in bench_pgd(params).items():
                results[name] = {"seconds": secs, "samples_per_sec": n / secs}
            for name, (secs, n, stats) in bench_fed_round(
                params, use_cache=spec["cache"]
            ).items():
                results[name] = {"seconds": secs, "samples_per_sec": n / secs}
                if stats is not None:
                    results[name]["prefix_cache"] = stats
    finally:
        set_fast_path(previous)
    return results


def main() -> dict:
    if SCALE not in SCALES:
        raise SystemExit(
            f"unknown REPRO_BENCH_SCALE {SCALE!r}; expected one of {sorted(SCALES)}"
        )
    params = SCALES[SCALE]
    report = {"bench": "perf_hotpath", "scale": SCALE, "modes": {}, "speedups": {}}
    for mode in ("baseline", "fast"):
        report["modes"][mode] = run_mode(mode, params)

    rows = []
    for name in report["modes"]["baseline"]:
        base = report["modes"]["baseline"][name]["samples_per_sec"]
        fast = report["modes"]["fast"][name]["samples_per_sec"]
        speedup = fast / base
        report["speedups"][name] = speedup
        rows.append((name, f"{base:.1f}", f"{fast:.1f}", f"{speedup:.2f}x"))

    print(
        format_table(
            ["hot path", "baseline (samples/s)", "fast (samples/s)", "speedup"],
            rows,
            title=f"Fast-path execution engine — scale={SCALE}",
        )
    )

    out_path = Path(__file__).resolve().parent.parent / "BENCH_PERF.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    # REPRO_BENCH_ENFORCE=0 turns the gate into a report-only smoke run
    # (shared CI runners are too noisy to fail a build on a timing).
    enforce = os.environ.get("REPRO_BENCH_ENFORCE", "1") != "0"
    for hot in ("pgd10_attack", "federated_round"):
        if report["speedups"][hot] < 2.0:
            msg = f"{hot} speedup {report['speedups'][hot]:.2f}x < 2.0x"
            if enforce:
                raise SystemExit(f"FAIL: {msg}")
            print(f"WARN (not enforced): {msg}")
    if enforce:
        print("OK: >=2x speedup on PGD attack and federated round")
    return report


if __name__ == "__main__":
    main()
