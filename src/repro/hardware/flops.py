"""Training-FLOPs estimation for the DMA constraint and the latency model.

Convention: backward pass ≈ 2× forward FLOPs, so one SGD iteration costs
``3 · F_fwd · B``.  PGD-n adversarial training adds n attack iterations,
each a full forward+backward on the attacked segment:

    FLOPs_iter = (n + 1) · 3 · F_fwd · B
"""

from __future__ import annotations

from typing import Tuple

from repro.hardware.profile import profile_module
from repro.nn.module import Module

BACKWARD_MULTIPLIER = 2.0


def forward_flops(module: Module, in_shape: Tuple[int, ...]) -> int:
    """Forward FLOPs for a single sample."""
    return profile_module(module, in_shape).flops


def training_flops_per_iteration(
    module: Module,
    in_shape: Tuple[int, ...],
    batch_size: int,
    pgd_steps: int = 0,
) -> float:
    """FLOPs of one local SGD iteration, optionally with PGD-n attack.

    ``pgd_steps=0`` is standard training (one forward + one backward);
    ``pgd_steps=n`` adds n forward+backward attack passes, matching the
    paper's observation that AT multiplies the propagation count.
    """
    if pgd_steps < 0:
        raise ValueError("pgd_steps must be non-negative")
    fwd = forward_flops(module, in_shape) * batch_size
    one_pass = fwd * (1.0 + BACKWARD_MULTIPLIER)
    return (pgd_steps + 1) * one_pass
