"""Static profiler: walk a module tree and count params/activations/FLOPs.

``profile_module(module, in_shape)`` symbolically executes a module on a
per-sample shape and returns

* ``params`` — trainable scalar count,
* ``activations`` — per-sample scalars of every intermediate output that a
  training step must hold for the backward pass,
* ``flops`` — forward floating-point operations per sample (MACs × 2),
* ``out_shape`` — the per-sample output shape.

Composite modules (Sequential, ConvBNReLU, BasicBlock, CascadeModel) are
traversed structurally, so the profiler works on any model this repo
builds without executing any arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.nn.activations import LeakyReLU, ReLU, Tanh
from repro.nn.blocks import BasicBlock, ConvBNReLU
from repro.nn.conv import Conv2d
from repro.nn.functional import conv_output_size
from repro.nn.linear import Flatten, Linear
from repro.nn.module import Identity, Module, Sequential
from repro.nn.normalization import BatchNorm2d
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d


@dataclass(frozen=True)
class ModuleProfile:
    """Static cost summary of one module on a given input shape."""

    params: int
    activations: int
    flops: int
    out_shape: Tuple[int, ...]

    def __add__(self, other: "ModuleProfile") -> "ModuleProfile":
        return ModuleProfile(
            params=self.params + other.params,
            activations=self.activations + other.activations,
            flops=self.flops + other.flops,
            out_shape=other.out_shape,
        )


def _numel(shape: Tuple[int, ...]) -> int:
    return int(np.prod(shape))


def profile_module(module: Module, in_shape: Tuple[int, ...]) -> ModuleProfile:
    """Profile ``module`` on a single sample of shape ``in_shape``."""
    # --- primitives -------------------------------------------------------
    if isinstance(module, Conv2d):
        c, h, w = in_shape
        k, s, p = module.kernel_size, module.stride, module.padding
        oh = conv_output_size(h, k, s, p)
        ow = conv_output_size(w, k, s, p)
        out_shape = (module.out_channels, oh, ow)
        macs = module.out_channels * oh * ow * module.in_channels * k * k
        flops = 2 * macs + (_numel(out_shape) if module.use_bias else 0)
        return ModuleProfile(module.num_parameters(), _numel(out_shape), flops, out_shape)
    if isinstance(module, Linear):
        out_shape = (module.out_features,)
        flops = 2 * module.in_features * module.out_features
        if module.use_bias:
            flops += module.out_features
        return ModuleProfile(module.num_parameters(), module.out_features, flops, out_shape)
    if isinstance(module, BatchNorm2d):  # includes DualBatchNorm2d
        return ModuleProfile(
            module.num_parameters(), _numel(in_shape), 4 * _numel(in_shape), in_shape
        )
    if isinstance(module, (ReLU, LeakyReLU, Tanh)):
        # Activations count 0: ReLU-family ops run in place in practice, and
        # the paper's MemReq figures are only reproducible under in-place
        # accounting (see DESIGN.md).
        return ModuleProfile(0, 0, _numel(in_shape), in_shape)
    if isinstance(module, (MaxPool2d, AvgPool2d)):
        c, h, w = in_shape
        k, s, p = module.kernel_size, module.stride, module.padding
        oh = conv_output_size(h, k, s, p)
        ow = conv_output_size(w, k, s, p)
        out_shape = (c, oh, ow)
        return ModuleProfile(0, _numel(out_shape), _numel(out_shape) * k * k, out_shape)
    if isinstance(module, GlobalAvgPool2d):
        c = in_shape[0]
        return ModuleProfile(0, c, _numel(in_shape), (c,))
    if isinstance(module, Flatten):
        return ModuleProfile(0, 0, 0, (_numel(in_shape),))
    if isinstance(module, Identity):
        return ModuleProfile(0, 0, 0, in_shape)

    # --- composites ---------------------------------------------------------
    if isinstance(module, ConvBNReLU):
        prof = profile_module(module.conv, in_shape)
        prof = prof + profile_module(module.bn, prof.out_shape)
        return prof + profile_module(module.act, prof.out_shape)
    if isinstance(module, BasicBlock):
        main = profile_module(module.conv1, in_shape)
        main = main + profile_module(module.bn1, main.out_shape)
        main = main + profile_module(module.act1, main.out_shape)
        main = main + profile_module(module.conv2, main.out_shape)
        main = main + profile_module(module.bn2, main.out_shape)
        skip = profile_module(module.downsample, in_shape)
        add_flops = _numel(main.out_shape)
        act = profile_module(module.act2, main.out_shape)
        return ModuleProfile(
            params=main.params + skip.params + act.params,
            activations=main.activations + skip.activations + act.activations,
            flops=main.flops + skip.flops + add_flops + act.flops,
            out_shape=act.out_shape,
        )
    if isinstance(module, Sequential):
        prof = ModuleProfile(0, 0, 0, in_shape)
        for layer in module.layers:
            prof = prof + profile_module(layer, prof.out_shape)
        return prof

    # CascadeModel and anything else that exposes ordered children
    from repro.models.atoms import CascadeModel  # local import: avoid cycle

    if isinstance(module, CascadeModel):
        prof = ModuleProfile(0, 0, 0, in_shape)
        for atom in module.atoms:
            prof = prof + profile_module(atom.module, prof.out_shape)
        return prof

    raise TypeError(f"cannot profile module of type {type(module).__name__}")
