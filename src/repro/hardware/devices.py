"""Edge-device pools and runtime resource sampling (paper Tables 5–6, §B.1).

Each client, each round, is a device drawn from the pool with a runtime
"degrading factor" modelling co-running applications (Tian et al., 2022):
available memory = peak × U[0, 0.2], available performance = peak × U[0, 1].

Two heterogeneity levels:

* **balanced** — devices sampled uniformly;
* **unbalanced** — weaker devices (less memory, lower performance) get
  proportionally higher sampling probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

GB = 1024**3
TFLOPS = 1e12

#: Stream tag for counter-derived per-client device RNGs (see
#: :meth:`DeviceSampler.profile_for` / :meth:`DeviceSampler.state_for`),
#: disjoint from the population/fault/threat stream families.
DEVICE_STREAM = 0xD37C


@dataclass(frozen=True)
class Device:
    """Peak specs of one edge device."""

    name: str
    perf_tflops: float
    mem_gb: float
    io_gbps: float

    @property
    def perf_flops(self) -> float:
        return self.perf_tflops * TFLOPS

    @property
    def mem_bytes(self) -> float:
        return self.mem_gb * GB

    @property
    def io_bytes_per_s(self) -> float:
        return self.io_gbps * GB


# Paper Table 5: device pool for the CIFAR-10 workload.
DEVICE_POOL_CIFAR10: List[Device] = [
    Device("GTX 1650m", 3.1, 4, 16),
    Device("TX2", 1.3, 4, 1.5),
    Device("KCU1500", 0.2, 2, 2),
    Device("VC709", 0.1, 2, 1.5),
    Device("Radeon HD 6870", 2.7, 1, 16),
    Device("Quadro M2200", 2.1, 4, 1.5),
    Device("A12 GPU", 0.5, 4, 1.5),
    Device("Geforce 750", 1.1, 1, 16),
    Device("Grid K240q", 2.3, 1, 16),
    Device("Radeon RX 6300m", 3.7, 2, 16),
]

# Paper Table 6: device pool for the Caltech-256 workload.
DEVICE_POOL_CALTECH256: List[Device] = [
    Device("Radeon RX 7600", 21.8, 8, 16),
    Device("Radeon RX 6800", 16.2, 16, 16),
    Device("Arc A770", 19.7, 16, 16),
    Device("Quadro P5000", 5.3, 16, 1.5),
    Device("RTX 3080m", 19.0, 8, 16),
    Device("RTX 4090m", 33.0, 16, 16),
    Device("A17 GPU", 2.1, 8, 1.5),
    Device("GTX 1650m", 3.1, 4, 16),
    Device("TX2", 1.3, 4, 1.5),
    Device("P104 101", 8.6, 4, 16),
]


def device_pool(dataset: str) -> List[Device]:
    """The paper's device pool for a dataset key."""
    key = dataset.lower()
    if key in ("cifar10", "cifar-10"):
        return list(DEVICE_POOL_CIFAR10)
    if key in ("caltech256", "caltech-256"):
        return list(DEVICE_POOL_CALTECH256)
    raise ValueError(f"no device pool for dataset {dataset!r}")


@dataclass(frozen=True)
class DeviceState:
    """A device together with its degraded, real-time available resources."""

    device: Device
    avail_mem_bytes: float
    avail_perf_flops: float

    @property
    def io_bytes_per_s(self) -> float:
        return self.device.io_bytes_per_s


class DeviceSampler:
    """Draw per-round device states for sampled clients.

    Parameters
    ----------
    pool:
        Candidate devices.
    heterogeneity:
        ``"balanced"`` (uniform) or ``"unbalanced"`` (probability inversely
        proportional to a device's memory×performance product, normalised).
    mem_factor_range / perf_factor_range:
        Runtime degrading-factor ranges (paper B.1 defaults).
    """

    def __init__(
        self,
        pool: Sequence[Device],
        heterogeneity: str = "balanced",
        mem_factor_range=(0.0, 0.2),
        perf_factor_range=(0.0, 1.0),
    ):
        if not pool:
            raise ValueError("device pool must not be empty")
        if heterogeneity not in ("balanced", "unbalanced"):
            raise ValueError(f"unknown heterogeneity {heterogeneity!r}")
        self.pool = list(pool)
        self.heterogeneity = heterogeneity
        self.mem_factor_range = mem_factor_range
        self.perf_factor_range = perf_factor_range
        if heterogeneity == "balanced":
            probs = np.ones(len(self.pool))
        else:
            strength = np.array([d.mem_gb * d.perf_tflops for d in self.pool])
            probs = 1.0 / strength
        self.probs = probs / probs.sum()

    def sample(self, rng: np.random.Generator) -> DeviceState:
        """One device with degraded real-time resources."""
        device = self.pool[int(rng.choice(len(self.pool), p=self.probs))]
        mem_f = rng.uniform(*self.mem_factor_range)
        perf_f = rng.uniform(*self.perf_factor_range)
        # Keep resources strictly positive so latency stays finite.
        mem_f = max(mem_f, 1e-3)
        perf_f = max(perf_f, 1e-3)
        return DeviceState(
            device=device,
            avail_mem_bytes=device.mem_bytes * mem_f,
            avail_perf_flops=device.perf_flops * perf_f,
        )

    def sample_many(self, count: int, rng: np.random.Generator) -> List[DeviceState]:
        return [self.sample(rng) for _ in range(count)]

    # -- counter-derived per-client streams (population engine) ---------------
    def profile_for(self, seed: int, cid: int) -> Device:
        """Client ``cid``'s persistent device identity.

        A pure function of ``(seed, cid)`` — the virtual population
        derives it on first touch, so a client owns the *same* device
        across rounds, evictions, and resumes without any stored state
        (the sequential :meth:`sample` draws a fresh device per round,
        which the legacy partition scheme keeps for bit-compat).
        """
        rng = np.random.default_rng([DEVICE_STREAM, seed, cid])
        return self.pool[int(rng.choice(len(self.pool), p=self.probs))]

    def state_for(self, seed: int, round_idx: int, cid: int) -> DeviceState:
        """Client ``cid``'s degraded resources at ``round_idx``.

        The persistent :meth:`profile_for` device with per-round runtime
        degrading factors from ``(seed, round, cid)`` — same factor
        ranges and positivity floors as :meth:`sample`.  The 4-element
        seed sequence cannot collide with ``profile_for``'s 3-element
        one.
        """
        device = self.profile_for(seed, cid)
        rng = np.random.default_rng([DEVICE_STREAM, seed, round_idx, cid])
        mem_f = max(rng.uniform(*self.mem_factor_range), 1e-3)
        perf_f = max(rng.uniform(*self.perf_factor_range), 1e-3)
        return DeviceState(
            device=device,
            avail_mem_bytes=device.mem_bytes * mem_f,
            avail_perf_flops=device.perf_flops * perf_f,
        )
