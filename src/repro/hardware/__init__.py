"""Edge-hardware simulation: device pools, memory accounting, latency.

The paper evaluates on a simulated fleet of real edge devices (Tables 5–6)
with a ZeRO-style memory-requirement estimator (Rajbhandari et al., 2020)
and a latency model split into computation time (FLOPs / achievable
performance) and data-access time (memory-swap traffic / storage I/O
bandwidth).  This package reproduces all three, analytically, so the
Figure 2/6/7 and Table 4 experiments run at the paper's full scale without
any of the authors' hardware.
"""

from repro.hardware.profile import ModuleProfile, profile_module
from repro.hardware.memory import mem_req_bytes, MemoryModel
from repro.hardware.flops import forward_flops, training_flops_per_iteration
from repro.hardware.devices import (
    Device,
    DeviceState,
    DeviceSampler,
    DEVICE_POOL_CIFAR10,
    DEVICE_POOL_CALTECH256,
    device_pool,
)
from repro.hardware.latency import LatencyModel, LocalTrainingCost

__all__ = [
    "ModuleProfile",
    "profile_module",
    "mem_req_bytes",
    "MemoryModel",
    "forward_flops",
    "training_flops_per_iteration",
    "Device",
    "DeviceState",
    "DeviceSampler",
    "DEVICE_POOL_CIFAR10",
    "DEVICE_POOL_CALTECH256",
    "device_pool",
    "LatencyModel",
    "LocalTrainingCost",
]
