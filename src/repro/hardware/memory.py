"""ZeRO-style training-memory estimation (Rajbhandari et al., 2020).

``MemReq`` in the paper accounts for *"model parameters, gradients,
optimizer states, and intermediate activations"* (§6.1).  For fp32 SGD with
momentum that is:

    bytes = 4·P (params) + 4·P (grads) + 4·P·s (optimizer state, s=1)
          + 4·B·A (activations, batch size B)
          + 4·B·I (the input batch itself)

The estimator is purely analytic (via :mod:`repro.hardware.profile`), so it
runs on paper-scale VGG16/ResNet34 instantly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.hardware.profile import profile_module
from repro.nn.module import Module

BYTES_PER_SCALAR = 4  # fp32, as in the paper's accounting


@dataclass(frozen=True)
class MemoryModel:
    """Memory accounting policy.

    Attributes
    ----------
    batch_size:
        Local training batch size.
    optimizer_state_factor:
        Copies of the parameters held as optimizer state (1 for SGD with
        momentum, 0 for vanilla SGD, 2 for Adam).
    adversarial_double_batch:
        If True, account for storing *both* the clean and the perturbed
        activations simultaneously (the cost the paper's Eq. 7 discussion
        says makes perturbation-norm training infeasible).  Standard PGD-AT
        reuses the same buffers, so the default is False.
    bytes_per_scalar:
        Storage width of one tensor element; 4 for the paper's fp32
        accounting, 2/1 model the low-bit-training extension the paper's
        §8 names as complementary to FedProphet.
    """

    batch_size: int = 64
    optimizer_state_factor: int = 1
    adversarial_double_batch: bool = False
    bytes_per_scalar: int = BYTES_PER_SCALAR

    def __post_init__(self):
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.bytes_per_scalar < 1:
            raise ValueError("bytes_per_scalar must be >= 1")

    def bytes_for(self, module: Module, in_shape: Tuple[int, ...]) -> int:
        prof = profile_module(module, in_shape)
        param_state = prof.params * (2 + self.optimizer_state_factor)
        act_mult = 2 if self.adversarial_double_batch else 1
        activations = self.batch_size * act_mult * (prof.activations + int(np.prod(in_shape)))
        return self.bytes_per_scalar * (param_state + activations)


def mem_req_bytes(
    module: Module,
    in_shape: Tuple[int, ...],
    batch_size: int = 64,
    optimizer_state_factor: int = 1,
    adversarial_double_batch: bool = False,
) -> int:
    """Convenience wrapper: estimated training-memory footprint in bytes."""
    model = MemoryModel(
        batch_size=batch_size,
        optimizer_state_factor=optimizer_state_factor,
        adversarial_double_batch=adversarial_double_batch,
    )
    return model.bytes_for(module, in_shape)
