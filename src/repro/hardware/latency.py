"""Analytic local-training latency: computation + memory-swap data access.

The paper's Figure 2/7 latency decomposes into

* **computation time** — training FLOPs / achievable device performance;
* **data-access time** — when the training working set exceeds available
  memory, the excess must be streamed to/from external storage on *every*
  forward and backward propagation.  PGD-n multiplies the propagation
  count, which is exactly why memory swapping dominates FAT (Fig. 2).

Traffic model: each propagation pass moves ``2 × (MemReq − R)`` bytes
(offload + fetch of the excess working set).  One PGD-n training iteration
performs ``2·(n+1)`` passes (n+1 forwards, n+1 backwards).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.devices import DeviceState


@dataclass(frozen=True)
class LocalTrainingCost:
    """Latency breakdown of one client's local training for a round."""

    compute_s: float
    access_s: float

    @property
    def total_s(self) -> float:
        return self.compute_s + self.access_s

    def __add__(self, other: "LocalTrainingCost") -> "LocalTrainingCost":
        return LocalTrainingCost(
            self.compute_s + other.compute_s, self.access_s + other.access_s
        )


class LatencyModel:
    """Turn (FLOPs, MemReq, device state) into a latency breakdown.

    Parameters
    ----------
    swap_overhead:
        Multiplier on raw swap traffic modelling software-driver management
        overhead (the paper names driver overhead alongside raw bandwidth as
        the source of data-access latency).
    """

    def __init__(self, swap_overhead: float = 2.0):
        if swap_overhead < 1.0:
            raise ValueError("swap_overhead must be >= 1")
        self.swap_overhead = swap_overhead

    def swap_traffic_bytes(
        self, mem_req_bytes: float, avail_mem_bytes: float, passes: int
    ) -> float:
        """Bytes moved to/from storage across ``passes`` propagation passes."""
        excess = max(0.0, mem_req_bytes - avail_mem_bytes)
        if excess == 0.0:
            return 0.0
        return 2.0 * excess * passes * self.swap_overhead

    def local_training_cost(
        self,
        state: DeviceState,
        training_flops: float,
        mem_req_bytes: float,
        iterations: int,
        pgd_steps: int,
    ) -> LocalTrainingCost:
        """Cost of ``iterations`` local steps of PGD-``pgd_steps`` training.

        ``training_flops`` is per-iteration (already including the attack's
        extra propagations, see
        :func:`repro.hardware.flops.training_flops_per_iteration`).
        """
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        compute = training_flops * iterations / state.avail_perf_flops
        passes_per_iter = 2 * (pgd_steps + 1)  # forwards + backwards
        traffic = self.swap_traffic_bytes(
            mem_req_bytes, state.avail_mem_bytes, passes_per_iter * iterations
        )
        access = traffic / state.io_bytes_per_s
        return LocalTrainingCost(compute_s=compute, access_s=access)
