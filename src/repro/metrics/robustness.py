"""Robustness measurements backing the paper's theory (Def. 1, Lemma 1).

``output_perturbation`` measures ``max ||Δz_m||`` — the quantity APA
averages across clients (Eq. 11) and Figure 8 plots against μ.
``empirical_robustness_constant`` estimates the (ε, c) constant of Def. 1.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.attacks import ModelWithLoss, PGDConfig, pgd_attack
from repro.nn.module import Module


def output_perturbation(
    segment: Module,
    x: np.ndarray,
    y: np.ndarray,
    attack_mwl: ModelWithLoss,
    pgd: PGDConfig,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Per-sample ‖z(x+δ) − z(x)‖₂ under a PGD-found δ.

    ``attack_mwl`` defines the loss the attacker maximises (the module's
    regularized early-exit loss); ``segment`` maps inputs to the feature
    whose displacement we measure.  Both typically share the same
    underlying module.
    """
    x_adv = pgd_attack(attack_mwl, x, y, pgd, rng=rng)
    z = segment(x)
    z_adv = segment(x_adv)
    diff = (z_adv - z).reshape(len(x), -1)
    return np.sqrt((diff**2).sum(axis=1))


def empirical_robustness_constant(
    mwl: ModelWithLoss,
    x: np.ndarray,
    y: np.ndarray,
    pgd: PGDConfig,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Estimate c in Def. 1: max over samples of l(x+δ) − l(x).

    Uses per-sample losses before/after a PGD attack; the max over the
    batch lower-bounds the true robust constant.
    """
    base = mwl.per_sample_losses(x, y)
    x_adv = pgd_attack(mwl, x, y, pgd, rng=rng)
    attacked = mwl.per_sample_losses(x_adv, y)
    return float(np.max(attacked - base))
