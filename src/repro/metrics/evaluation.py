"""Declarative model evaluation: clean / PGD-20 / AutoAttack accuracy (§7.1).

Evaluation used to be an inline loop (clean pass, then per-batch PGD, then
per-batch AutoAttack, all threaded through one RNG), which forced it to run
serially.  It is now *declarative*: an :class:`EvalPlan` lists the
:class:`AttackSpec`\\ s to measure, and an executor — by default the serial
:class:`repro.flsim.eval_executor.EvalExecutor` — decomposes the plan into
independent ``(attack, sample range)`` shards and reduces their per-shard
correct counts into an :class:`EvalResult`.

Determinism is *shard-stable*: each shard derives its own RNG from
``(plan seed, attack index, shard index)``, so the result is a pure
function of the plan and the model — independent of the executor backend,
worker count, and scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.attacks import (
    ModelWithLoss,
    PGDConfig,
    apgd_attack,
    auto_attack_lite,
    fgsm_attack,
    pgd_attack,
)
from repro.data.dataset import ArrayDataset
from repro.nn.module import Module

ATTACK_KINDS = ("clean", "pgd", "autoattack", "fgsm", "apgd")


def seed_entropy(seed) -> list:
    """Normalise an int / tuple-of-ints seed into SeedSequence entropy."""
    items = seed if isinstance(seed, (tuple, list)) else [seed]
    return [int(s) & (2**63 - 1) for s in items]


def shard_rng(seed, attack_idx: int, shard_idx: int) -> np.random.Generator:
    """The RNG of one evaluation shard.

    Derived from ``(plan seed, attack, shard)`` only, so any decomposition
    of an evaluation into the same shards draws the same random numbers —
    the property that makes parallel evaluation bit-identical to serial.
    """
    return np.random.default_rng(seed_entropy(seed) + [attack_idx + 1, shard_idx])


@dataclass(frozen=True)
class AttackSpec:
    """One accuracy column of an evaluation: an attack and its budget.

    ``kind`` selects the perturbation: ``"clean"`` (identity), ``"pgd"``
    (:func:`repro.attacks.pgd.pgd_attack`), ``"autoattack"``
    (:func:`repro.attacks.autoattack.auto_attack_lite`), or the AutoAttack
    ensemble *members* ``"fgsm"`` / ``"apgd"``.  ``name`` keys the
    measured accuracy in the result.

    ``ensemble`` tags the spec as a member of a per-sample worst-case
    ensemble: the evaluation engine reports each member's own accuracy
    *and* a combined column (keyed by the ensemble name) counting a
    sample correct only when every member of the group leaves it correct.
    Decomposing ``autoattack`` this way turns one long shard into three
    independent ones, shortening the eval critical path on wide machines.
    """

    name: str
    kind: str = "clean"
    eps: float = 0.0
    steps: int = 0
    norm: str = "linf"
    restarts: int = 2
    clip: Optional[Tuple[float, float]] = (0.0, 1.0)
    ensemble: Optional[str] = None

    def __post_init__(self):
        if self.kind not in ATTACK_KINDS:
            raise ValueError(
                f"unknown attack kind {self.kind!r}; expected one of {ATTACK_KINDS}"
            )
        if self.kind == "fgsm":
            if self.eps <= 0:
                raise ValueError(f"attack {self.name!r} needs eps > 0")
        elif self.kind != "clean" and (self.eps <= 0 or self.steps < 1):
            raise ValueError(f"attack {self.name!r} needs eps > 0 and steps >= 1")

    # -- canonical specs ----------------------------------------------------
    @staticmethod
    def clean(name: str = "clean") -> "AttackSpec":
        return AttackSpec(name=name, kind="clean")

    @staticmethod
    def pgd(eps: float, steps: int, name: str = "pgd", norm: str = "linf",
            clip: Optional[Tuple[float, float]] = (0.0, 1.0)) -> "AttackSpec":
        return AttackSpec(name=name, kind="pgd", eps=eps, steps=steps,
                          norm=norm, clip=clip)

    @staticmethod
    def autoattack(eps: float, steps: int, name: str = "aa", restarts: int = 2,
                   norm: str = "linf") -> "AttackSpec":
        return AttackSpec(name=name, kind="autoattack", eps=eps, steps=steps,
                          restarts=restarts, norm=norm)

    @staticmethod
    def autoattack_members(
        eps: float, steps: int, group: str = "aa", restarts: int = 2,
        norm: str = "linf",
    ) -> Tuple["AttackSpec", ...]:
        """The AutoAttack-lite ensemble decomposed into per-member specs.

        Each member (FGSM, PGD, APGD-CE) becomes its own shardable attack
        in ensemble ``group``; the engine AND-combines their per-sample
        correctness into the ``group`` column — the same worst-case
        semantics as the monolithic ``autoattack`` spec, but with three
        independently schedulable shards per batch instead of one
        sequential sweep.  (Member RNG streams are per-member shard RNGs,
        so the combined number can differ from the monolithic spec in the
        random restarts while remaining deterministic and backend-stable.)
        """
        return (
            AttackSpec(name=f"{group}_fgsm", kind="fgsm", eps=eps, norm=norm,
                       ensemble=group),
            AttackSpec(name=f"{group}_pgd", kind="pgd", eps=eps, steps=steps,
                       norm=norm, ensemble=group),
            AttackSpec(name=f"{group}_apgd", kind="apgd", eps=eps, steps=steps,
                       restarts=restarts, norm=norm, ensemble=group),
        )

    @property
    def cacheable(self) -> bool:
        """Whether shards of this attack forward *unperturbed* inputs.

        Only then can a frozen-prefix activation cache serve the forward —
        attacks perturb the raw input, which invalidates any prefix reuse.
        """
        return self.kind == "clean"

    def perturb(
        self,
        mwl: ModelWithLoss,
        x: np.ndarray,
        y: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Adversarial inputs for one shard (identity for ``clean``)."""
        if self.kind == "clean":
            return x
        if self.kind == "fgsm":
            return fgsm_attack(mwl, x, y, self.eps, clip=self.clip)
        if self.kind == "pgd":
            return pgd_attack(
                mwl, x, y,
                PGDConfig(eps=self.eps, steps=self.steps, norm=self.norm,
                          clip=self.clip),
                rng=rng,
            )
        if self.kind == "apgd":
            return apgd_attack(
                mwl, x, y, eps=self.eps, steps=self.steps, norm=self.norm,
                restarts=self.restarts, clip=self.clip, rng=rng,
            )
        return auto_attack_lite(
            mwl, x, y, eps=self.eps, norm=self.norm, steps=self.steps,
            restarts=self.restarts, clip=self.clip, rng=rng,
        )


@dataclass(frozen=True)
class EvalPlan:
    """A declarative evaluation request.

    ``seed`` drives both the ``max_samples`` subsample draw and the
    per-shard attack RNGs (see :func:`shard_rng`); it may be an int or a
    tuple of ints.  ``batch_size`` is the shard granularity — the unit of
    work the evaluation engine schedules.
    """

    attacks: Tuple[AttackSpec, ...]
    batch_size: int = 128
    max_samples: Optional[int] = None
    seed: object = 0

    def __post_init__(self):
        if not self.attacks:
            raise ValueError("an EvalPlan needs at least one AttackSpec")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        names = [a.name for a in self.attacks]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attack names in plan: {names}")
        for group in self.ensembles():
            if group in names:
                raise ValueError(
                    f"ensemble name {group!r} collides with an attack name"
                )

    def ensembles(self) -> Dict[str, Tuple[int, ...]]:
        """Ensemble name -> indices of its member attacks, in plan order."""
        groups: Dict[str, Tuple[int, ...]] = {}
        for i, attack in enumerate(self.attacks):
            if attack.ensemble is not None:
                groups[attack.ensemble] = groups.get(attack.ensemble, ()) + (i,)
        return groups

    @classmethod
    def standard(
        cls,
        eps: float,
        pgd_steps: int,
        with_autoattack: bool = False,
        max_samples: Optional[int] = None,
        batch_size: int = 128,
        seed: object = 0,
        split_autoattack: bool = False,
    ) -> "EvalPlan":
        """The paper's standard triple: clean, PGD-k, optional AutoAttack.

        ``split_autoattack`` replaces the monolithic ``aa`` spec with the
        decomposed FGSM/PGD/APGD member shards (ensemble group ``"aa"``,
        see :meth:`AttackSpec.autoattack_members`) so the ensemble's legs
        can run concurrently; the combined accuracy still lands in the
        ``aa`` column.
        """
        attacks = [AttackSpec.clean()]
        if eps > 0 and pgd_steps > 0:
            attacks.append(AttackSpec.pgd(eps, pgd_steps))
            if with_autoattack and split_autoattack:
                attacks.extend(AttackSpec.autoattack_members(eps, pgd_steps))
            elif with_autoattack:
                attacks.append(AttackSpec.autoattack(eps, pgd_steps))
        return cls(attacks=tuple(attacks), batch_size=batch_size,
                   max_samples=max_samples, seed=seed)

    def to_result(self, accuracies: Mapping[str, float]) -> "EvalResult":
        """Fold per-attack accuracies into the paper's reporting triple.

        Columns the plan did not measure stay ``None`` — including
        ``clean_acc`` for clean-less plans — so an absent measurement is
        never mistaken for a measured 0 %.
        """
        return EvalResult(
            clean_acc=accuracies.get("clean"),
            pgd_acc=accuracies.get("pgd"),
            aa_acc=accuracies.get("aa"),
            attack_accs=dict(accuracies),
        )


@dataclass
class EvalResult:
    """Accuracy triple reported in the paper's tables.

    ``attack_accs`` additionally keys every measured attack by its spec
    name (a superset of the triple for custom plans).  Unmeasured columns
    are ``None``.
    """

    clean_acc: Optional[float]
    pgd_acc: Optional[float] = None
    aa_acc: Optional[float] = None
    attack_accs: Optional[Dict[str, float]] = None

    def as_dict(self) -> dict:
        return {"clean_acc": self.clean_acc, "pgd_acc": self.pgd_acc, "aa_acc": self.aa_acc}


def evaluate_model(
    model: Module,
    dataset: ArrayDataset,
    eps: float = 8.0 / 255.0,
    pgd_steps: int = 20,
    with_autoattack: bool = False,
    max_samples: Optional[int] = None,
    batch_size: int = 128,
    head: Optional[Module] = None,
    rng: Optional[np.random.Generator] = None,
    seed: object = None,
    executor=None,
) -> EvalResult:
    """Evaluate clean and adversarial accuracy on (a subset of) a dataset.

    Thin compatibility wrapper: builds the standard :class:`EvalPlan` and
    submits it to an :class:`~repro.flsim.eval_executor.EvalExecutor`
    (serial when ``executor`` is None).  ``seed`` fixes the plan seed
    directly; the legacy ``rng`` argument, when given instead, is consumed
    once to derive it.  Parallel executors need per-slot model replicas —
    use :meth:`EvalExecutor.run` with a slot-aware target for that; a bare
    module is only safe on the serial backend.
    """
    from repro.flsim.eval_executor import EvalExecutor, EvalTarget

    if seed is None:
        source = rng if rng is not None else np.random.default_rng(0)
        seed = int(source.integers(0, 2**63))
    plan = EvalPlan.standard(
        eps=eps, pgd_steps=pgd_steps, with_autoattack=with_autoattack,
        max_samples=max_samples, batch_size=batch_size, seed=seed,
    )
    eval_executor = executor if executor is not None else EvalExecutor()
    return eval_executor.run(
        plan, dataset, lambda slot: EvalTarget(ModelWithLoss(model, head=head))
    )
