"""Model evaluation: clean / PGD-20 / AutoAttack accuracy (paper §7.1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.attacks import ModelWithLoss, PGDConfig, auto_attack_lite, pgd_attack
from repro.data.dataset import ArrayDataset
from repro.nn.module import Module


@dataclass
class EvalResult:
    """Accuracy triple reported in the paper's tables."""

    clean_acc: float
    pgd_acc: Optional[float] = None
    aa_acc: Optional[float] = None

    def as_dict(self) -> dict:
        return {"clean_acc": self.clean_acc, "pgd_acc": self.pgd_acc, "aa_acc": self.aa_acc}


def _batched_preds(mwl: ModelWithLoss, x: np.ndarray, batch: int) -> np.ndarray:
    preds = []
    for start in range(0, len(x), batch):
        preds.append(mwl.logits(x[start : start + batch]).argmax(axis=1))
    return np.concatenate(preds)


def evaluate_model(
    model: Module,
    dataset: ArrayDataset,
    eps: float = 8.0 / 255.0,
    pgd_steps: int = 20,
    with_autoattack: bool = False,
    max_samples: Optional[int] = None,
    batch_size: int = 128,
    head: Optional[Module] = None,
    rng: Optional[np.random.Generator] = None,
) -> EvalResult:
    """Evaluate clean and adversarial accuracy on (a subset of) a dataset.

    The model is put in eval mode (frozen BN statistics) as the paper's
    test-time attacks require.  ``max_samples`` caps the evaluation set so
    expensive attacks stay tractable in the simulator.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    model.eval()
    x, y = dataset.x, dataset.y
    if max_samples is not None and len(x) > max_samples:
        idx = rng.choice(len(x), size=max_samples, replace=False)
        x, y = x[idx], y[idx]
    mwl = ModelWithLoss(model, head=head)

    clean_acc = float((_batched_preds(mwl, x, batch_size) == y).mean())
    pgd_acc = None
    aa_acc = None
    if eps > 0 and pgd_steps > 0:
        correct = 0
        for start in range(0, len(x), batch_size):
            xb, yb = x[start : start + batch_size], y[start : start + batch_size]
            adv = pgd_attack(
                mwl, xb, yb, PGDConfig(eps=eps, steps=pgd_steps, norm="linf"), rng=rng
            )
            correct += int((mwl.logits(adv).argmax(axis=1) == yb).sum())
        pgd_acc = correct / len(x)
        if with_autoattack:
            correct = 0
            for start in range(0, len(x), batch_size):
                xb, yb = x[start : start + batch_size], y[start : start + batch_size]
                adv = auto_attack_lite(mwl, xb, yb, eps=eps, steps=pgd_steps, rng=rng)
                correct += int((mwl.logits(adv).argmax(axis=1) == yb).sum())
            aa_acc = correct / len(x)
    model.zero_grad()
    return EvalResult(clean_acc=clean_acc, pgd_acc=pgd_acc, aa_acc=aa_acc)
