"""Evaluation metrics: clean accuracy, PGD accuracy, AutoAttack accuracy."""

from repro.metrics.evaluation import evaluate_model, EvalResult
from repro.metrics.robustness import empirical_robustness_constant, output_perturbation

__all__ = [
    "evaluate_model",
    "EvalResult",
    "empirical_robustness_constant",
    "output_perturbation",
]
