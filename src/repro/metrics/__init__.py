"""Evaluation metrics: clean accuracy, PGD accuracy, AutoAttack accuracy."""

from repro.metrics.evaluation import (
    AttackSpec,
    EvalPlan,
    EvalResult,
    evaluate_model,
    shard_rng,
)
from repro.metrics.robustness import empirical_robustness_constant, output_perturbation

__all__ = [
    "AttackSpec",
    "EvalPlan",
    "evaluate_model",
    "EvalResult",
    "shard_rng",
    "empirical_robustness_constant",
    "output_perturbation",
]
