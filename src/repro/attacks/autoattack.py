"""AutoAttack surrogate: APGD-CE plus a worst-case attack ensemble.

The paper evaluates robustness with AutoAttack (Croce & Hein, 2020), whose
workhorse is APGD — a parameter-free PGD with momentum and a step-halving
schedule driven by progress checkpoints.  We implement APGD-CE with
multiple restarts and combine it with PGD and FGSM in a per-sample
worst-case ensemble (``auto_attack_lite``), preserving AutoAttack's role as
"a strictly stronger attack than plain PGD" for the Table 2 AA column.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.base import ModelWithLoss
from repro.attacks.fgsm import fgsm_attack
from repro.attacks.pgd import PGDConfig, gradient_step, pgd_attack, project, random_init
from repro.nn.grad_mode import attack_grad_scope


def _checkpoints(steps: int) -> List[int]:
    """APGD's progress-check schedule: p_0=0, p_1=0.22, then shrinking gaps."""
    points = [0.0, 0.22]
    while points[-1] < 1.0:
        gap = max(points[-1] - points[-2] - 0.03, 0.06)
        points.append(points[-1] + gap)
    return sorted({min(steps - 1, int(np.ceil(p * steps))) for p in points})


def apgd_attack(
    mwl: ModelWithLoss,
    x: np.ndarray,
    y: np.ndarray,
    eps: float,
    steps: int = 20,
    norm: str = "linf",
    restarts: int = 1,
    clip: Optional[Tuple[float, float]] = (0.0, 1.0),
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Auto-PGD with cross-entropy loss.

    Momentum update with per-restart step halving whenever a checkpoint
    observes insufficient loss progress; keeps the per-sample best (highest
    loss) iterate across all steps and restarts.
    """
    if eps == 0.0 or steps < 1:
        return x.copy()
    rng = rng if rng is not None else np.random.default_rng(0)
    n = x.shape[0]
    best_adv = x.copy()
    best_loss = mwl.per_sample_losses(x, y).copy()
    checks = _checkpoints(steps)

    for _ in range(max(1, restarts)):
        delta = random_init(x.shape, eps, norm, rng, dtype=x.dtype)
        if clip is not None:
            delta = np.clip(x + delta, clip[0], clip[1]) - x
        alpha = 2.0 * eps
        prev_delta = delta.copy()
        improved_since_check = np.zeros(n, dtype=int)
        steps_since_check = 0
        loss_at_last_check = best_loss.copy()

        for step in range(steps):
            with attack_grad_scope():
                _, grad = mwl.loss_and_input_grad(x + delta, y)
            # momentum: z = delta + step, new = delta + 0.75*(z-delta)+0.25*(delta-prev)
            z = delta + gradient_step(grad, alpha, norm)
            z = project(z, eps, norm)
            if clip is not None:
                z = np.clip(x + z, clip[0], clip[1]) - x
            new_delta = delta + 0.75 * (z - delta) + 0.25 * (delta - prev_delta)
            new_delta = project(new_delta, eps, norm)
            if clip is not None:
                new_delta = np.clip(x + new_delta, clip[0], clip[1]) - x
            prev_delta, delta = delta, new_delta

            losses = mwl.per_sample_losses(x + delta, y)
            better = losses > best_loss
            improved_since_check += better.astype(int)
            best_loss = np.where(better, losses, best_loss)
            best_adv = np.where(
                better.reshape((n,) + (1,) * (x.ndim - 1)), x + delta, best_adv
            )
            steps_since_check += 1

            if step in checks and steps_since_check > 0:
                # halve the step size when fewer than 75% of steps improved
                frac = improved_since_check / steps_since_check
                if float(frac.mean()) < 0.75 or not np.any(
                    best_loss > loss_at_last_check
                ):
                    alpha /= 2.0
                    delta = best_adv - x  # restart from the best-so-far point
                improved_since_check[...] = 0
                steps_since_check = 0
                loss_at_last_check = best_loss.copy()
    return best_adv


def auto_attack_lite(
    mwl: ModelWithLoss,
    x: np.ndarray,
    y: np.ndarray,
    eps: float,
    norm: str = "linf",
    steps: int = 20,
    restarts: int = 2,
    clip: Optional[Tuple[float, float]] = (0.0, 1.0),
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Worst-case ensemble: a sample is robust only if it survives them all.

    Runs FGSM, PGD, and APGD-CE; for each sample keeps the first adversarial
    example that flips the prediction (falling back to the APGD iterate).
    Returns inputs whose induced accuracy is the ensemble robust accuracy.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    y = np.asarray(y)
    n = x.shape[0]
    result = x.copy()
    remaining = np.ones(n, dtype=bool)

    candidates = [
        fgsm_attack(mwl, x, y, eps, clip=clip),
        pgd_attack(
            mwl, x, y,
            PGDConfig(eps=eps, steps=steps, norm=norm, clip=clip),
            rng=rng,
        ),
        apgd_attack(
            mwl, x, y, eps, steps=steps, norm=norm, restarts=restarts, clip=clip, rng=rng
        ),
    ]
    for adv in candidates:
        if not remaining.any():
            break
        preds = mwl.logits(adv).argmax(axis=1)
        flipped = (preds != y) & remaining
        result[flipped] = adv[flipped]
        remaining &= ~flipped
    # for still-robust samples keep the strongest (APGD) attempt
    result[remaining] = candidates[-1][remaining]
    return result
