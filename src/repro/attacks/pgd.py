"""Projected Gradient Descent attacks (Madry et al., 2017).

Supports the two geometries the paper uses:

* ℓ∞ with box clipping — raw-image attacks (ε0 = 8/255),
* ℓ2 without clipping — FedProphet's intermediate-feature perturbations
  (Eq. 9's inner maximisation on ``z_{m-1}``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.attacks.base import ModelWithLoss
from repro.nn.grad_mode import attack_grad_scope

_EPS_DIV = 1e-12


@dataclass(frozen=True)
class PGDConfig:
    """Attack hyperparameters.

    ``step_size=None`` uses the conventional ``2.5 * eps / steps``.
    ``clip=None`` disables box clipping (intermediate features).
    """

    eps: float
    steps: int
    norm: str = "linf"  # "linf" | "l2"
    step_size: Optional[float] = None
    rand_init: bool = True
    clip: Optional[Tuple[float, float]] = (0.0, 1.0)

    def __post_init__(self):
        if self.eps < 0:
            raise ValueError("eps must be non-negative")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.norm not in ("linf", "l2"):
            raise ValueError(f"unsupported norm {self.norm!r}")

    @property
    def alpha(self) -> float:
        return self.step_size if self.step_size is not None else 2.5 * self.eps / self.steps


def _flat_l2(v: np.ndarray) -> np.ndarray:
    """Per-sample ℓ2 norms, shape (N, 1, 1, ...) broadcastable to v."""
    n = v.shape[0]
    norms = np.sqrt((v.reshape(n, -1) ** 2).sum(axis=1))
    return norms.reshape((n,) + (1,) * (v.ndim - 1))


def project(delta: np.ndarray, eps: float, norm: str) -> np.ndarray:
    """Project perturbations onto the ε-ball of the given norm."""
    if norm == "linf":
        return np.clip(delta, -eps, eps)
    norms = _flat_l2(delta)
    factor = np.minimum(1.0, eps / (norms + _EPS_DIV))
    return delta * factor


def random_init(
    shape: Tuple[int, ...],
    eps: float,
    norm: str,
    rng: np.random.Generator,
    dtype=None,
) -> np.ndarray:
    """Random start inside the ε-ball.

    Draws in float64 (keeping the random stream identical across compute
    dtypes), then casts to ``dtype`` so the perturbed input stays in the
    model's compute dtype instead of silently promoting every forward pass
    to float64.
    """
    if norm == "linf":
        delta = rng.uniform(-eps, eps, size=shape)
    else:
        delta = rng.normal(size=shape)
        norms = _flat_l2(delta)
        radii = rng.uniform(0.0, 1.0, size=(shape[0],) + (1,) * (len(shape) - 1)) ** (
            1.0 / max(1, int(np.prod(shape[1:])))
        )
        delta = delta / (norms + _EPS_DIV) * radii * eps
    if dtype is not None:
        delta = delta.astype(dtype, copy=False)
    return delta


def gradient_step(grad: np.ndarray, alpha: float, norm: str) -> np.ndarray:
    """Steepest-ascent step for the given norm geometry."""
    if norm == "linf":
        return alpha * np.sign(grad)
    norms = _flat_l2(grad)
    return alpha * grad / (norms + _EPS_DIV)


def pgd_attack(
    mwl: ModelWithLoss,
    x: np.ndarray,
    y: np.ndarray,
    config: PGDConfig,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Run PGD and return the adversarial inputs ``x + delta``.

    The model is used as-is (caller controls train/eval mode).  The whole
    attack runs input-grad-only (:func:`repro.nn.grad_mode.attack_grad_scope`):
    no parameter gradients are accumulated and the layers skip the forward
    caches that only the weight-gradient path needs.
    """
    if config.eps == 0.0:
        return x.copy()
    rng = rng if rng is not None else np.random.default_rng(0)
    if config.rand_init:
        delta = random_init(x.shape, config.eps, config.norm, rng, dtype=x.dtype)
    else:
        delta = np.zeros_like(x)
    if config.clip is not None:
        lo, hi = config.clip
        delta = np.clip(x + delta, lo, hi) - x
    with attack_grad_scope():
        for _ in range(config.steps):
            _, grad = mwl.loss_and_input_grad(x + delta, y)
            delta = delta + gradient_step(grad, config.alpha, config.norm)
            delta = project(delta, config.eps, config.norm)
            if config.clip is not None:
                lo, hi = config.clip
                delta = np.clip(x + delta, lo, hi) - x
    return x + delta


def cohort_pgd_attack(
    mwl: ModelWithLoss,
    x: np.ndarray,
    y: np.ndarray,
    config: PGDConfig,
    rngs: Sequence[np.random.Generator],
) -> np.ndarray:
    """PGD over a client-batched (K·B, ...) input stack.

    ``mwl`` must slice its loss gradient per client (a
    :class:`repro.attacks.base.CohortModelWithLoss` over a cohort-installed
    model); the random start is drawn *per client* with that client's own
    generator — consuming exactly the stream a serial
    :func:`pgd_attack` on the client's (B, ...) batch would — and every
    subsequent operation is per-sample, so each client's slice of the
    result is bit-identical to its serial attack.
    """
    if config.eps == 0.0:
        return x.copy()
    k = len(rngs)
    b = x.shape[0] // k
    if config.rand_init:
        delta = np.concatenate(
            [
                random_init((b,) + x.shape[1:], config.eps, config.norm, rng, dtype=x.dtype)
                for rng in rngs
            ]
        )
    else:
        delta = np.zeros_like(x)
    if config.clip is not None:
        lo, hi = config.clip
        delta = np.clip(x + delta, lo, hi) - x
    with attack_grad_scope():
        for _ in range(config.steps):
            _, grad = mwl.loss_and_input_grad(x + delta, y)
            delta = delta + gradient_step(grad, config.alpha, config.norm)
            delta = project(delta, config.eps, config.norm)
            if config.clip is not None:
                lo, hi = config.clip
                delta = np.clip(x + delta, lo, hi) - x
    return x + delta
