"""Adapter exposing loss-and-input-gradient for attack algorithms."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.grad_mode import attack_grad_scope
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module


class ModelWithLoss:
    """Bundle a model (or model segment) with a cross-entropy loss.

    Attacks repeatedly need ``(loss, d loss / d input)``; this adapter runs
    the forward/backward pair.  Note the backward pass also accumulates
    parameter gradients as a side effect — training loops must call
    ``zero_grad`` before their own update backward, which every trainer in
    this repo does.
    """

    def __init__(self, model: Module, head: Optional[Module] = None):
        self.model = model
        self.head = head
        self._ce = CrossEntropyLoss()

    def _apply_head(self, out: np.ndarray) -> Tuple[np.ndarray, Optional[Tuple[int, ...]]]:
        """Run the head, flattening conv features for plain Linear heads.

        Structured heads (e.g. :class:`repro.core.heads.AuxHead`) accept the
        body output directly and handle their own shaping.
        """
        from repro.nn.linear import Linear

        if isinstance(self.head, Linear) and out.ndim > 2:
            return self.head(out.reshape(out.shape[0], -1)), out.shape
        return self.head(out), None

    def logits(self, x: np.ndarray) -> np.ndarray:
        # Forward-only: never followed by a backward pass, so skip the
        # weight-gradient caches entirely.
        with attack_grad_scope():
            out = self.model(x)
            if self.head is not None:
                out, _ = self._apply_head(out)
        return out

    def loss_and_input_grad(self, x: np.ndarray, y: np.ndarray) -> Tuple[float, np.ndarray]:
        out = self.model(x)
        flat_shape = None
        if self.head is not None:
            out, flat_shape = self._apply_head(out)
        loss = self._ce(out, y)
        g = self._ce.backward()
        if self.head is not None:
            g = self.head.backward(g)
            if flat_shape is not None:
                g = g.reshape(flat_shape)
        return loss, self.model.backward(g)

    def per_sample_losses(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-sample CE losses (used by APGD's step-size controller)."""
        from repro.nn.losses import log_softmax

        logits = self.logits(x)
        return -log_softmax(logits)[np.arange(len(y)), np.asarray(y)]


class CohortModelWithLoss(ModelWithLoss):
    """ModelWithLoss over a client-batched (K·B, ...) activation layout.

    Swaps the scalar mean-CE for :class:`repro.nn.cohort.
    CohortCrossEntropyLoss`, whose backward divides by the *per-client*
    batch size — so the input gradients each client's slice sees are
    bit-identical to a serial :class:`ModelWithLoss` on that client alone.
    ``loss_and_input_grad`` returns the K per-client losses as the loss.
    """

    def __init__(self, model: Module, k: int, head: Optional[Module] = None):
        super().__init__(model, head)
        from repro.nn.cohort import CohortCrossEntropyLoss

        self._ce = CohortCrossEntropyLoss(k)
