"""Fast Gradient Sign Method (Goodfellow et al., 2014)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.attacks.base import ModelWithLoss
from repro.nn.grad_mode import attack_grad_scope


def fgsm_attack(
    mwl: ModelWithLoss,
    x: np.ndarray,
    y: np.ndarray,
    eps: float,
    clip: Optional[Tuple[float, float]] = (0.0, 1.0),
) -> np.ndarray:
    """Single-step ℓ∞ attack: ``x + eps * sign(grad)``."""
    if eps < 0:
        raise ValueError("eps must be non-negative")
    with attack_grad_scope():
        _, grad = mwl.loss_and_input_grad(x, y)
    adv = x + eps * np.sign(grad)
    if clip is not None:
        adv = np.clip(adv, clip[0], clip[1])
    return adv
