"""Adversarial attacks: FGSM, PGD (ℓ∞ / ℓ2), and an AutoAttack surrogate.

All attacks operate through :class:`ModelWithLoss`, which exposes the only
primitive they need — the loss value and its gradient w.r.t. the *input* —
so the same code attacks raw images (ℓ∞, clipped to [0,1]) and FedProphet's
intermediate features (ℓ2, unclipped).
"""

from repro.attacks.base import ModelWithLoss
from repro.attacks.fgsm import fgsm_attack
from repro.attacks.pgd import pgd_attack, PGDConfig
from repro.attacks.autoattack import auto_attack_lite, apgd_attack

__all__ = [
    "ModelWithLoss",
    "fgsm_attack",
    "pgd_attack",
    "PGDConfig",
    "apgd_attack",
    "auto_attack_lite",
]
