"""FedProphet: the full server/client training loop (paper Algorithm 2).

Per module m = 1..M, repeat communication rounds until convergence:

1. the server adjusts ε_{m-1} via APA (m > 1),
2. the server assigns each sampled client a module span via DMA,
3. clients run adversarial cascade learning with strong-convexity
   regularization on the span,
4. the server partial-averages modules (Eq. 16) and heads (Eq. 17).

When module m converges it is fixed; clients report max ‖Δz_m‖, which
seeds ε_m for the next module's training stage.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.attacks import ModelWithLoss
from repro.core.aggregator import (
    aggregate_heads,
    aggregate_modules,
    async_merge_schedule,
    merge_async_partial,
    publish_snapshot,
    restore_segment,
    snapshot_segment,
)
from repro.core.apa import AdaptivePerturbationAdjustment
from repro.core.cascade import (
    CascadeBatchSpec,
    cascade_local_train,
    measure_output_perturbation,
)
from repro.core.config import FedProphetConfig
from repro.core.dma import SegmentCostTable, assign_modules
from repro.core.partitioner import full_model_mem_bytes, partition_model
from repro.core.prefix_cache import PrefixCache
from repro.flsim.base import AsyncMergeEvent, FederatedExperiment, FLClient, RoundRecord
from repro.flsim.eval_executor import EvalTarget
from repro.hardware.devices import DeviceSampler, DeviceState
from repro.hardware.flops import BACKWARD_MULTIPLIER
from repro.hardware.latency import LatencyModel, LocalTrainingCost
from repro.hardware.memory import MemoryModel
from repro.hardware.profile import profile_module
from repro.metrics.evaluation import AttackSpec, EvalPlan, EvalResult
from repro.models.atoms import CascadeModel
from repro.nn.grad_mode import attack_grad_scope
from repro.core.heads import AuxHead


@dataclass
class PerturbationLogEntry:
    """One Figure-10 sample: the ε in force at a given global round."""

    round: int
    module: int
    eps: float
    eps_per_dim: float


@dataclass
class ModuleStageResult:
    """Summary of one module's training stage."""

    module: int
    rounds: int
    final_clean_acc: float
    final_adv_acc: float
    eps_star: float


class FedProphet(FederatedExperiment):
    """Memory-efficient FAT via robust and consistent cascade learning."""

    name = "fedprophet"
    # cascade_eval feeds APA's epsilon schedule and the per-module
    # early-stop each round, so evaluation sits on the algorithm's
    # critical path and cannot be overlapped with the next round.
    supports_overlap_eval = False
    # Asynchronous aggregation is *within-round*: client updates merge
    # per module span (Eq. 16 partial averages, staleness-attenuated) in
    # simulated-arrival order as they land.  Rounds themselves cannot
    # overlap — cascade_eval gates every boundary — so the cross-round
    # pipeline (pipeline_depth > 1) is rejected at construction.
    supports_async_aggregation = True
    supports_cross_round_pipeline = False

    def __init__(
        self,
        task,
        model_builder: Callable[[np.random.Generator], CascadeModel],
        config: FedProphetConfig,
        device_sampler: Optional[DeviceSampler] = None,
        latency_model: Optional[LatencyModel] = None,
    ):
        super().__init__(task, model_builder, config, device_sampler, latency_model)
        self.config: FedProphetConfig = config
        self.mem = MemoryModel(batch_size=config.batch_size)
        self.r_max = full_model_mem_bytes(self.global_model, self.mem)
        self.r_min = (
            config.r_min_bytes
            if config.r_min_bytes is not None
            else config.r_min_fraction * self.r_max
        )
        self.partition = partition_model(self.global_model, self.r_min, self.mem)
        self.cost_table = SegmentCostTable(self.global_model, self.partition, self.mem)

        head_rng = np.random.default_rng(config.seed + 21)
        num_atoms = len(self.global_model.atoms)
        self.heads: List[Optional[AuxHead]] = []
        for start, stop in self.partition.ranges:
            if stop < num_atoms:
                shape = self.global_model.feature_shape(stop - 1)
                self.heads.append(AuxHead(shape, task.num_classes, rng=head_rng))
            else:
                self.heads.append(None)

        self.apa = AdaptivePerturbationAdjustment(
            gamma=config.gamma,
            delta_alpha=config.delta_alpha,
            alpha_init=config.alpha_init,
            alpha_min=config.alpha_min,
            alpha_max=config.alpha_max,
            enabled=config.use_apa,
        )
        self.current_module = 0
        self.prefix_cache = PrefixCache() if config.use_prefix_cache else None
        if (
            self.prefix_cache is not None
            and config.threat_plan is not None
            and config.threat_plan.active
            and config.threat_plan.attack == "backdoor"
        ):
            # The prefix cache keys activations by (client, sample index)
            # and assumes client inputs are immutable; a backdoor trigger
            # rewrites inputs per round, so cached prefix activations
            # would go stale silently.
            raise ValueError(
                "a backdoor threat plan modifies client inputs, which "
                "invalidates the frozen-prefix activation cache; set "
                "use_prefix_cache=False to run this scenario"
            )
        # Stage-scoped bookkeeping: the frozen prefix only changes when the
        # training stage advances to a new module, so both the activation
        # cache and the thread workers' full-model syncs are keyed on this
        # version rather than refreshed every round.
        self._stage_module: Optional[int] = None
        self._prefix_version = 0
        self._replica_synced: dict = {}
        self._slot_head_lists: dict = {}
        self.eps_feature = 0.0  # ε_{m-1}; unused for module 0 (raw-input ℓ∞)
        self.eps_star: List[float] = []  # fixed ε*_{m-1} per completed module
        self.stage_results: List[ModuleStageResult] = []
        # Stage-end ε* probe, overlapped with the next stage's planning on
        # a pooled executor: (module, group-or-value, stage_rounds, eval).
        self._pending_probe = None
        self._probe_model: Optional[CascadeModel] = None
        self.pert_log: List[PerturbationLogEntry] = []

        # Cumulative forward FLOPs of the fixed prefix before each atom.
        self._prefix_flops = [0]
        shape = self.global_model.in_shape
        for atom in self.global_model.atoms:
            prof = profile_module(atom.module, shape)
            self._prefix_flops.append(self._prefix_flops[-1] + prof.flops)
            shape = prof.out_shape

        val_rng = np.random.default_rng(config.seed + 31)
        n_val = min(config.val_samples, len(task.test))
        idx = val_rng.choice(len(task.test), size=n_val, replace=False)
        self.val_set = task.test.subset(idx)
        self._val_eval_calls = 0

    # -- validation of the cascaded prefix -----------------------------------
    def cascade_eval(self, module_idx: int) -> EvalResult:
        """Clean/adversarial accuracy of (w*_1 ∘ … ∘ w_m) with head θ_m.

        Runs as a sharded :class:`EvalPlan` on the evaluation engine.  The
        clean pass forwards the *frozen* prefix (atoms before the current
        module) over the fixed validation set, which is exactly what the
        stage-scoped :class:`PrefixCache` memoises — repeated validations
        within a stage serve the prefix from cache, bit-identically.  The
        PGD pass perturbs the raw input and always recomputes.
        """
        cfg = self.config
        stop = self.partition[module_idx][1]
        head = self.heads[module_idx]
        # A fresh counter-derived seed per call keeps successive validations
        # independent (as the consumed RNG did) while staying shard-stable.
        self._val_eval_calls += 1
        plan = EvalPlan(
            attacks=(
                AttackSpec.clean(),
                AttackSpec.pgd(cfg.eps0, cfg.val_pgd_steps),
            ),
            seed=(cfg.seed + 37, self._val_eval_calls),
        )
        # The prefix is only frozen (and cache entries only valid) for the
        # module currently in training.
        prefix_len = (
            self.partition[module_idx][0]
            if module_idx == self.current_module
            else 0
        )
        use_cache = self.prefix_cache is not None and prefix_len > 0

        def target(slot: int) -> EvalTarget:
            model = self._slot_model(slot)
            slot_head = self._slot_heads(slot)[module_idx]
            mwl = ModelWithLoss(model.segment(0, stop), head=slot_head)
            if not use_cache:
                return EvalTarget(mwl)

            def prefix_forward(xb: np.ndarray, _model=model) -> np.ndarray:
                with attack_grad_scope():
                    return _model.forward_until(xb, prefix_len)

            return EvalTarget(
                mwl,
                prefix_forward=prefix_forward,
                suffix_mwl=ModelWithLoss(
                    model.segment(prefix_len, stop), head=slot_head
                ),
            )

        state: dict = {}

        def prepare(slot: int) -> None:
            if slot == 0:
                return
            if "model" not in state:
                # The evaluated chain reads atoms [0, stop) only, so ship a
                # segment-scoped snapshot instead of the full state dict —
                # the untrained suffix beyond `stop` never runs here.
                state["model"] = snapshot_segment(self.global_model, 0, stop)
                state["head"] = head.state_dict() if head is not None else None
            restore_segment(self._slot_model(slot), state["model"], 0, stop)
            if state["head"] is not None:
                self._slot_heads(slot)[module_idx].load_state_dict(state["head"])

        return self.eval_executor.run(
            plan,
            self.val_set,
            target,
            prepare_slot=prepare,
            prefix_cache=self.prefix_cache if use_cache else None,
            cache_key=("val", prefix_len) if use_cache else None,
        )

    # -- executor workspaces ---------------------------------------------------
    def _enter_stage(self, m: int) -> None:
        """Note a module-stage (prefix) change; bump cache + replica versions.

        During a stage, aggregation only rewrites atoms at or after the
        current module, so the frozen prefix — and everything keyed on it —
        stays valid across all of the stage's rounds.
        """
        if self._stage_module != m:
            self._stage_module = m
            self._prefix_version += 1
            if self.prefix_cache is not None:
                self.prefix_cache.bump_version()

    def _slot_heads(self, slot: int) -> List[Optional[AuxHead]]:
        """Per-slot auxiliary-head workspaces (slot 0: the global heads)."""
        if slot == 0:
            return self.heads
        heads = self._slot_head_lists.get(slot)
        if heads is None:
            rng = np.random.default_rng(self.config.seed + 21)
            num_atoms = len(self.global_model.atoms)
            heads = []
            for start, stop in self.partition.ranges:
                if stop < num_atoms:
                    shape = self.global_model.feature_shape(stop - 1)
                    heads.append(AuxHead(shape, self.task.num_classes, rng=rng))
                else:
                    heads.append(None)
            self._slot_head_lists[slot] = heads
        return heads

    def _sync_workspaces(self, num_items: int) -> None:
        """Bring thread-worker model replicas up to the current prefix.

        A replica's trainable suffix is restored from the round snapshot
        before every client, so only the frozen prefix can go stale — and
        it only changes at stage boundaries.  One full state sync per
        replica per *stage*, done before the parallel region so no worker
        reads the global model while another mutates it.
        """
        full_state = None
        for slot in self.executor.slots_for(num_items):
            if slot == 0 or self._replica_synced.get(slot) == self._prefix_version:
                continue
            if full_state is None:
                full_state = self.global_model.state_dict()
            self._slot_model(slot).load_state_dict(full_state)
            self._replica_synced[slot] = self._prefix_version

    # -- one communication round -----------------------------------------------
    def _stage_train_fn(
        self,
        round_idx: int,
        m: int,
        seg_snapshot,
        head_states,
        forked: bool,
        export_cache: bool,
    ) -> Callable:
        """The slot-aware cascade work unit shared by sync and async rounds.

        A pure function of (round snapshot, head states, the client's
        shard and module span, a counter-derived RNG): restores the
        trainable suffix onto the slot workspace, runs adversarial
        cascade training on the assigned span, and returns the trained
        segment + head states (plus prefix-cache exports on forked
        backends).  Bit-identical on every backend and worker count.
        """
        cfg = self.config
        start_atom = self.partition[m][0]
        num_atoms = len(self.global_model.atoms)
        lr_t = self.lr_at(round_idx)

        def train_client(item, slot):
            client, dev_state, mk = item
            if forked:
                hits0, misses0 = self.prefix_cache.hits, self.prefix_cache.misses
            model = self._slot_model(slot)
            heads = self._slot_heads(slot)
            restore_segment(model, seg_snapshot, start_atom, num_atoms)
            head = heads[mk]
            if head is not None:
                head.load_state_dict(head_states[mk])
            stop_atom = self.partition[mk][1]
            spec = CascadeBatchSpec(
                start_atom=start_atom, stop_atom=stop_atom, head=head
            )
            client_rng = self._client_rng(round_idx, client.cid)
            cascade_local_train(
                model,
                spec,
                client.dataset,
                iterations=cfg.local_iters,
                batch_size=cfg.batch_size,
                lr=lr_t,
                mu=cfg.mu,
                eps0=cfg.eps0,
                eps_feature=self.eps_feature,
                attack_steps=cfg.attack_steps_features if m > 0 else cfg.train_pgd_steps,
                momentum=cfg.momentum,
                weight_decay=cfg.weight_decay,
                rng=client_rng,
                prefix_cache=self.prefix_cache,
                cache_key=client.cid,
            )
            seg_state = snapshot_segment(model, start_atom, stop_atom)
            head_state = head.state_dict() if head is not None else None
            cache_key = (client.cid, start_atom)
            cache_entry = (
                self.prefix_cache.export_entry(cache_key) if export_cache else None
            )
            counters = (
                (self.prefix_cache.hits - hits0, self.prefix_cache.misses - misses0)
                if forked
                else None
            )
            cost = self._client_cost(dev_state, m, mk)
            return seg_state, head_state, cost, cache_key, cache_entry, counters

        return train_client

    def run_round(
        self,
        round_idx: int,
        clients: List[FLClient],
        states: List[Optional[DeviceState]],
    ) -> List[LocalTrainingCost]:
        m = self.current_module
        cfg = self.config
        self._enter_stage(m)
        assignments = assign_modules(self.cost_table, m, states, enabled=cfg.use_dma)
        start_atom = self.partition[m][0]
        num_atoms = len(self.global_model.atoms)

        # Segment-scoped round snapshot: only atoms of modules >= m and the
        # heads can be trained, so the frozen prefix is never copied and
        # each work unit restores just the trainable suffix.
        seg_snapshot = snapshot_segment(self.global_model, start_atom, num_atoms)
        head_states = [h.state_dict() if h is not None else None for h in self.heads]
        # Forked workers fill private copies of the activation cache; ship
        # their entries (and hit/miss counter deltas) back so next round's
        # forks inherit a warm cache and stats() covers child-side lookups.
        forked = self.executor.forks_for(len(clients)) and self.prefix_cache is not None
        export_cache = forked and start_atom > 0
        self._sync_workspaces(len(clients))
        train_client = self._threat_wrap(
            round_idx,
            self._stage_train_fn(
                round_idx, m, seg_snapshot, head_states, forked, export_cache
            ),
            seg_snapshot,
        )
        if cfg.aggregation_mode == "async":
            return self._run_round_async(
                round_idx, clients, states, assignments, seg_snapshot,
                head_states, train_client,
            )

        results = self.scheduler.run_group(
            "train", train_client, list(zip(clients, states, assignments))
        )
        seg_states = [r[0] for r in results]
        client_head_states = [r[1] for r in results]
        costs = [r[2] for r in results]
        weights = [client.num_samples / self.total_samples for client in clients]
        for _, _, _, cache_key, cache_entry, counters in results:
            if cache_entry is not None:
                self.prefix_cache.adopt_entry(cache_key, *cache_entry)
            if counters is not None:
                self.prefix_cache.adopt_counters(*counters)

        # Return the model to the round-start state, then apply aggregation.
        restore_segment(self.global_model, seg_snapshot, start_atom, num_atoms)
        for h, s in zip(self.heads, head_states):
            if h is not None and s is not None:
                h.load_state_dict(s)
        merged = aggregate_modules(
            self.global_model, self.partition, m, seg_states, assignments, weights,
            average_fn=self._module_average_fn(),
        )
        if merged:
            self.global_model.load_state_dict(merged, strict=False)
        aggregate_heads(self.heads, client_head_states, assignments, weights)
        return costs

    def _module_average_fn(self) -> Optional[Callable]:
        """The per-module robust-aggregation hook (None = plain average).

        Routes every Eq. 16 module merge through
        :meth:`robust_aggregate` when a non-default ``aggregation_rule``
        is configured; heads keep the plain Eq. 17 average (their
        ``M_k == n`` trainer cohorts are too small for robust
        statistics).
        """
        if self.config.aggregation_rule == "fedavg":
            return None
        return lambda states, weights, keys, base: self.robust_aggregate(
            states, weights, keys=keys, base=base
        )

    def _run_round_async(
        self,
        round_idx: int,
        clients: List[FLClient],
        states: List[Optional[DeviceState]],
        assignments: List[int],
        seg_snapshot,
        head_states,
        train_client: Callable,
    ) -> List[LocalTrainingCost]:
        """Within-round asynchronous partial averaging (per-module merges).

        Clients still train from the round-start weights, but their
        updates merge into a *server* copy of the trainable segment (and
        head states) one event at a time, in simulated-arrival order,
        streamed through the scheduler: each event partial-averages
        per module span (Eq. 16) and per head (Eq. 17) over its members
        and blends in with the per-module ``1/(1+s)`` attenuation
        (:func:`repro.core.aggregator.merge_async_partial`).  The merge
        schedule bounds staleness exactly as in the generic engine;
        ``max_staleness=0`` coalesces the round into one event whose
        rates are all exactly 1 — bit-identical to the synchronous
        Eq. 16/17 aggregation.  Deterministic at any backend and worker
        count (arrival order is the latency model's, never wall clock).
        """
        cfg = self.config
        m = self.current_module
        start_atom = self.partition[m][0]
        num_atoms = len(self.global_model.atoms)
        num_modules = len(self.partition)

        costs = [
            self._client_cost(dev, m, mk) for dev, mk in zip(states, assignments)
        ]
        weights = [client.num_samples / self.total_samples for client in clients]
        # Denominators of the per-module (and per-head) mixing rates: the
        # whole round's trainer weight for each span, known before training.
        module_weights = [
            float(sum(w for w, mk in zip(weights, assignments) if mk >= n))
            for n in range(num_modules)
        ]
        head_weights = [
            float(sum(w for w, mk in zip(weights, assignments) if mk == n))
            for n in range(num_modules)
        ]
        order = sorted(range(len(clients)), key=lambda i: (costs[i].total_s, i))
        events = [
            sorted(order[pos] for pos in event)
            for event in async_merge_schedule(len(clients), cfg.max_staleness)
        ]
        server_seg = {k: v.copy() for k, v in seg_snapshot.items()}
        server_heads = [
            {k: v.copy() for k, v in hs.items()} if hs is not None else None
            for hs in head_states
        ]

        group = self.scheduler.submit_group(
            "train", train_client, list(zip(clients, states, assignments))
        )
        landed = [False] * len(clients)
        results: List[Optional[tuple]] = [None] * len(clients)
        next_event = 0
        for idx, result in group.stream():
            results[idx] = result
            landed[idx] = True
            while next_event < len(events) and all(
                landed[i] for i in events[next_event]
            ):
                members = events[next_event]
                alpha = merge_async_partial(
                    self.global_model,
                    self.partition,
                    m,
                    server_seg,
                    server_heads,
                    [results[i][0] for i in members],
                    [results[i][1] for i in members],
                    [assignments[i] for i in members],
                    [weights[i] for i in members],
                    module_weights,
                    head_weights,
                    staleness=next_event,
                    average_fn=self._module_average_fn(),
                )
                self.async_log.append(
                    AsyncMergeEvent(
                        round=round_idx,
                        event=next_event,
                        staleness=next_event,
                        client_ids=tuple(clients[i].cid for i in members),
                        alpha=alpha,
                        base_version=0,
                        sim_time_s=self.clock_s
                        + max(costs[i].total_s for i in members),
                    )
                )
                next_event += 1
        assert next_event == len(events), "async merge schedule did not drain"
        for _, _, _, cache_key, cache_entry, counters in results:
            if cache_entry is not None:
                self.prefix_cache.adopt_entry(cache_key, *cache_entry)
            if counters is not None:
                self.prefix_cache.adopt_counters(*counters)
        # Install the merged server segment and heads (untrained spans kept
        # their round-start values inside the server copies).
        restore_segment(self.global_model, server_seg, start_atom, num_atoms)
        for head, state in zip(self.heads, server_heads):
            if head is not None and state is not None:
                head.load_state_dict(state)
        return costs

    def _client_cost(
        self, state: Optional[DeviceState], module_a: int, module_b: int
    ) -> LocalTrainingCost:
        """Latency of one client's round: prefix forward + PGD-AT on the span."""
        if state is None:
            return LocalTrainingCost(0.0, 0.0)
        cfg = self.config
        seg = self.cost_table.cost(module_a, module_b)
        start_atom = self.partition[module_a][0]
        prefix_fwd = self._prefix_flops[start_atom]
        n_attack = cfg.attack_steps_features if module_a > 0 else cfg.train_pgd_steps
        per_iter = cfg.batch_size * (
            prefix_fwd + (n_attack + 1) * (1 + BACKWARD_MULTIPLIER) * seg.flops_fwd
        )
        return self.latency_model.local_training_cost(
            state,
            training_flops=per_iter,
            mem_req_bytes=seg.mem_bytes,
            iterations=cfg.local_iters,
            pgd_steps=n_attack,
        )

    # -- the Algorithm 2 outer loop ----------------------------------------------
    def run(self, rounds: Optional[int] = None, verbose: bool = False) -> List[RoundRecord]:
        """Journal-wrapped Algorithm 2 (checkpoint/resume is refused at init:
        the cascade loop's module/APA state is not generically resumable)."""
        self._open_journal()
        try:
            records = self._run_cascade(rounds, verbose)
        except BaseException:
            self._abort_cleanup()
            raise
        self._jlog("run_end", rounds=len(records), clock_s=self.clock_s)
        return records

    def _run_cascade(
        self, rounds: Optional[int] = None, verbose: bool = False
    ) -> List[RoundRecord]:
        cfg = self.config
        budget = rounds if rounds is not None else cfg.rounds
        t = 0
        num_modules = len(self.partition)
        prev_clean, prev_adv = 1.0, 1.0  # ratio 1 before any module is fixed

        for m in range(num_modules):
            if t >= budget:
                break
            self.current_module = m
            apa_started = m == 0
            best_metric = -np.inf
            stale = 0
            last_eval = EvalResult(clean_acc=0.0, pgd_acc=0.0)
            stage_rounds = 0

            while stage_rounds < cfg.rounds_per_module and t < budget:
                clients, states = self.sample_round(t)
                if not apa_started:
                    # Resolve the previous stage's in-flight ε* probe here
                    # — after this round's sampling/fault/threat planning,
                    # which the probe overlaps with on a pooled executor —
                    # then seed the APA for this module.  start_module is
                    # pure APA arithmetic and sample_round never reads the
                    # APA state, so the reordering is bit-identical.
                    self._resolve_eps_star()
                    self.apa.start_module(self.eps_star[-1], prev_clean, prev_adv)
                    self.eps_feature = self.apa.epsilon
                    apa_started = True
                if self._fault_aborted():
                    # No training, no module progress metric: the aborted
                    # round burns budget but not the staleness counter.
                    self._finish_aborted_round(t)
                    stage_rounds += 1
                    t += 1
                    continue
                round_costs = self.run_round(t, clients, states)
                self.advance_clock(round_costs)
                self._jlog_agg(t)

                last_eval = self.cascade_eval(m)
                if m > 0 and cfg.use_apa:
                    self.eps_feature = self.apa.update(
                        last_eval.clean_acc, last_eval.pgd_acc
                    )
                dim = self.global_model.feature_size(self.partition[m][0] - 1)
                self.pert_log.append(
                    PerturbationLogEntry(
                        round=t,
                        module=m,
                        eps=self.eps_feature if m > 0 else cfg.eps0,
                        eps_per_dim=(
                            self.eps_feature / np.sqrt(dim) if m > 0 else cfg.eps0
                        ),
                    )
                )
                self.history.append(
                    RoundRecord(
                        round=t,
                        sim_time_s=self.clock_s,
                        compute_s=self.total_compute_s,
                        access_s=self.total_access_s,
                        eval=last_eval,
                    )
                )
                self._jlog(
                    "round",
                    round=t,
                    module=m,
                    sim_time_s=self.clock_s,
                    compute_s=self.total_compute_s,
                    access_s=self.total_access_s,
                    aborted=False,
                )
                self._journal_eval(self.history[-1])
                if verbose:  # pragma: no cover - console reporting
                    print(
                        f"[fedprophet] module {m + 1}/{num_modules} round {t}: "
                        f"clean={last_eval.clean_acc:.3f} adv={last_eval.pgd_acc:.3f} "
                        f"eps={self.eps_feature:.3f}"
                    )

                metric = 0.5 * (last_eval.clean_acc + (last_eval.pgd_acc or 0.0))
                if metric > best_metric + 1e-6:
                    best_metric = metric
                    stale = 0
                else:
                    stale += 1
                stage_rounds += 1
                t += 1
                if stale >= cfg.patience:
                    break

            # Fix module m: record ε*, C*, A*; measure base magnitude for m+1.
            prev_clean, prev_adv = last_eval.clean_acc, max(last_eval.pgd_acc or 0.0, 1e-3)
            self._submit_eps_probe(m, stage_rounds, last_eval)
        self._resolve_eps_star()
        return self.history

    def _submit_eps_probe(self, module_idx: int, stage_rounds: int, last_eval) -> None:
        """Launch the stage-end ε* probe without blocking the round loop.

        The probe reads only *fixed* state — the just-completed module's
        weights (frozen from here on), its aux head, and the stage-end
        ``eps_feature`` — and draws from a self-contained RNG stream
        (``seed + 41 + module``), so it is a pure function of the
        published snapshot: its result cannot depend on when or where it
        runs.  On a pooled executor it is submitted as a single-task
        scheduler group over a :func:`publish_snapshot` of the stage
        weights and a private head copy, running on an idle worker while
        the main thread plans the next stage; elsewhere it runs inline.
        :meth:`_resolve_eps_star` gathers it at the next consumption
        point (APA seeding, or the end of the cascade).
        """
        if not self.executor.pooled:
            self._pending_probe = (
                module_idx,
                self._collect_output_perturbation(module_idx),
                stage_rounds,
                last_eval,
            )
            return
        published = publish_snapshot(self.global_model, version=module_idx)
        head = copy.deepcopy(self.heads[module_idx])
        eps_feature = self.eps_feature

        def probe(_item, _slot):
            model = self._probe_model
            if model is None:
                model = self.model_builder(np.random.default_rng(self.config.seed + 7))
                self._probe_model = model
            model.load_state_dict(dict(published.state))
            return self._collect_output_perturbation(
                module_idx, model=model, head=head, eps_feature=eps_feature
            )

        group = self.scheduler.submit_group("eps_probe", probe, [module_idx])
        self._pending_probe = (module_idx, group, stage_rounds, last_eval)

    def _resolve_eps_star(self) -> None:
        """Gather the in-flight stage-end probe (if any): record ε* + stage."""
        pending = self._pending_probe
        if pending is None:
            return
        self._pending_probe = None
        module_idx, value, stage_rounds, last_eval = pending
        eps_star = float(value if isinstance(value, float) else value.results()[0])
        self.eps_star.append(eps_star)
        self.stage_results.append(
            ModuleStageResult(
                module=module_idx,
                rounds=stage_rounds,
                final_clean_acc=last_eval.clean_acc,
                final_adv_acc=last_eval.pgd_acc or 0.0,
                eps_star=eps_star,
            )
        )

    def _collect_output_perturbation(
        self,
        module_idx: int,
        model: Optional[CascadeModel] = None,
        head: Optional[AuxHead] = None,
        eps_feature: Optional[float] = None,
    ) -> float:
        """Average over sampled clients of max ‖Δz_m‖ (seeds ε_m, Eq. 11).

        ``model``/``head``/``eps_feature`` let the overlapped probe run
        against a frozen snapshot replica instead of the live objects;
        the RNG stream is derived from (seed, module) alone either way,
        so the value is independent of which copy it reads.
        """
        cfg = self.config
        if model is None:
            model = self.global_model
        if head is None:
            head = self.heads[module_idx]
        if eps_feature is None:
            eps_feature = self.eps_feature
        start, stop = self.partition[module_idx]
        rng = np.random.default_rng(cfg.seed + 41 + module_idx)
        ids = rng.choice(
            cfg.num_clients, size=min(cfg.clients_per_round, cfg.num_clients), replace=False
        )
        values = []
        for cid in ids:
            values.append(
                measure_output_perturbation(
                    model,
                    start,
                    stop,
                    head,
                    self.clients[cid].dataset,
                    mu=cfg.mu,
                    eps0=cfg.eps0,
                    eps_feature=eps_feature,
                    attack_steps=max(1, cfg.attack_steps_features // 2),
                    batch_size=cfg.batch_size,
                    rng=rng,
                )
            )
        return float(np.mean(values))
