"""Memory-constrained model partition (paper Algorithm 1, §6.1).

Greedy packing: traverse the atom sequence, appending atoms to the current
module while its training-memory requirement (including the auxiliary
head) stays below ``R_min``; start a new module otherwise.  This yields the
fewest modules under the constraint, as the paper argues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.hardware.memory import BYTES_PER_SCALAR, MemoryModel
from repro.hardware.profile import profile_module
from repro.models.atoms import CascadeModel


def aux_head_bytes(head_in_dim: int, num_classes: int, mem: MemoryModel) -> int:
    """Training memory of the auxiliary head θ_m (analytic).

    ``head_in_dim`` is the head's linear-layer input width — the channel
    count for pooled conv features (see :mod:`repro.core.heads`) or the
    flat feature size otherwise.  The head holds ``D·K + K`` parameters
    with gradients and optimizer state, plus per-batch pooled-feature and
    logit activations.
    """
    params = head_in_dim * num_classes + num_classes
    state = params * (2 + mem.optimizer_state_factor)
    activations = mem.batch_size * (head_in_dim + num_classes)
    return mem.bytes_per_scalar * (state + activations)


@dataclass(frozen=True)
class Partition:
    """Atom-index ranges of each module: module m spans atoms [start, stop)."""

    ranges: Tuple[Tuple[int, int], ...]

    @property
    def num_modules(self) -> int:
        return len(self.ranges)

    def __len__(self) -> int:
        return len(self.ranges)

    def __getitem__(self, m: int) -> Tuple[int, int]:
        return self.ranges[m]

    def module_of_atom(self, atom_idx: int) -> int:
        for m, (start, stop) in enumerate(self.ranges):
            if start <= atom_idx < stop:
                return m
        raise IndexError(f"atom {atom_idx} not covered by partition")


def segment_mem_bytes(
    model: CascadeModel,
    start: int,
    stop: int,
    mem: MemoryModel,
    include_head: bool = True,
) -> int:
    """Training-memory requirement of atoms [start, stop) plus aux head."""
    seg = model.segment(start, stop)
    in_shape = model.feature_shape(start - 1)
    total = mem.bytes_for(seg, in_shape)
    if include_head and stop < len(model.atoms):
        from repro.core.heads import head_input_dim

        total += aux_head_bytes(
            head_input_dim(model.feature_shape(stop - 1)), model.num_classes, mem
        )
    return total


def partition_model(
    model: CascadeModel,
    r_min_bytes: float,
    mem: MemoryModel,
) -> Partition:
    """Algorithm 1: greedy memory-constrained partition.

    An atom whose solo requirement already exceeds ``R_min`` still becomes
    its own module (the algorithm appends it regardless); the caller can
    detect this via :func:`segment_mem_bytes` if a hard guarantee is needed.
    """
    if r_min_bytes <= 0:
        raise ValueError("r_min_bytes must be positive")
    ranges: List[Tuple[int, int]] = []
    start = 0
    num_atoms = len(model.atoms)
    for i in range(num_atoms):
        if i == start:
            continue  # a module always holds at least the atom that opened it
        if segment_mem_bytes(model, start, i + 1, mem) >= r_min_bytes:
            ranges.append((start, i))
            start = i
    ranges.append((start, num_atoms))
    return Partition(ranges=tuple(ranges))


def full_model_mem_bytes(model: CascadeModel, mem: MemoryModel) -> int:
    """MemReq of end-to-end training (jFAT's requirement, R_max)."""
    return mem.bytes_for(model, model.in_shape)


def partition_summary(
    model: CascadeModel, partition: Partition, mem: MemoryModel
) -> List[dict]:
    """Per-module rows matching paper Tables 7–8: layers, MemReq, FLOPs."""
    rows = []
    for m, (start, stop) in enumerate(partition.ranges):
        seg = model.segment(start, stop)
        in_shape = model.feature_shape(start - 1)
        prof = profile_module(seg, in_shape)
        rows.append(
            {
                "module": m + 1,
                "atoms": [a.name for a in model.atoms[start:stop]],
                "mem_bytes": segment_mem_bytes(model, start, stop, mem),
                "flops_fwd": prof.flops,
                "params": prof.params,
            }
        )
    return rows
