"""FedProphet: the paper's primary contribution.

* :mod:`repro.core.partitioner` — memory-constrained model partition (Alg. 1)
* :mod:`repro.core.cascade` — client-side adversarial cascade learning with
  strong-convexity regularization (Eq. 9)
* :mod:`repro.core.apa` — Adaptive Perturbation Adjustment (Eq. 11–12)
* :mod:`repro.core.dma` — Differentiated Module Assignment (Eq. 14–15)
* :mod:`repro.core.aggregator` — partial-average aggregation (Eq. 16–17)
* :mod:`repro.core.prophet` — the full server/client loop (Alg. 2)
"""

from repro.core.config import FedProphetConfig
from repro.core.prefix_cache import PrefixCache
from repro.core.heads import AuxHead, head_input_dim
from repro.core.partitioner import Partition, partition_model, aux_head_bytes
from repro.core.cascade import CascadeLossModel, cascade_local_train, measure_output_perturbation
from repro.core.apa import AdaptivePerturbationAdjustment
from repro.core.dma import SegmentCostTable, assign_modules
from repro.core.aggregator import (
    aggregate_modules,
    aggregate_heads,
    async_merge_schedule,
    blend_into,
    merge_async_partial,
    merge_async_update,
    publish_snapshot,
    PublishedWeights,
    snapshot_segment,
    restore_segment,
)
from repro.core.prophet import FedProphet

__all__ = [
    "FedProphetConfig",
    "PrefixCache",
    "AuxHead",
    "head_input_dim",
    "Partition",
    "partition_model",
    "aux_head_bytes",
    "CascadeLossModel",
    "cascade_local_train",
    "measure_output_perturbation",
    "AdaptivePerturbationAdjustment",
    "SegmentCostTable",
    "assign_modules",
    "aggregate_modules",
    "aggregate_heads",
    "async_merge_schedule",
    "blend_into",
    "merge_async_partial",
    "merge_async_update",
    "publish_snapshot",
    "PublishedWeights",
    "snapshot_segment",
    "restore_segment",
    "FedProphet",
]
