"""Frozen-prefix activation cache for cascade training.

During a module-m training stage, the cascade prefix (atoms before the
current module) is *frozen*: its parameters are fixed for the whole stage
and it always runs in eval mode, so the feature ``z_{m-1}`` it produces
for a given sample is a pure function of (prefix weights, sample).  The
seed implementation nevertheless re-ran ``model.forward_until`` for every
local-training batch — and client datasets are small enough that each
sample is revisited several times per round (multiple local epochs) and
again on every round the client is sampled.

:class:`PrefixCache` memoises those prefix forwards at *per-sample*
granularity, keyed by ``(client key, prefix length)``, so cache hits
survive the data loader's per-epoch reshuffling (batch composition
changes every epoch; sample identity does not).  Lookups return
bit-identical features to a fresh forward because every per-sample
computation in the substrate (im2col, batched matmul, eval-mode BN) is
independent of batch composition.

Invalidation is **version-keyed**.  The cache carries a prefix-version
counter; every entry is stamped with the version it was filled under, and
:meth:`bump_version` advances the counter (dropping all entries) whenever
the frozen prefix actually changes.  :class:`repro.core.prophet.FedProphet`
bumps it once per *module stage* — aggregation during a stage only touches
atoms at or after the current module, so the prefix is constant across all
of a stage's rounds and clients re-sampled in later rounds hit entries
filled in earlier ones.  (PR 1 invalidated every round, turning all those
cross-round lookups into recomputation.)

Thread-safety: the round execution engine runs one ``fetch`` per client
concurrently.  Keys are per-client so two workers never fill the same
entry, but the entry table, counters, and evictions are shared; a lock
guards that bookkeeping while the expensive ``forward_fn`` call runs
outside it.  If a concurrent eviction drops an entry mid-fetch the fetch
still returns correct features from its private reference — only the
cached copy is lost.

Process backend: forked workers inherit a snapshot of the cache and fill
their private copies; :meth:`export_entry` / :meth:`adopt_entry` let the
parent merge a child's freshly-computed rows back in so the next round's
forks start warm.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Hashable, Optional, Tuple

import numpy as np


class _Entry:
    """Lazily-allocated per-sample feature store for one (client, prefix)."""

    __slots__ = ("data", "filled", "version")

    def __init__(self, num_samples: int, version: int):
        self.data: Optional[np.ndarray] = None
        self.filled = np.zeros(num_samples, dtype=bool)
        self.version = version

    def nbytes(self) -> int:
        return int(self.data.nbytes) if self.data is not None else 0


class PrefixCache:
    """Keyed per-sample memoisation of frozen-prefix forward passes.

    Parameters
    ----------
    max_bytes:
        Soft capacity; when allocating a new entry would exceed it, the
        oldest entries are evicted first (insertion order).  ``None``
        means unbounded.
    """

    def __init__(self, max_bytes: Optional[int] = 512 * 1024 * 1024):
        self.max_bytes = max_bytes
        self.version = 0
        self._entries: Dict[Hashable, _Entry] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # -- bookkeeping -------------------------------------------------------
    def nbytes(self) -> int:
        return sum(e.nbytes() for e in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, float]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "entries": len(self._entries),
            "bytes": self.nbytes(),
            "invalidations": self.invalidations,
            "version": self.version,
        }

    def bump_version(self) -> int:
        """Advance the prefix version and drop all cached activations.

        Call when the frozen prefix's weights actually change — in
        FedProphet, once per module stage.  Returns the new version.
        """
        with self._lock:
            self.version += 1
            self._entries.clear()
            self.invalidations += 1
            return self.version

    def invalidate(self) -> None:
        """Drop all cached activations (the frozen prefix changed)."""
        self.bump_version()

    def _evict_for(self, key: Hashable, incoming_bytes: int) -> None:
        """Evict oldest entries (never ``key`` itself) to make room."""
        if self.max_bytes is None:
            return
        for victim in list(self._entries):
            if self.nbytes() + incoming_bytes <= self.max_bytes:
                break
            if victim != key:
                del self._entries[victim]

    def _ensure_entry_data(
        self, key: Hashable, entry: _Entry, feature_shape, dtype, num_samples: int
    ) -> bool:
        """Allocate ``entry.data`` within the budget (lock held by caller).

        Returns False — and drops the entry — when a full entry of this
        shape could never fit under ``max_bytes``; evicting everyone else
        for a cache that cannot be retained would only thrash.
        """
        if entry.data is not None:
            return True
        entry_bytes = np.dtype(dtype).itemsize * num_samples * int(
            np.prod(feature_shape)
        )
        if self.max_bytes is not None and entry_bytes > self.max_bytes:
            self._entries.pop(key, None)
            return False
        self._evict_for(key, entry_bytes)
        entry.data = np.empty((num_samples,) + tuple(feature_shape), dtype=dtype)
        return True

    # -- the lookup --------------------------------------------------------
    def fetch(
        self,
        key: Hashable,
        indices: np.ndarray,
        x: np.ndarray,
        forward_fn: Callable[[np.ndarray], np.ndarray],
        num_samples: int,
    ) -> np.ndarray:
        """Prefix features for dataset rows ``indices`` (inputs ``x``).

        Rows already cached under ``key`` at the current prefix version are
        returned from the store; the rest are computed in one batched
        ``forward_fn`` call and cached.  The returned array is a fresh copy
        — callers may hand it to attacks that build perturbed views without
        aliasing the cache.
        """
        indices = np.asarray(indices)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.version != self.version:
                entry = _Entry(num_samples, self.version)
                self._entries[key] = entry
            missing = ~entry.filled[indices]
        if missing.any():
            z_new = forward_fn(x[missing] if not missing.all() else x)
            with self._lock:
                if not self._ensure_entry_data(
                    key, entry, z_new.shape[1:], z_new.dtype, num_samples
                ):
                    # Uncacheable: just pass the computation through.
                    self.misses += int(missing.sum())
                    if missing.all():
                        return z_new
                    raise AssertionError(
                        "uncacheable entry can only be partially filled if "
                        "it was previously stored"
                    )
                rows = indices[missing]
                entry.data[rows] = z_new
                entry.filled[rows] = True
                self.misses += int(missing.sum())
        with self._lock:
            self.hits += int((~missing).sum())
        return entry.data[indices]

    def fetch_stacked(
        self,
        keys,
        indices_list,
        xs,
        forward_fn: Callable[[np.ndarray], np.ndarray],
        num_samples_list,
    ):
        """K clients' prefix features with one fused forward (batched backend).

        The client-batched executor concatenates K per-client batches into
        a single ``(K·B, ...)`` stack; this fetch mirrors that: it collects
        the *union* of the K clients' uncached rows, computes them in one
        ``forward_fn`` call, and scatters the results back into the
        per-client entries.  Returns the K feature arrays in client order,
        each equal to what :meth:`fetch` would return — the frozen prefix
        is eval-mode and per-sample deterministic, so features do not
        depend on batch composition.
        """
        indices_list = [np.asarray(ix) for ix in indices_list]
        entries = []
        missings = []
        with self._lock:
            for key, indices, num_samples in zip(keys, indices_list, num_samples_list):
                entry = self._entries.get(key)
                if entry is None or entry.version != self.version:
                    entry = _Entry(num_samples, self.version)
                    self._entries[key] = entry
                entries.append(entry)
                missings.append(~entry.filled[indices])
        outputs = [None] * len(keys)
        if any(m.any() for m in missings):
            z_all = forward_fn(
                np.concatenate([x[m] for x, m in zip(xs, missings) if m.any()])
            )
            offset = 0
            with self._lock:
                for i, (key, entry, indices, missing, num_samples) in enumerate(
                    zip(keys, entries, indices_list, missings, num_samples_list)
                ):
                    count = int(missing.sum())
                    if count == 0:
                        continue
                    z_new = z_all[offset : offset + count]
                    offset += count
                    self.misses += count
                    if not self._ensure_entry_data(
                        key, entry, z_new.shape[1:], z_new.dtype, num_samples
                    ):
                        # Uncacheable: pass the computation through, as in
                        # the serial fetch.
                        if missing.all():
                            outputs[i] = z_new.copy()
                            continue
                        raise AssertionError(
                            "uncacheable entry can only be partially filled "
                            "if it was previously stored"
                        )
                    rows = indices[missing]
                    entry.data[rows] = z_new
                    entry.filled[rows] = True
        with self._lock:
            for i, (entry, indices, missing) in enumerate(
                zip(entries, indices_list, missings)
            ):
                self.hits += int((~missing).sum())
                if outputs[i] is None:
                    outputs[i] = entry.data[indices]
        return outputs

    # -- cross-process merging ---------------------------------------------
    def adopt_counters(self, hits: int, misses: int) -> None:
        """Fold a forked worker's hit/miss *deltas* into this cache.

        Counters accrue in whichever process ran the lookups; a round or
        evaluation executed on the process backend therefore leaves the
        parent's counters untouched.  Workers snapshot ``(hits, misses)``
        around their work and ship the difference back so ``stats()``
        reflects the whole round in every backend.
        """
        with self._lock:
            self.hits += int(hits)
            self.misses += int(misses)

    def export_entry(
        self, key: Hashable
    ) -> Optional[Tuple[int, np.ndarray, np.ndarray]]:
        """Snapshot ``(version, data, filled)`` of one entry, or ``None``.

        Used by forked round workers to ship freshly-computed activations
        back to the parent process (the arrays cross a pickle boundary, so
        no copy is taken here).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.data is None or not entry.filled.any():
                return None
            return entry.version, entry.data, entry.filled

    def adopt_rows(
        self,
        key: Hashable,
        version: int,
        rows: np.ndarray,
        data: np.ndarray,
        num_samples: int,
    ) -> bool:
        """Merge a worker's freshly-computed feature *rows* into an entry.

        Cheaper than :meth:`export_entry`/:meth:`adopt_entry` when a forked
        worker filled only a slice of a shared entry (eval shards of one
        validation set): only the slice crosses the process boundary,
        instead of the whole entry once per shard.  ``data`` holds the
        features of dataset rows ``rows`` in order; already-filled rows
        are left untouched (they are bit-identical by construction).
        """
        rows = np.asarray(rows)
        with self._lock:
            if version != self.version or len(rows) == 0:
                return False
            entry = self._entries.get(key)
            if entry is None or entry.version != version:
                entry = _Entry(num_samples, version)
                self._entries[key] = entry
            if not self._ensure_entry_data(
                key, entry, data.shape[1:], data.dtype, num_samples
            ):
                return False
            new = ~entry.filled[rows]
            if new.any():
                entry.data[rows[new]] = data[new]
                entry.filled[rows[new]] = True
            return True

    def adopt_entry(
        self, key: Hashable, version: int, data: np.ndarray, filled: np.ndarray
    ) -> bool:
        """Merge an exported entry into this cache; returns True if adopted.

        Stale versions are ignored.  When the key already exists only the
        rows this cache has not filled yet are copied, so a parent never
        overwrites activations it already holds (they are bit-identical by
        construction anyway).  The caller must own ``data`` exclusively
        (true for arrays received over a process boundary).
        """
        with self._lock:
            if version != self.version:
                return False
            entry = self._entries.get(key)
            if entry is None:
                if self.max_bytes is not None and data.nbytes > self.max_bytes:
                    return False
                self._evict_for(key, data.nbytes)
                entry = _Entry(len(filled), version)
                entry.data = data
                entry.filled = filled.copy()
                self._entries[key] = entry
                return True
            if entry.data is None:
                if self.max_bytes is not None and data.nbytes > self.max_bytes:
                    return False
                self._evict_for(key, data.nbytes)
                entry.data = data
                entry.filled = filled.copy()
                return True
            new_rows = filled & ~entry.filled
            if new_rows.any():
                entry.data[new_rows] = data[new_rows]
                entry.filled[new_rows] = True
            return True
