"""Frozen-prefix activation cache for cascade training.

During a module-m training stage, the cascade prefix (atoms before the
current module) is *frozen*: its parameters are fixed for the whole stage
and it always runs in eval mode, so the feature ``z_{m-1}`` it produces
for a given sample is a pure function of (prefix weights, sample).  The
seed implementation nevertheless re-ran ``model.forward_until`` for every
local-training batch — and client datasets are small enough that each
sample is revisited several times per round (multiple local epochs) and
again on every round the client is sampled.

:class:`PrefixCache` memoises those prefix forwards at *per-sample*
granularity, keyed by ``(client key, prefix length)``, so cache hits
survive the data loader's per-epoch reshuffling (batch composition
changes every epoch; sample identity does not).  Lookups return
bit-identical features to a fresh forward because every per-sample
computation in the substrate (im2col, batched matmul, eval-mode BN) is
independent of batch composition.

Invalidation is explicit and coarse: :meth:`PrefixCache.invalidate` drops
everything, and :class:`repro.core.prophet.FedProphet` calls it whenever
the global model advances a round.  That is conservative — the prefix is
frozen for the whole stage — but makes correctness trivially auditable.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional, Tuple

import numpy as np


class _Entry:
    """Lazily-allocated per-sample feature store for one (client, prefix)."""

    __slots__ = ("data", "filled")

    def __init__(self, num_samples: int):
        self.data: Optional[np.ndarray] = None
        self.filled = np.zeros(num_samples, dtype=bool)

    def nbytes(self) -> int:
        return int(self.data.nbytes) if self.data is not None else 0


class PrefixCache:
    """Keyed per-sample memoisation of frozen-prefix forward passes.

    Parameters
    ----------
    max_bytes:
        Soft capacity; when allocating a new entry would exceed it, the
        oldest entries are evicted first (insertion order).  ``None``
        means unbounded.
    """

    def __init__(self, max_bytes: Optional[int] = 512 * 1024 * 1024):
        self.max_bytes = max_bytes
        self._entries: Dict[Hashable, _Entry] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # -- bookkeeping -------------------------------------------------------
    def nbytes(self) -> int:
        return sum(e.nbytes() for e in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, float]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "entries": len(self._entries),
            "bytes": self.nbytes(),
            "invalidations": self.invalidations,
        }

    def invalidate(self) -> None:
        """Drop all cached activations (the global model advanced)."""
        self._entries.clear()
        self.invalidations += 1

    def _evict_for(self, key: Hashable, incoming_bytes: int) -> None:
        """Evict oldest entries (never ``key`` itself) to make room."""
        if self.max_bytes is None:
            return
        for victim in list(self._entries):
            if self.nbytes() + incoming_bytes <= self.max_bytes:
                break
            if victim != key:
                del self._entries[victim]

    # -- the lookup --------------------------------------------------------
    def fetch(
        self,
        key: Hashable,
        indices: np.ndarray,
        x: np.ndarray,
        forward_fn: Callable[[np.ndarray], np.ndarray],
        num_samples: int,
    ) -> np.ndarray:
        """Prefix features for dataset rows ``indices`` (inputs ``x``).

        Rows already cached under ``key`` are returned from the store;
        the rest are computed in one batched ``forward_fn`` call and
        cached.  The returned array is a fresh copy — callers may hand it
        to attacks that build perturbed views without aliasing the cache.
        """
        indices = np.asarray(indices)
        entry = self._entries.get(key)
        if entry is None:
            entry = _Entry(num_samples)
            self._entries[key] = entry
        missing = ~entry.filled[indices]
        if missing.any():
            z_new = forward_fn(x[missing] if not missing.all() else x)
            if entry.data is None:
                entry_bytes = z_new.dtype.itemsize * num_samples * int(
                    np.prod(z_new.shape[1:])
                )
                if self.max_bytes is not None and entry_bytes > self.max_bytes:
                    # One client's features alone exceed the budget: don't
                    # thrash everyone else's entries for a cache that can
                    # never be retained — just pass the computation through.
                    del self._entries[key]
                    self.misses += int(missing.sum())
                    if missing.all():
                        return z_new
                    raise AssertionError(
                        "uncacheable entry can only be partially filled if "
                        "it was previously stored"
                    )
                self._evict_for(key, entry_bytes)
                entry.data = np.empty((num_samples,) + z_new.shape[1:], dtype=z_new.dtype)
            rows = indices[missing]
            entry.data[rows] = z_new
            entry.filled[rows] = True
            self.misses += int(missing.sum())
        self.hits += int((~missing).sum())
        return entry.data[indices]
