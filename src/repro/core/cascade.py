"""Client-side adversarial cascade learning (paper §5, Eq. 9).

A client training module(s) ``m..M_k`` runs, per local iteration:

1. forward the clean batch through the *fixed* prefix (atoms before module
   m, eval mode) to get the input feature ``z_{m-1}``;
2. find an adversarial perturbation of that feature (ℓ2-PGD with budget
   ``ε_{m-1}`` from APA) — or of the raw image (ℓ∞, ε0) when m = 1 —
   maximising the strong-convexity-regularized early-exit loss;
3. one SGD step on the assigned segment and its auxiliary head against
   that loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.attacks.pgd import PGDConfig, pgd_attack
from repro.core.heads import AuxHead
from repro.core.prefix_cache import PrefixCache
from repro.data.dataset import ArrayDataset, DataLoader
from repro.models.atoms import CascadeModel
from repro.nn.grad_mode import attack_grad_scope
from repro.nn.losses import CrossEntropyLoss, log_softmax
from repro.nn.module import Module
from repro.optim.sgd import SGD


class CascadeLossModel:
    """Loss-and-input-gradient adapter for a module segment.

    With a head, evaluates Eq. 9's regularized early-exit loss

        l_m = CE(head(z_m), y) + (mu/2) ||z_m||^2,

    where ``z_m`` is the segment output; without a head (the last module,
    whose early-exit loss *is* the joint loss) it falls back to plain
    cross-entropy on the segment output.  Implements the interface
    :func:`repro.attacks.pgd.pgd_attack` consumes.  Backward passes
    accumulate segment/head parameter gradients; training loops zero them
    before the update pass.
    """

    def __init__(self, segment: Module, head: Optional[Module], mu: float):
        if mu < 0:
            raise ValueError("mu must be non-negative")
        self.segment = segment
        self.head = head
        self.mu = mu
        self._ce = CrossEntropyLoss()

    def logits(self, x: np.ndarray) -> np.ndarray:
        z = self.segment(x)
        return z if self.head is None else self.head(z)

    def loss(self, x: np.ndarray, y: np.ndarray) -> float:
        z = self.segment(x)
        if self.head is None:
            return self._ce(z, y)
        ce = self._ce(self.head(z), y)
        n = z.shape[0]
        reg = 0.5 * self.mu * float((z.reshape(n, -1) ** 2).sum()) / n
        return ce + reg

    def loss_and_input_grad(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        z = self.segment(x)
        n = z.shape[0]
        if self.head is None:
            loss = self._ce(z, y)
            g_z = self._ce.backward()
        else:
            logits = self.head(z)
            loss = self._ce(logits, y)
            reg = 0.5 * self.mu * float((z.reshape(n, -1) ** 2).sum()) / n
            loss += reg
            g_z = self.head.backward(self._ce.backward())
            if self.mu:
                g_z = g_z + (self.mu / n) * z
        return loss, self.segment.backward(g_z)

    def per_sample_losses(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        logits = self.logits(x)
        return -log_softmax(logits)[np.arange(len(y)), np.asarray(y)]


@dataclass
class CascadeBatchSpec:
    """Resolved training target for one client in one round."""

    start_atom: int  # first atom of the current module m
    stop_atom: int  # one past the last atom of the last assigned module M_k
    head: Optional[Module]  # aux head of module M_k (None when M_k is last)


def _attack_config(
    is_first_module: bool, eps0: float, eps_feature: float, steps: int
) -> PGDConfig:
    if is_first_module:
        return PGDConfig(eps=eps0, steps=steps, norm="linf", clip=(0.0, 1.0))
    return PGDConfig(eps=eps_feature, steps=steps, norm="l2", clip=None)


def cascade_local_train(
    model: CascadeModel,
    spec: CascadeBatchSpec,
    dataset: ArrayDataset,
    iterations: int,
    batch_size: int,
    lr: float,
    mu: float,
    eps0: float,
    eps_feature: float,
    attack_steps: int,
    momentum: float = 0.9,
    weight_decay: float = 1e-4,
    rng: Optional[np.random.Generator] = None,
    prefix_cache: Optional[PrefixCache] = None,
    cache_key: Optional[object] = None,
) -> float:
    """Run E local iterations of adversarial cascade training.

    Mutates the parameters of the assigned atoms and head in place (the
    caller snapshots/aggregates state dicts).  Returns the mean training
    loss.

    With a ``prefix_cache``, the eval-mode forward through the frozen
    prefix (atoms before ``spec.start_atom``) is memoised per sample under
    ``(cache_key, prefix length)`` — the caller is responsible for
    invalidating the cache whenever the global model changes.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    segment = model.segment(spec.start_atom, spec.stop_atom)
    # Prefix stays frozen in eval mode; the trained segment uses batch stats.
    model.eval()
    segment.train()
    if spec.head is not None:
        spec.head.train()

    params = segment.parameters()
    if spec.head is not None:
        params = params + spec.head.parameters()
    opt = SGD(params, lr=lr, momentum=momentum, weight_decay=weight_decay)
    loss_model = CascadeLossModel(segment, spec.head, mu)

    is_first = spec.start_atom == 0
    pgd = _attack_config(is_first, eps0, eps_feature, attack_steps)

    def prefix_forward(xb: np.ndarray) -> np.ndarray:
        # The frozen prefix is never backpropagated through: run it
        # input-grad-only so its layers skip weight-gradient caches.
        with attack_grad_scope():
            return model.forward_until(xb, spec.start_atom)

    loader = DataLoader(
        dataset, batch_size=min(batch_size, len(dataset)), shuffle=True, rng=rng
    )
    losses: List[float] = []
    batches = loader.infinite_with_indices()
    for _ in range(iterations):
        idx, x, y = next(batches)
        if is_first:
            z_in = x
        elif prefix_cache is not None:
            z_in = prefix_cache.fetch(
                (cache_key, spec.start_atom), idx, x, prefix_forward, len(dataset)
            )
        else:
            z_in = prefix_forward(x)
        z_adv = pgd_attack(loss_model, z_in, y, pgd, rng=rng)
        opt.zero_grad()  # discard gradients accumulated by the attack
        loss, _ = loss_model.loss_and_input_grad(z_adv, y)
        opt.step()
        losses.append(loss)
    model.eval()
    return float(np.mean(losses)) if losses else 0.0


def measure_output_perturbation(
    model: CascadeModel,
    start_atom: int,
    stop_atom: int,
    head: Optional[Module],
    dataset: ArrayDataset,
    mu: float,
    eps0: float,
    eps_feature: float,
    attack_steps: int,
    batch_size: int = 64,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """max over a local batch of ‖Δz_m‖₂ (the statistic APA averages, Eq. 11).

    Attacks the module's input exactly as training does and measures the
    resulting displacement of the module's *output* feature.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    model.eval()
    segment = model.segment(start_atom, stop_atom)
    loss_model = CascadeLossModel(segment, head, mu)
    is_first = start_atom == 0
    pgd = _attack_config(is_first, eps0, eps_feature, attack_steps)

    n = min(batch_size, len(dataset))
    idx = rng.choice(len(dataset), size=n, replace=False)
    x, y = dataset.x[idx], dataset.y[idx]
    with attack_grad_scope():
        z_in = x if is_first else model.forward_until(x, start_atom)
    z_adv_in = pgd_attack(loss_model, z_in, y, pgd, rng=rng)
    with attack_grad_scope():
        z = segment(z_in)
        z_adv = segment(z_adv_in)
    diff = (z_adv - z).reshape(n, -1)
    return float(np.sqrt((diff**2).sum(axis=1)).max())
