"""Auxiliary output models θ_m for cascade learning.

The paper's auxiliary model is "a linear layer (i.e., a fully connected
layer)" (§5.1).  For convolutional features, cascade-learning practice
(Belilovsky et al., 2020) — and the paper's own Table 7–8 memory numbers,
which leave no room for a dense 51M-parameter head on early ResNet
features — pools spatially before the linear layer.  ``AuxHead`` therefore
applies global average pooling to 4-D features and a plain linear map to
flat ones.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.linear import Linear
from repro.nn.module import Module


def head_input_dim(feature_shape: Tuple[int, ...]) -> int:
    """Input width of the aux head for a feature of the given shape.

    Conv features (C, H, W) are pooled to C channels; flat features pass
    through unchanged.
    """
    if len(feature_shape) == 3:
        return feature_shape[0]
    return int(np.prod(feature_shape))


class AuxHead(Module):
    """Global-average-pool (for conv features) + linear classifier.

    ``backward`` returns the gradient w.r.t. the *unpooled* input feature,
    which the cascade trainer backpropagates into the module; the linear
    layer's parameter gradients accumulate as usual.
    """

    def __init__(
        self,
        feature_shape: Tuple[int, ...],
        num_classes: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.feature_shape = tuple(feature_shape)
        self.pooled = len(self.feature_shape) == 3
        self.linear = Linear(head_input_dim(self.feature_shape), num_classes, rng=rng)

    @property
    def in_features(self) -> int:
        return self.linear.in_features

    @property
    def out_features(self) -> int:
        return self.linear.out_features

    def forward(self, z: np.ndarray) -> np.ndarray:
        if self.pooled:
            if z.ndim != 4:
                raise ValueError(f"expected 4-D conv feature, got shape {z.shape}")
            self._spatial = z.shape[2:]
            pooled = z.mean(axis=(2, 3))
        else:
            pooled = z.reshape(z.shape[0], -1)
            self._flat_shape = z.shape
        return self.linear(pooled)

    def backward(self, grad_logits: np.ndarray) -> np.ndarray:
        g = self.linear.backward(grad_logits)
        if self.pooled:
            h, w = self._spatial
            g = g[:, :, None, None] / float(h * w)
            return np.broadcast_to(
                g, (g.shape[0], g.shape[1], h, w)
            ).copy()
        return g.reshape(self._flat_shape)
