"""FedProphet hyperparameters (paper §B.4 defaults)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.flsim.base import FLConfig


@dataclass
class FedProphetConfig(FLConfig):
    """Extends the shared FL config with FedProphet's knobs.

    Attributes
    ----------
    mu:
        Strong-convexity coefficient of the early-exit loss (Eq. 9);
        the paper's optimum is 1e-5 (Fig. 8).
    gamma / delta_alpha / alpha_init:
        APA threshold, step, and initial scaling factor (Eq. 12, §7.3).
    r_min_bytes / r_min_fraction:
        Minimal reserved memory for the partitioner; if ``r_min_bytes`` is
        None it is ``r_min_fraction`` of the full-model requirement (the
        paper uses ~20 %).
    rounds_per_module / patience:
        Per-module round cap (500 in the paper) and early-stop patience
        (50 rounds without validation-accuracy improvement).
    use_apa / use_dma:
        Ablation switches (Table 3).
    use_prefix_cache:
        Memoise frozen-prefix activations per (client, sample).  The cache
        is version-keyed on the module *stage*: aggregation during a stage
        only rewrites atoms at or after the current module, so entries stay
        valid across the stage's rounds and clients re-sampled in later
        rounds hit instead of re-forwarding the prefix.  Pure
        execution-engine optimisation: results are bit-identical with the
        cache on or off.
    executor_backend / round_parallelism:
        Inherited from :class:`~repro.flsim.base.FLConfig` — run each
        round's clients as parallel work units (``serial``/``thread``/
        ``process``) with bit-identical results across backends.
    feature_pgd_steps:
        PGD steps for the inner maximisation on intermediate features
        (defaults to ``train_pgd_steps``).
    """

    mu: float = 1e-5
    gamma: float = 0.05
    delta_alpha: float = 0.1
    alpha_init: float = 0.3
    alpha_min: float = 0.05
    alpha_max: float = 2.0
    r_min_bytes: Optional[int] = None
    r_min_fraction: float = 0.2
    rounds_per_module: int = 500
    patience: int = 50
    use_apa: bool = True
    use_dma: bool = True
    use_prefix_cache: bool = True
    val_samples: int = 128
    val_pgd_steps: int = 10
    feature_pgd_steps: Optional[int] = None

    def __post_init__(self):
        super().__post_init__()
        if self.mu < 0:
            raise ValueError("mu must be non-negative")
        if not (0 < self.r_min_fraction <= 1):
            raise ValueError("r_min_fraction must be in (0, 1]")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")

    @property
    def attack_steps_features(self) -> int:
        return (
            self.feature_pgd_steps
            if self.feature_pgd_steps is not None
            else self.train_pgd_steps
        )
