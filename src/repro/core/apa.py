"""Adaptive Perturbation Adjustment (paper §6.2, Eq. 11–12).

The perturbation budget for training module m is

    ε_{m-1}(t) = α_{m-1}(t) · E[ max_{‖δ_{m-2}‖ ≤ ε*_{m-2}} ‖Δz_{m-1}‖ ]

where the expectation is the average of the max output displacements the
clients reported when module m−1 was fixed.  The scaling factor α is nudged
up when the clean/adversarial accuracy ratio of the current cascade exceeds
(1+γ)× the fixed ratio of the previous module (robustness lagging), and
down in the symmetric case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class AdaptivePerturbationAdjustment:
    """Tracks α for the module currently being trained.

    ``start_module`` arms the controller with the base magnitude (average
    max ‖Δz‖ collected from clients) and the previous module's final
    clean/adv accuracies; ``update`` applies Eq. 12 once per round.
    """

    gamma: float = 0.05
    delta_alpha: float = 0.1
    alpha_init: float = 0.3
    alpha_min: float = 0.05
    alpha_max: float = 2.0
    enabled: bool = True

    alpha: float = field(init=False, default=0.3)
    base_magnitude: float = field(init=False, default=0.0)
    prev_ratio: Optional[float] = field(init=False, default=None)
    history: List[float] = field(init=False, default_factory=list)

    def __post_init__(self):
        if not (0 < self.gamma < 1):
            raise ValueError("gamma must be in (0, 1)")
        if self.delta_alpha <= 0:
            raise ValueError("delta_alpha must be positive")
        self.alpha = self.alpha_init

    def start_module(
        self,
        base_magnitude: float,
        prev_clean_acc: float,
        prev_adv_acc: float,
    ) -> None:
        """Arm the controller for a new module's training stage."""
        if base_magnitude < 0:
            raise ValueError("base_magnitude must be non-negative")
        self.base_magnitude = base_magnitude
        self.alpha = self.alpha_init
        self.prev_ratio = _safe_ratio(prev_clean_acc, prev_adv_acc)
        self.history.clear()

    @property
    def epsilon(self) -> float:
        """Current ℓ2 budget for the intermediate-feature perturbation."""
        return self.alpha * self.base_magnitude

    def update(self, clean_acc: float, adv_acc: float) -> float:
        """Apply Eq. 12 given this round's validation accuracies."""
        self.history.append(self.epsilon)
        if not self.enabled or self.prev_ratio is None:
            return self.epsilon
        ratio = _safe_ratio(clean_acc, adv_acc)
        if ratio > (1 + self.gamma) * self.prev_ratio:
            self.alpha = min(self.alpha + self.delta_alpha, self.alpha_max)
        elif ratio < (1 - self.gamma) * self.prev_ratio:
            self.alpha = max(self.alpha - self.delta_alpha, self.alpha_min)
        return self.epsilon


def _safe_ratio(clean_acc: float, adv_acc: float) -> float:
    """clean/adv accuracy ratio, guarded against a zero denominator."""
    return clean_acc / max(adv_acc, 1e-6)
