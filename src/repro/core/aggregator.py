"""Partial-average aggregation of modules and auxiliary heads (Eq. 16–17).

With DMA, different clients return different module spans.  Module n is
averaged over the clients who trained it (those with M_k ≥ n), weighted by
local data size; head n is averaged over the clients whose *last* module
was n (M_k = n), since only they trained that head.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.partitioner import Partition
from repro.flsim.aggregation import weighted_average_states
from repro.models.atoms import CascadeModel
from repro.nn.module import Module

StateDict = Dict[str, np.ndarray]


def atom_param_names(model: CascadeModel, start: int, stop: int) -> List[str]:
    """State-dict keys (params + buffers) of atoms [start, stop)."""
    names: List[str] = []
    for i in range(start, stop):
        prefix = f"atom{i}."
        atom = model.atoms[i].module
        names.extend(prefix + n for n, _ in atom.named_parameters())
        names.extend(prefix + n for n, _ in atom.named_buffers())
    return names


def snapshot_segment(model: CascadeModel, start: int, stop: int) -> StateDict:
    """Copy the state (params + buffers) of atoms [start, stop) out of the model.

    Walks the atom modules directly instead of materialising the full
    ``state_dict`` — the per-client round loop snapshots and extracts only
    the trained segment, so the frozen prefix is never copied.
    """
    if not (0 <= start <= stop <= len(model.atoms)):
        raise IndexError(f"invalid atom range [{start}, {stop})")
    out: StateDict = {}
    for i in range(start, stop):
        prefix = f"atom{i}."
        atom = model.atoms[i].module
        for n, p in atom.named_parameters():
            out[prefix + n] = p.data.copy()
        for n, b in atom.named_buffers():
            out[prefix + n] = b.copy()
    return out


def restore_segment(
    model: CascadeModel, segment_state: StateDict, start: int, stop: int
) -> None:
    """Write a :func:`snapshot_segment` back into atoms [start, stop) in place.

    ``segment_state`` may cover a superset of the range (e.g. a round-level
    snapshot of the whole trainable suffix restored before each client).
    """
    if not (0 <= start <= stop <= len(model.atoms)):
        raise IndexError(f"invalid atom range [{start}, {stop})")
    for i in range(start, stop):
        prefix = f"atom{i}."
        atom = model.atoms[i].module
        for n, p in atom.named_parameters():
            p.data[...] = segment_state[prefix + n]
        for name, (owner, local) in atom._buffer_owners(prefix).items():
            owner.set_buffer(local, segment_state[name].copy())


#: Historical name for :func:`snapshot_segment` (pre-round-engine API).
extract_segment_state = snapshot_segment


def aggregate_modules(
    model: CascadeModel,
    partition: Partition,
    current_module: int,
    client_states: Sequence[StateDict],
    client_assignments: Sequence[int],
    client_weights: Sequence[float],
) -> StateDict:
    """Eq. 16: per-module weighted average over the clients that trained it.

    ``client_states`` hold each client's trained-segment state (atoms of
    modules ``current_module..M_k``).  Returns the updated global state for
    every touched key; untouched keys are absent (keep previous values).
    """
    if not (len(client_states) == len(client_assignments) == len(client_weights)):
        raise ValueError("client lists must have equal length")
    out: StateDict = {}
    num_modules = len(partition)
    for n in range(current_module, num_modules):
        trainers = [
            (state, w)
            for state, mk, w in zip(client_states, client_assignments, client_weights)
            if mk >= n
        ]
        if not trainers:
            continue
        start, stop = partition[n]
        keys = atom_param_names(model, start, stop)
        out.update(
            weighted_average_states(
                [state for state, _ in trainers],
                [w for _, w in trainers],
                keys=keys,
            )
        )
    return out


def aggregate_heads(
    heads: Sequence[Optional[Module]],
    client_head_states: Sequence[Optional[StateDict]],
    client_assignments: Sequence[int],
    client_weights: Sequence[float],
) -> None:
    """Eq. 17: average head n over clients with M_k = n, in place."""
    for n, head in enumerate(heads):
        if head is None:
            continue
        trainers = [
            (state, w)
            for state, mk, w in zip(client_head_states, client_assignments, client_weights)
            if mk == n and state is not None
        ]
        if not trainers:
            continue
        merged = weighted_average_states(
            [state for state, _ in trainers], [w for _, w in trainers]
        )
        head.load_state_dict(merged)
