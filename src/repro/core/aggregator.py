"""Partial-average aggregation of modules and auxiliary heads (Eq. 16–17).

With DMA, different clients return different module spans.  Module n is
averaged over the clients who trained it (those with M_k ≥ n), weighted by
local data size; head n is averaged over the clients whose *last* module
was n (M_k = n), since only they trained that head.

The module also owns the server-side weight-publication and asynchronous
merge primitives of the unified task scheduler:

* :func:`publish_snapshot` — double-buffered global weights: an immutable
  (read-only arrays) copy of the model state that concurrent evaluation
  shards read while the live model trains the next round;
* :func:`async_merge_schedule` / :func:`merge_async_update` —
  staleness-bounded asynchronous aggregation: client updates merge into a
  server state dict in (simulated) arrival order, each merge event
  attenuated by its staleness, with the bound enforced by coalescing the
  tail of a round into the last permitted event.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.partitioner import Partition
from repro.flsim.aggregation import weighted_average_states
from repro.models.atoms import CascadeModel
from repro.nn.module import Module

StateDict = Dict[str, np.ndarray]


def atom_param_names(model: CascadeModel, start: int, stop: int) -> List[str]:
    """State-dict keys (params + buffers) of atoms [start, stop)."""
    names: List[str] = []
    for i in range(start, stop):
        prefix = f"atom{i}."
        atom = model.atoms[i].module
        names.extend(prefix + n for n, _ in atom.named_parameters())
        names.extend(prefix + n for n, _ in atom.named_buffers())
    return names


def snapshot_segment(model: CascadeModel, start: int, stop: int) -> StateDict:
    """Copy the state (params + buffers) of atoms [start, stop) out of the model.

    Walks the atom modules directly instead of materialising the full
    ``state_dict`` — the per-client round loop snapshots and extracts only
    the trained segment, so the frozen prefix is never copied.
    """
    if not (0 <= start <= stop <= len(model.atoms)):
        raise IndexError(f"invalid atom range [{start}, {stop})")
    out: StateDict = {}
    for i in range(start, stop):
        prefix = f"atom{i}."
        atom = model.atoms[i].module
        for n, p in atom.named_parameters():
            out[prefix + n] = p.data.copy()
        for n, b in atom.named_buffers():
            out[prefix + n] = b.copy()
    return out


def restore_segment(
    model: CascadeModel, segment_state: StateDict, start: int, stop: int
) -> None:
    """Write a :func:`snapshot_segment` back into atoms [start, stop) in place.

    ``segment_state`` may cover a superset of the range (e.g. a round-level
    snapshot of the whole trainable suffix restored before each client).
    """
    if not (0 <= start <= stop <= len(model.atoms)):
        raise IndexError(f"invalid atom range [{start}, {stop})")
    for i in range(start, stop):
        prefix = f"atom{i}."
        atom = model.atoms[i].module
        for n, p in atom.named_parameters():
            p.data[...] = segment_state[prefix + n]
        for name, (owner, local) in atom._buffer_owners(prefix).items():
            owner.set_buffer(local, segment_state[name].copy())


#: Historical name for :func:`snapshot_segment` (pre-round-engine API).
extract_segment_state = snapshot_segment


def aggregate_modules(
    model: CascadeModel,
    partition: Partition,
    current_module: int,
    client_states: Sequence[StateDict],
    client_assignments: Sequence[int],
    client_weights: Sequence[float],
) -> StateDict:
    """Eq. 16: per-module weighted average over the clients that trained it.

    ``client_states`` hold each client's trained-segment state (atoms of
    modules ``current_module..M_k``).  Returns the updated global state for
    every touched key; untouched keys are absent (keep previous values).
    """
    if not (len(client_states) == len(client_assignments) == len(client_weights)):
        raise ValueError("client lists must have equal length")
    out: StateDict = {}
    num_modules = len(partition)
    for n in range(current_module, num_modules):
        trainers = [
            (state, w)
            for state, mk, w in zip(client_states, client_assignments, client_weights)
            if mk >= n
        ]
        if not trainers:
            continue
        start, stop = partition[n]
        keys = atom_param_names(model, start, stop)
        out.update(
            weighted_average_states(
                [state for state, _ in trainers],
                [w for _, w in trainers],
                keys=keys,
            )
        )
    return out


def aggregate_heads(
    heads: Sequence[Optional[Module]],
    client_head_states: Sequence[Optional[StateDict]],
    client_assignments: Sequence[int],
    client_weights: Sequence[float],
) -> None:
    """Eq. 17: average head n over clients with M_k = n, in place."""
    for n, head in enumerate(heads):
        if head is None:
            continue
        trainers = [
            (state, w)
            for state, mk, w in zip(client_head_states, client_assignments, client_weights)
            if mk == n and state is not None
        ]
        if not trainers:
            continue
        merged = weighted_average_states(
            [state for state, _ in trainers], [w for _, w in trainers]
        )
        head.load_state_dict(merged)


# ---------------------------------------------------------------------------
# Double-buffered weight publication (eval/training overlap)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PublishedWeights:
    """An immutable, versioned view of the global weights.

    ``state`` maps every state-dict key to a **read-only** array copy, so
    evaluation shards for round *r* can keep reading it while the live
    model already trains round *r+1* — the double-buffer that makes
    eval/training overlap race-free.  Loading it into a replica is
    bit-identical to loading the live state dict at publication time.
    """

    version: int
    state: Mapping[str, np.ndarray]


def publish_snapshot(model: Module, version: int = 0) -> PublishedWeights:
    """Publish the model's current weights as an immutable snapshot."""
    state: StateDict = {}
    for key, value in model.state_dict().items():  # state_dict already copies
        value.flags.writeable = False
        state[key] = value
    return PublishedWeights(version=version, state=MappingProxyType(state))


# ---------------------------------------------------------------------------
# Staleness-bounded asynchronous aggregation
# ---------------------------------------------------------------------------


def async_merge_schedule(num_updates: int, max_staleness: int) -> List[List[int]]:
    """Group arrival positions into merge events respecting the bound.

    The server merges client updates one event at a time in arrival
    order; an update merged by event *k* has staleness *k* (the number of
    merge events applied to the server since the update's round-start
    base).  The schedule keeps early arrivals as singleton events and
    coalesces the tail of the round into the last event the bound allows,
    so every update's staleness is ≤ ``max_staleness``.  With
    ``max_staleness=0`` the whole round coalesces into one event —
    synchronous FedAvg.
    """
    if num_updates < 0:
        raise ValueError("num_updates must be >= 0")
    if max_staleness < 0:
        raise ValueError("max_staleness must be >= 0")
    if num_updates == 0:
        return []
    cut = min(num_updates, max_staleness + 1)
    events = [[i] for i in range(cut)]
    events[-1].extend(range(cut, num_updates))
    return events


def merge_async_update(
    server: StateDict,
    states: Sequence[StateDict],
    weights: Sequence[float],
    round_weight: float,
    staleness: int,
) -> float:
    """Merge one event's client updates into ``server`` in place (FedAsync).

    The event's updates are weighted-averaged, then mixed into the server
    state with rate ``alpha = (event weight / round weight) / (1 +
    staleness)`` — the polynomial staleness attenuation of FedAsync (Xie
    et al., 2019).  ``alpha == 1`` (a single event carrying the whole
    round at staleness 0) replaces the server state outright, making the
    ``max_staleness=0`` schedule bit-identical to synchronous FedAvg.
    Returns the applied mixing rate.
    """
    if round_weight <= 0:
        raise ValueError("round_weight must be positive")
    merged = weighted_average_states(states, weights)
    alpha = (float(sum(weights)) / round_weight) / (1.0 + staleness)
    if alpha >= 1.0:
        for key, value in merged.items():
            server[key] = value
        return 1.0
    for key, value in merged.items():
        server[key] = server[key] + alpha * (value - server[key])
    return alpha
