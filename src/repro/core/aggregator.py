"""Partial-average aggregation of modules and auxiliary heads (Eq. 16–17).

With DMA, different clients return different module spans.  Module n is
averaged over the clients who trained it (those with M_k ≥ n), weighted by
local data size; head n is averaged over the clients whose *last* module
was n (M_k = n), since only they trained that head.

The module also owns the server-side weight-publication and asynchronous
merge primitives of the unified task scheduler:

* :func:`publish_snapshot` — double-buffered global weights: an immutable
  (read-only arrays), versioned copy of a model state — or of an async
  server state dict — that concurrent evaluation shards read while the
  live model trains the next round;
* :func:`async_merge_schedule` / :func:`merge_async_update` /
  :func:`merge_async_partial` — staleness-bounded asynchronous
  aggregation: client updates merge into a server state dict in
  (simulated) arrival order, each merge event attenuated by its
  staleness, with the intra-round bound enforced by coalescing the tail
  of a round into the last permitted event.  ``merge_async_partial`` is
  the FedProphet flavour: Eq. 16/17 partial averages applied per module
  span (and per head) with the same ``1/(1+s)`` attenuation.

Determinism contract: every function here is a pure (or in-place but
order-fixed) computation over its arguments — no wall-clock, RNG, or
scheduling input — so merge replays driven by *simulated* arrival order
produce bit-identical server states on any backend at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.partitioner import Partition
from repro.flsim.aggregation import weighted_average_states
from repro.models.atoms import CascadeModel
from repro.nn.module import Module

StateDict = Dict[str, np.ndarray]


def atom_param_names(model: CascadeModel, start: int, stop: int) -> List[str]:
    """State-dict keys (params + buffers) of atoms [start, stop).

    Deterministic key order (atom index, then declaration order), which
    fixes the reduction order of every average built from these lists.
    """
    names: List[str] = []
    for i in range(start, stop):
        prefix = f"atom{i}."
        atom = model.atoms[i].module
        names.extend(prefix + n for n, _ in atom.named_parameters())
        names.extend(prefix + n for n, _ in atom.named_buffers())
    return names


def snapshot_segment(model: CascadeModel, start: int, stop: int) -> StateDict:
    """Copy the state (params + buffers) of atoms [start, stop) out of the model.

    Walks the atom modules directly instead of materialising the full
    ``state_dict`` — the per-client round loop snapshots and extracts only
    the trained segment, so the frozen prefix is never copied.
    """
    if not (0 <= start <= stop <= len(model.atoms)):
        raise IndexError(f"invalid atom range [{start}, {stop})")
    out: StateDict = {}
    for i in range(start, stop):
        prefix = f"atom{i}."
        atom = model.atoms[i].module
        for n, p in atom.named_parameters():
            out[prefix + n] = p.data.copy()
        for n, b in atom.named_buffers():
            out[prefix + n] = b.copy()
    return out


def restore_segment(
    model: CascadeModel, segment_state: StateDict, start: int, stop: int
) -> None:
    """Write a :func:`snapshot_segment` back into atoms [start, stop) in place.

    ``segment_state`` may cover a superset of the range (e.g. a round-level
    snapshot of the whole trainable suffix restored before each client).
    """
    if not (0 <= start <= stop <= len(model.atoms)):
        raise IndexError(f"invalid atom range [{start}, {stop})")
    for i in range(start, stop):
        prefix = f"atom{i}."
        atom = model.atoms[i].module
        for n, p in atom.named_parameters():
            p.data[...] = segment_state[prefix + n]
        for name, (owner, local) in atom._buffer_owners(prefix).items():
            owner.set_buffer(local, segment_state[name].copy())


#: Historical name for :func:`snapshot_segment` (pre-round-engine API).
extract_segment_state = snapshot_segment


def aggregate_modules(
    model: CascadeModel,
    partition: Partition,
    current_module: int,
    client_states: Sequence[StateDict],
    client_assignments: Sequence[int],
    client_weights: Sequence[float],
    average_fn: Optional[Callable] = None,
) -> StateDict:
    """Eq. 16: per-module weighted average over the clients that trained it.

    ``client_states`` hold each client's trained-segment state (atoms of
    modules ``current_module..M_k``).  Returns the updated global state for
    every touched key; untouched keys are absent (keep previous values).
    Pure function of its arguments; trainers reduce in client-list order,
    so the merged floats are identical on every backend.

    ``average_fn(states, weights, keys, base)`` overrides the per-module
    merge rule (the robust-aggregation hook; ``base`` is the module
    span's current state, snapshotted from ``model``).  The default is
    the plain :func:`weighted_average_states`.
    """
    if not (len(client_states) == len(client_assignments) == len(client_weights)):
        raise ValueError("client lists must have equal length")
    out: StateDict = {}
    num_modules = len(partition)
    for n in range(current_module, num_modules):
        trainers = [
            (state, w)
            for state, mk, w in zip(client_states, client_assignments, client_weights)
            if mk >= n
        ]
        if not trainers:
            continue
        start, stop = partition[n]
        keys = atom_param_names(model, start, stop)
        states = [state for state, _ in trainers]
        weights = [w for _, w in trainers]
        if average_fn is None:
            out.update(weighted_average_states(states, weights, keys=keys))
        else:
            base = snapshot_segment(model, start, stop)
            out.update(average_fn(states, weights, keys, base))
    return out


def aggregate_heads(
    heads: Sequence[Optional[Module]],
    client_head_states: Sequence[Optional[StateDict]],
    client_assignments: Sequence[int],
    client_weights: Sequence[float],
) -> None:
    """Eq. 17: average head n over clients with M_k = n, in place.

    Trainers reduce in client-list order (same determinism contract as
    :func:`aggregate_modules`).
    """
    for n, head in enumerate(heads):
        if head is None:
            continue
        trainers = [
            (state, w)
            for state, mk, w in zip(client_head_states, client_assignments, client_weights)
            if mk == n and state is not None
        ]
        if not trainers:
            continue
        merged = weighted_average_states(
            [state for state, _ in trainers], [w for _, w in trainers]
        )
        head.load_state_dict(merged)


# ---------------------------------------------------------------------------
# Double-buffered weight publication (eval/training overlap)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PublishedWeights:
    """An immutable, versioned view of the global weights.

    ``state`` maps every state-dict key to a **read-only** array copy, so
    evaluation shards for round *r* can keep reading it while the live
    model already trains round *r+1* — the double-buffer that makes
    eval/training overlap race-free.  Loading it into a replica is
    bit-identical to loading the live state dict at publication time.
    ``version`` identifies *which* weights were published: the round index
    for synchronous overlap, or the server merge-event count for the
    cross-round async pipeline (every merge bumps the server version, so
    two snapshots with equal versions hold bit-identical state).
    """

    version: int
    state: Mapping[str, np.ndarray]


def publish_snapshot(source, version: int = 0) -> PublishedWeights:
    """Publish weights as an immutable, versioned snapshot.

    ``source`` is either a :class:`~repro.nn.module.Module` (its
    ``state_dict()`` is taken, which already copies) or a plain state
    dict — e.g. the async pipeline's live server state, which keeps
    mutating under later merge events and is therefore copied here.
    Deterministic: the snapshot is a pure copy of the source at call
    time; nothing about scheduling or backends can leak into it.
    """
    state: StateDict = {}
    is_module = hasattr(source, "state_dict")
    items = source.state_dict() if is_module else source
    for key, value in dict(items).items():
        # state_dict() already copies; a raw mapping must be copied here.
        copy = value if is_module else np.array(value, copy=True)
        copy.flags.writeable = False
        state[key] = copy
    return PublishedWeights(version=version, state=MappingProxyType(state))


# ---------------------------------------------------------------------------
# Staleness-bounded asynchronous aggregation
# ---------------------------------------------------------------------------


def async_merge_schedule(num_updates: int, max_staleness: int) -> List[List[int]]:
    """Group arrival positions into merge events respecting the bound.

    The server merges client updates one event at a time in arrival
    order; an update merged by event *k* has intra-round staleness *k*
    (the number of this round's merge events applied to the server since
    the update's round-start base).  The schedule keeps early arrivals as
    singleton events and coalesces the tail of the round into the last
    event the bound allows, so every update's intra-round staleness is ≤
    ``max_staleness``.  With ``max_staleness=0`` the whole round
    coalesces into one event — synchronous FedAvg.  Pure function of its
    two integers; the caller maps positions to clients via the simulated
    arrival order, keeping the whole schedule backend-independent.
    """
    if num_updates < 0:
        raise ValueError("num_updates must be >= 0")
    if max_staleness < 0:
        raise ValueError("max_staleness must be >= 0")
    if num_updates == 0:
        return []
    cut = min(num_updates, max_staleness + 1)
    events = [[i] for i in range(cut)]
    events[-1].extend(range(cut, num_updates))
    return events


def blend_into(server: StateDict, merged: StateDict, alpha: float) -> float:
    """Mix ``merged`` into ``server`` in place with rate ``alpha``.

    ``alpha >= 1`` replaces the touched keys outright (the exact-sync
    degenerate case); otherwise ``server <- server + alpha * (merged -
    server)``.  Only keys present in ``merged`` are touched.  In-place
    but order-fixed: replaying the same blend sequence reproduces the
    same server state bit for bit.  Returns the applied rate (clamped to
    1.0 on the replace path).
    """
    if alpha >= 1.0:
        for key, value in merged.items():
            server[key] = value
        return 1.0
    for key, value in merged.items():
        server[key] = server[key] + alpha * (value - server[key])
    return alpha


def merge_async_update(
    server: StateDict,
    states: Sequence[StateDict],
    weights: Sequence[float],
    round_weight: float,
    staleness: int,
    keys: Optional[Sequence[str]] = None,
) -> float:
    """Merge one event's client updates into ``server`` in place (FedAsync).

    The event's updates are weighted-averaged, then mixed into the server
    state with rate ``alpha = (event weight / round weight) / (1 +
    staleness)`` — the polynomial staleness attenuation of FedAsync (Xie
    et al., 2019).  ``alpha == 1`` (a single event carrying the whole
    round at staleness 0) replaces the server state outright, making the
    ``max_staleness=0`` schedule bit-identical to synchronous FedAvg.
    ``keys`` restricts the merge to a subset of state-dict keys (FedRBN
    merges its dual-BN statistics under a separate rule).  Returns the
    applied mixing rate.  Pure function of its arguments, so a replay in
    simulated-arrival order is backend- and worker-count-independent.
    """
    if round_weight <= 0:
        raise ValueError("round_weight must be positive")
    merged = weighted_average_states(states, weights, keys=keys)
    alpha = (float(sum(weights)) / round_weight) / (1.0 + staleness)
    return blend_into(server, merged, alpha)


def merge_async_partial(
    model: CascadeModel,
    partition: Partition,
    current_module: int,
    server_seg: StateDict,
    server_heads: Sequence[Optional[StateDict]],
    member_states: Sequence[StateDict],
    member_head_states: Sequence[Optional[StateDict]],
    member_assignments: Sequence[int],
    member_weights: Sequence[float],
    module_round_weights: Sequence[float],
    head_round_weights: Sequence[float],
    staleness: int,
    average_fn: Optional[Callable] = None,
) -> float:
    """One async merge event of FedProphet's partial average (Eq. 16/17).

    Each module span ``n >= current_module`` averages over the event
    members that trained it (``M_k >= n``, Eq. 16) and blends into
    ``server_seg`` with its own per-module rate ``alpha_n = (event
    trainer weight of module n / round trainer weight of module n) /
    (1 + staleness)``; head ``n`` does the same over members with
    ``M_k == n`` (Eq. 17) into ``server_heads[n]`` in place.  Modules and
    heads no event member trained are untouched.  With a single event
    carrying the whole round at staleness 0 every applied rate is exactly
    1, reproducing the synchronous :func:`aggregate_modules` /
    :func:`aggregate_heads` result bit for bit.  Deterministic: a pure
    in-place replay over simulated-arrival events — no backend or worker
    count can change the result.  Returns the largest applied rate (0.0
    when the event touched nothing).

    ``average_fn(states, weights, keys, base)`` overrides the per-module
    merge rule (the robust-aggregation hook; ``base`` is the module
    span's current server state, so ``norm_clip`` bounds displacement
    where the stale update actually lands).  Heads keep the plain
    weighted average — they merge over ``M_k == n`` members only, a
    cohort usually too small for a robust statistic to be meaningful.
    """
    if not (
        len(member_states)
        == len(member_head_states)
        == len(member_assignments)
        == len(member_weights)
    ):
        raise ValueError("member lists must have equal length")
    applied = [0.0]
    num_modules = len(partition)
    for n in range(current_module, num_modules):
        trainers = [
            (state, w)
            for state, mk, w in zip(member_states, member_assignments, member_weights)
            if mk >= n
        ]
        if not trainers or module_round_weights[n] <= 0:
            continue
        start, stop = partition[n]
        keys = atom_param_names(model, start, stop)
        states = [state for state, _ in trainers]
        weights = [w for _, w in trainers]
        if average_fn is None:
            merged = weighted_average_states(states, weights, keys=keys)
        else:
            base = {key: server_seg[key] for key in keys}
            merged = average_fn(states, weights, keys, base)
        event_weight = float(sum(weights))
        alpha = (event_weight / module_round_weights[n]) / (1.0 + staleness)
        applied.append(blend_into(server_seg, merged, alpha))
    for n, head_state in enumerate(server_heads):
        if head_state is None or head_round_weights[n] <= 0:
            continue
        trainers = [
            (state, w)
            for state, mk, w in zip(
                member_head_states, member_assignments, member_weights
            )
            if mk == n and state is not None
        ]
        if not trainers:
            continue
        merged = weighted_average_states(
            [state for state, _ in trainers], [w for _, w in trainers]
        )
        event_weight = float(sum(w for _, w in trainers))
        alpha = (event_weight / head_round_weights[n]) / (1.0 + staleness)
        applied.append(blend_into(head_state, merged, alpha))
    return max(applied)
