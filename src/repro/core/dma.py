"""Differentiated Module Assignment (paper §6.3, Eq. 14–15).

"Prophet" clients with spare resources train extra future modules jointly.
Client k is assigned modules ``m..M_k`` with the largest ``M_k`` satisfying

* memory:  MemReq(w_m ∘ … ∘ w_{M_k} ∘ θ_{M_k}) ≤ R_k(t)          (Eq. 14)
* FLOPs:   FLOPs(w_m ∘ … ∘ w_{M_k} ∘ θ_{M_k})
              ≤ (P_k(t) / P_min(t)) · FLOPs(w_m)                   (Eq. 15)

The FLOPs bound caps every client's local-training time at the slowest
client's single-module time, so DMA never inflates the synchronous round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.partitioner import Partition, aux_head_bytes, segment_mem_bytes
from repro.hardware.devices import DeviceState
from repro.hardware.memory import MemoryModel
from repro.hardware.profile import profile_module
from repro.models.atoms import CascadeModel


@dataclass(frozen=True)
class SegmentCost:
    """Static cost of training a module span [module_a .. module_b]."""

    mem_bytes: int
    flops_fwd: int  # forward FLOPs per sample, incl. the aux head


class SegmentCostTable:
    """Precomputed MemReq/FLOPs for every contiguous module span.

    The table is O(M²) entries, each computed analytically, so building it
    once per experiment is cheap even for paper-scale models.
    """

    def __init__(self, model: CascadeModel, partition: Partition, mem: MemoryModel):
        self.partition = partition
        self._costs: Dict[Tuple[int, int], SegmentCost] = {}
        num_modules = len(partition)
        for a in range(num_modules):
            start = partition[a][0]
            for b in range(a, num_modules):
                stop = partition[b][1]
                seg = model.segment(start, stop)
                in_shape = model.feature_shape(start - 1)
                prof = profile_module(seg, in_shape)
                flops = prof.flops
                if stop < len(model.atoms):
                    from repro.core.heads import head_input_dim

                    head_dim = head_input_dim(model.feature_shape(stop - 1))
                    flops += 2 * head_dim * model.num_classes
                mem_b = segment_mem_bytes(model, start, stop, mem, include_head=True)
                self._costs[(a, b)] = SegmentCost(mem_bytes=mem_b, flops_fwd=flops)

    def cost(self, module_a: int, module_b: int) -> SegmentCost:
        return self._costs[(module_a, module_b)]


def assign_modules(
    table: SegmentCostTable,
    current_module: int,
    states: Sequence[Optional[DeviceState]],
    enabled: bool = True,
) -> List[int]:
    """Return each client's last assigned module index M_k.

    Without device information (``states[i] is None``) or with DMA disabled,
    every client trains only the current module.
    """
    num_modules = len(table.partition)
    base = [current_module] * len(states)
    if not enabled or current_module >= num_modules - 1:
        return base
    known = [s for s in states if s is not None]
    if not known:
        return base
    p_min = min(s.avail_perf_flops for s in known)
    single_flops = table.cost(current_module, current_module).flops_fwd

    assignment: List[int] = []
    for s in states:
        if s is None:
            assignment.append(current_module)
            continue
        last = current_module
        budget_flops = (s.avail_perf_flops / p_min) * single_flops
        for candidate in range(current_module + 1, num_modules):
            c = table.cost(current_module, candidate)
            if c.mem_bytes > s.avail_mem_bytes:
                break
            if c.flops_fwd > budget_flops:
                break
            last = candidate
        assignment.append(last)
    return assignment
