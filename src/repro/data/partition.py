"""Federated data partitioners (statistical heterogeneity).

The paper follows Shah et al. (2021): on each client, 80 % of the training
data belongs to ~20 % of the classes ("major" classes) and 20 % to the
rest.  We also provide IID and Dirichlet partitioners for ablations.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np


def iid_partition(
    labels: np.ndarray, num_clients: int, rng: Optional[np.random.Generator] = None
) -> List[np.ndarray]:
    """Uniform random split into ``num_clients`` near-equal shards."""
    rng = rng if rng is not None else np.random.default_rng(0)
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    order = rng.permutation(len(labels))
    return [np.sort(part) for part in np.array_split(order, num_clients)]


def pathological_partition(
    labels: np.ndarray,
    num_clients: int,
    major_data_frac: float = 0.8,
    major_class_frac: float = 0.2,
    rng: Optional[np.random.Generator] = None,
) -> List[np.ndarray]:
    """The paper's 80/20 split: most data from a few "major" classes.

    Every client receives ``len(labels)/num_clients`` samples;
    ``major_data_frac`` of them are drawn from that client's randomly
    chosen ``major_class_frac`` of the classes, the rest uniformly from the
    remaining classes.  Sampling is without replacement per class pool,
    cycling through shuffled pools so every sample is assigned exactly once
    whenever possible.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    labels = np.asarray(labels)
    if not (0.0 < major_data_frac <= 1.0 and 0.0 < major_class_frac <= 1.0):
        raise ValueError("fractions must be in (0, 1]")
    num_classes = int(labels.max()) + 1
    num_major = max(1, int(round(major_class_frac * num_classes)))
    per_client = len(labels) // num_clients

    # Shuffled per-class index pools consumed round-robin.
    pools = [rng.permutation(np.where(labels == c)[0]).tolist() for c in range(num_classes)]

    def take(classes: np.ndarray, count: int) -> List[int]:
        out: List[int] = []
        classes = list(classes)
        attempts = 0
        while len(out) < count and attempts < 10 * count:
            c = classes[attempts % len(classes)]
            if pools[c]:
                out.append(pools[c].pop())
            attempts += 1
        if len(out) < count:
            # fall back to any class with data left
            for c in range(num_classes):
                while pools[c] and len(out) < count:
                    out.append(pools[c].pop())
        return out

    shards: List[np.ndarray] = []
    for _ in range(num_clients):
        major = rng.choice(num_classes, size=num_major, replace=False)
        minor = np.setdiff1d(np.arange(num_classes), major)
        n_major = int(round(major_data_frac * per_client))
        idx = take(major, n_major) + take(minor, per_client - n_major)
        shards.append(np.sort(np.asarray(idx, dtype=np.int64)))
    return shards


class VirtualPartition:
    """Per-client pathological shards derived independently per cid.

    The population-scale counterpart of :func:`pathological_partition`:
    the same 80/20 major/minor class skew, but each client's shard is a
    pure function of the RNG it is handed (the caller derives it from
    ``(population_seed, cid)``) — no shared class pools, no global pass,
    so deriving client *i* costs O(samples_per_client) regardless of the
    population size.  Samples are drawn **with replacement** from the
    per-class index pools (shared pools consumed without replacement are
    inherently order-dependent, which is exactly what a per-cid derivation
    must not be), so shards overlap for populations larger than the
    dataset — the regime this class exists for.

    Construction is one O(dataset) preprocessing pass (a stable
    class-sort of the labels); :meth:`shard_for` is then pure vectorised
    gathering.
    """

    def __init__(
        self,
        labels: np.ndarray,
        samples_per_client: int,
        major_data_frac: float = 0.8,
        major_class_frac: float = 0.2,
    ):
        labels = np.asarray(labels)
        if samples_per_client < 1:
            raise ValueError("samples_per_client must be >= 1")
        if not (0.0 < major_data_frac <= 1.0 and 0.0 < major_class_frac <= 1.0):
            raise ValueError("fractions must be in (0, 1]")
        self.samples_per_client = int(samples_per_client)
        self.num_classes = int(labels.max()) + 1
        self.num_major = max(1, int(round(major_class_frac * self.num_classes)))
        self.n_major = min(
            self.samples_per_client,
            int(round(major_data_frac * self.samples_per_client)),
        )
        # Stable class-sorted view of the dataset: class c's samples sit at
        # class_order[class_offsets[c] : class_offsets[c] + class_counts[c]].
        self.class_order = np.argsort(labels, kind="stable").astype(np.int64)
        self.class_counts = np.bincount(labels, minlength=self.num_classes)
        self.class_offsets = np.concatenate(
            ([0], np.cumsum(self.class_counts)[:-1])
        ).astype(np.int64)
        self._nonempty = np.flatnonzero(self.class_counts > 0)
        if len(self._nonempty) == 0:
            raise ValueError("labels must contain at least one sample")

    def shard_for(self, rng: np.random.Generator) -> np.ndarray:
        """One client's sorted shard indices, O(samples_per_client)."""
        major = rng.choice(self.num_classes, size=self.num_major, replace=False)
        is_major = np.zeros(self.num_classes, dtype=bool)
        is_major[major] = True
        major_ok = self._nonempty[is_major[self._nonempty]]
        minor_ok = self._nonempty[~is_major[self._nonempty]]
        n = self.samples_per_client
        if len(minor_ok) == 0:
            n_major = n
        elif len(major_ok) == 0:
            n_major = 0
        else:
            n_major = self.n_major
        parts = []
        if n_major:
            parts.append(major_ok[rng.integers(0, len(major_ok), size=n_major)])
        if n - n_major:
            parts.append(minor_ok[rng.integers(0, len(minor_ok), size=n - n_major)])
        cls = np.concatenate(parts)
        pos = rng.integers(0, self.class_counts[cls])
        return np.sort(self.class_order[self.class_offsets[cls] + pos])


def dirichlet_partition(
    labels: np.ndarray,
    num_clients: int,
    alpha: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> List[np.ndarray]:
    """Dirichlet(α) label-distribution split, the other common non-IID model."""
    rng = rng if rng is not None else np.random.default_rng(0)
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    labels = np.asarray(labels)
    num_classes = int(labels.max()) + 1
    shards: List[List[int]] = [[] for _ in range(num_clients)]
    for c in range(num_classes):
        idx = rng.permutation(np.where(labels == c)[0])
        props = rng.dirichlet(alpha * np.ones(num_clients))
        cuts = (np.cumsum(props) * len(idx)).astype(int)[:-1]
        for shard, part in zip(shards, np.split(idx, cuts)):
            shard.extend(part.tolist())
    return [np.sort(np.asarray(s, dtype=np.int64)) for s in shards]


def public_private_split(
    labels: np.ndarray,
    public_frac: float = 0.1,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Hold out a public subset (used by knowledge-distillation baselines)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    if not (0.0 < public_frac < 1.0):
        raise ValueError("public_frac must be in (0, 1)")
    order = rng.permutation(len(labels))
    n_pub = max(1, int(round(public_frac * len(labels))))
    return np.sort(order[:n_pub]), np.sort(order[n_pub:])
