"""Federated data partitioners (statistical heterogeneity).

The paper follows Shah et al. (2021): on each client, 80 % of the training
data belongs to ~20 % of the classes ("major" classes) and 20 % to the
rest.  We also provide IID and Dirichlet partitioners for ablations.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np


def iid_partition(
    labels: np.ndarray, num_clients: int, rng: Optional[np.random.Generator] = None
) -> List[np.ndarray]:
    """Uniform random split into ``num_clients`` near-equal shards."""
    rng = rng if rng is not None else np.random.default_rng(0)
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    order = rng.permutation(len(labels))
    return [np.sort(part) for part in np.array_split(order, num_clients)]


def pathological_partition(
    labels: np.ndarray,
    num_clients: int,
    major_data_frac: float = 0.8,
    major_class_frac: float = 0.2,
    rng: Optional[np.random.Generator] = None,
) -> List[np.ndarray]:
    """The paper's 80/20 split: most data from a few "major" classes.

    Every client receives ``len(labels)/num_clients`` samples;
    ``major_data_frac`` of them are drawn from that client's randomly
    chosen ``major_class_frac`` of the classes, the rest uniformly from the
    remaining classes.  Sampling is without replacement per class pool,
    cycling through shuffled pools so every sample is assigned exactly once
    whenever possible.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    labels = np.asarray(labels)
    if not (0.0 < major_data_frac <= 1.0 and 0.0 < major_class_frac <= 1.0):
        raise ValueError("fractions must be in (0, 1]")
    num_classes = int(labels.max()) + 1
    num_major = max(1, int(round(major_class_frac * num_classes)))
    per_client = len(labels) // num_clients

    # Shuffled per-class index pools consumed round-robin.
    pools = [rng.permutation(np.where(labels == c)[0]).tolist() for c in range(num_classes)]

    def take(classes: np.ndarray, count: int) -> List[int]:
        out: List[int] = []
        classes = list(classes)
        attempts = 0
        while len(out) < count and attempts < 10 * count:
            c = classes[attempts % len(classes)]
            if pools[c]:
                out.append(pools[c].pop())
            attempts += 1
        if len(out) < count:
            # fall back to any class with data left
            for c in range(num_classes):
                while pools[c] and len(out) < count:
                    out.append(pools[c].pop())
        return out

    shards: List[np.ndarray] = []
    for _ in range(num_clients):
        major = rng.choice(num_classes, size=num_major, replace=False)
        minor = np.setdiff1d(np.arange(num_classes), major)
        n_major = int(round(major_data_frac * per_client))
        idx = take(major, n_major) + take(minor, per_client - n_major)
        shards.append(np.sort(np.asarray(idx, dtype=np.int64)))
    return shards


def dirichlet_partition(
    labels: np.ndarray,
    num_clients: int,
    alpha: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> List[np.ndarray]:
    """Dirichlet(α) label-distribution split, the other common non-IID model."""
    rng = rng if rng is not None else np.random.default_rng(0)
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    labels = np.asarray(labels)
    num_classes = int(labels.max()) + 1
    shards: List[List[int]] = [[] for _ in range(num_clients)]
    for c in range(num_classes):
        idx = rng.permutation(np.where(labels == c)[0])
        props = rng.dirichlet(alpha * np.ones(num_clients))
        cuts = (np.cumsum(props) * len(idx)).astype(int)[:-1]
        for shard, part in zip(shards, np.split(idx, cuts)):
            shard.extend(part.tolist())
    return [np.sort(np.asarray(s, dtype=np.int64)) for s in shards]


def public_private_split(
    labels: np.ndarray,
    public_frac: float = 0.1,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Hold out a public subset (used by knowledge-distillation baselines)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    if not (0.0 < public_frac < 1.0):
        raise ValueError("public_frac must be in (0, 1)")
    order = rng.permutation(len(labels))
    n_pub = max(1, int(round(public_frac * len(labels))))
    return np.sort(order[:n_pub]), np.sort(order[n_pub:])
