"""Array-backed dataset and mini-batch loader."""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np


class ArrayDataset:
    """A labelled array dataset: ``X`` of shape (N, ...) and integer ``y``."""

    def __init__(self, x: np.ndarray, y: np.ndarray):
        x = np.asarray(x)
        y = np.asarray(y)
        if len(x) != len(y):
            raise ValueError(f"length mismatch: {len(x)} inputs vs {len(y)} labels")
        if y.ndim != 1:
            raise ValueError("labels must be 1-D")
        self.x = x
        self.y = y

    def __len__(self) -> int:
        return len(self.x)

    def subset(self, indices: Sequence[int]) -> "ArrayDataset":
        idx = np.asarray(indices)
        return ArrayDataset(self.x[idx], self.y[idx])

    def class_counts(self, num_classes: int) -> np.ndarray:
        return np.bincount(self.y, minlength=num_classes)


class DataLoader:
    """Mini-batch iterator with optional shuffling.

    Iterating yields ``(x_batch, y_batch)`` tuples.  With an explicit
    ``rng``, shuffling order is reproducible; a fresh permutation is drawn
    each epoch.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        shuffle: bool = True,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def _epoch_indices(self) -> Iterator[np.ndarray]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            yield order[start : start + self.batch_size]

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        for idx in self._epoch_indices():
            yield self.dataset.x[idx], self.dataset.y[idx]

    def iter_with_indices(
        self,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """One epoch of ``(indices, x, y)`` batches.

        The dataset row indices let callers key per-sample caches (e.g. the
        frozen-prefix activation cache) in a way that survives reshuffling.
        Consumes the rng identically to ``__iter__``.
        """
        for idx in self._epoch_indices():
            yield idx, self.dataset.x[idx], self.dataset.y[idx]

    def infinite(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Endless batch stream (FL local steps count iterations, not epochs)."""
        while True:
            yield from self

    def infinite_with_indices(
        self,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Endless ``(indices, x, y)`` stream; see :meth:`iter_with_indices`."""
        while True:
            yield from self.iter_with_indices()
