"""Datasets, loaders, and federated partitioning.

CIFAR-10 and Caltech-256 cannot be downloaded in this offline environment,
so :mod:`repro.data.synthetic` generates class-conditional image tasks with
the same tensor interface (3×H×W floats in [0,1], integer labels) and a
controllable difficulty knob.  The partitioners reproduce the paper's
statistical heterogeneity: 80 % of each client's data drawn from ~20 % of
the classes (Shah et al., 2021).
"""

from repro.data.dataset import ArrayDataset, DataLoader
from repro.data.synthetic import SyntheticImageTask, make_cifar10_like, make_caltech256_like
from repro.data.partition import (
    VirtualPartition,
    iid_partition,
    pathological_partition,
    dirichlet_partition,
    public_private_split,
)

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "SyntheticImageTask",
    "make_cifar10_like",
    "make_caltech256_like",
    "VirtualPartition",
    "iid_partition",
    "pathological_partition",
    "dirichlet_partition",
    "public_private_split",
]
