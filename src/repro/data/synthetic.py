"""Synthetic class-conditional image tasks standing in for CIFAR/Caltech.

Each class owns a smooth "prototype" image (low-resolution Gaussian noise
bilinearly upsampled), and samples are noisy, contrast-jittered copies of
their prototype.  The ``separation`` knob controls how far apart prototypes
sit relative to the noise, so tasks range from easy to genuinely hard —
hard enough that adversarial training shows the clean/robust accuracy gap
the paper's experiments rely on.

Design notes:

* Pixels live in [0, 1] like normalised CIFAR images, so the paper's
  ε0 = 8/255 ℓ∞ budget is directly meaningful.
* The generator is fully deterministic given a seed; train and test splits
  are drawn i.i.d. from the same distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import ndimage

from repro.data.dataset import ArrayDataset
from repro.nn.dtype import compute_dtype


def _smooth_field(shape: Tuple[int, int, int], coarse: int, rng: np.random.Generator) -> np.ndarray:
    """Smooth random image: coarse Gaussian grid upsampled to full size."""
    c, h, w = shape
    coarse = max(2, min(coarse, h, w))
    low = rng.normal(size=(c, coarse, coarse))
    zoom = (1, h / coarse, w / coarse)
    return ndimage.zoom(low, zoom, order=1)


@dataclass
class SyntheticImageTask:
    """A generated classification task with train and test splits."""

    name: str
    train: ArrayDataset
    test: ArrayDataset
    num_classes: int
    in_shape: Tuple[int, int, int]


def make_synthetic_task(
    name: str,
    num_classes: int,
    in_shape: Tuple[int, int, int],
    train_per_class: int,
    test_per_class: int,
    separation: float = 1.2,
    noise: float = 0.35,
    coarse: int = 4,
    seed: int = 0,
) -> SyntheticImageTask:
    """Generate a class-conditional Gaussian-prototype image task.

    Parameters
    ----------
    separation:
        Scale of the class-specific prototype component relative to the
        shared background; lower values = harder task.
    noise:
        Per-sample additive Gaussian noise std (before clipping to [0,1]).
    coarse:
        Resolution of the coarse grid defining prototype smoothness.
    """
    if num_classes < 2:
        raise ValueError("need at least 2 classes")
    rng = np.random.default_rng(seed)
    background = _smooth_field(in_shape, coarse, rng)
    prototypes = np.stack(
        [
            background + separation * _smooth_field(in_shape, coarse, rng)
            for _ in range(num_classes)
        ]
    )
    # normalise prototypes to occupy a consistent dynamic range
    p_min, p_max = prototypes.min(), prototypes.max()
    prototypes = (prototypes - p_min) / max(p_max - p_min, 1e-9)

    def _draw(per_class: int, rng: np.random.Generator):
        xs, ys = [], []
        for cls in range(num_classes):
            proto = prototypes[cls]
            contrast = rng.uniform(0.8, 1.2, size=(per_class, 1, 1, 1))
            brightness = rng.uniform(-0.1, 0.1, size=(per_class, 1, 1, 1))
            eps = rng.normal(0.0, noise, size=(per_class,) + in_shape)
            x = np.clip(contrast * proto[None] + brightness + eps, 0.0, 1.0)
            xs.append(x)
            ys.append(np.full(per_class, cls, dtype=np.int64))
        x = np.concatenate(xs).astype(compute_dtype())
        y = np.concatenate(ys)
        order = rng.permutation(len(y))
        return ArrayDataset(x[order], y[order])

    train = _draw(train_per_class, np.random.default_rng(seed + 1))
    test = _draw(test_per_class, np.random.default_rng(seed + 2))
    return SyntheticImageTask(
        name=name, train=train, test=test, num_classes=num_classes, in_shape=in_shape
    )


def make_cifar10_like(
    image_size: int = 16,
    train_per_class: int = 200,
    test_per_class: int = 40,
    seed: int = 0,
    separation: float = 1.2,
    noise: float = 0.35,
) -> SyntheticImageTask:
    """10-class, 3-channel stand-in for CIFAR-10 (paper default 32×32)."""
    return make_synthetic_task(
        "cifar10",
        num_classes=10,
        in_shape=(3, image_size, image_size),
        train_per_class=train_per_class,
        test_per_class=test_per_class,
        separation=separation,
        noise=noise,
        seed=seed,
    )


def make_caltech256_like(
    image_size: int = 16,
    num_classes: int = 32,
    train_per_class: int = 60,
    test_per_class: int = 15,
    seed: int = 1,
    separation: float = 1.0,
    noise: float = 0.4,
) -> SyntheticImageTask:
    """Many-class, higher-resolution stand-in for Caltech-256.

    The paper uses 256 classes at 3×224×224; we keep the "many classes,
    larger images than CIFAR" structure at a NumPy-trainable scale.
    """
    return make_synthetic_task(
        "caltech256",
        num_classes=num_classes,
        in_shape=(3, image_size, image_size),
        train_per_class=train_per_class,
        test_per_class=test_per_class,
        separation=separation,
        noise=noise,
        seed=seed,
    )
