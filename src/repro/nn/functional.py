"""Array primitives shared by the NN layers: im2col/col2im and friends."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.dtype import compute_dtype


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution/pooling window sweep."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size for input={size}, kernel={kernel}, "
            f"stride={stride}, pad={pad}"
        )
    return out


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold an NCHW tensor into column form.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N, C * kh * kw, out_h * out_w)``.  Uses stride tricks to build the
    sliding windows without Python loops; the final ``reshape`` materialises
    a contiguous copy.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kh, stride, pad)
    out_w = conv_output_size(w, kw, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
        writeable=False,
    )
    cols = windows.reshape(n, c * kh * kw, out_h * out_w)
    return cols, out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold column-form gradients back into an NCHW tensor (im2col adjoint).

    Overlapping windows accumulate, which is exactly the sum of gradient
    contributions each input pixel receives.
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kh, stride, pad)
    out_w = conv_output_size(w, kw, stride, pad)
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    xp = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            xp[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j]
    if pad > 0:
        return xp[:, :, pad : pad + h, pad : pad + w]
    return xp


def one_hot(labels: np.ndarray, num_classes: int, dtype=None) -> np.ndarray:
    """Dense one-hot encoding of an integer label vector.

    ``dtype=None`` follows the global compute-dtype policy
    (:func:`repro.nn.dtype.compute_dtype`).
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError("labels must be a 1-D integer array")
    if dtype is None:
        dtype = compute_dtype()
    out = np.zeros((labels.shape[0], num_classes), dtype=dtype)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out
