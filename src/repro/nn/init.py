"""Weight initialisers (He/Kaiming and Xavier/Glorot)."""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import compute_dtype


def kaiming_normal(
    shape, fan_in: int, rng: np.random.Generator, gain: float = np.sqrt(2.0)
) -> np.ndarray:
    """He-normal initialisation: std = gain / sqrt(fan_in).

    The default gain targets ReLU networks, which is all this repo trains.
    Draws in float64 for bit-stable streams, then casts to the compute
    dtype.
    """
    std = gain / np.sqrt(float(fan_in))
    return rng.normal(0.0, std, size=shape).astype(compute_dtype(), copy=False)


def xavier_uniform(shape, fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform initialisation for linear output heads."""
    limit = np.sqrt(6.0 / float(fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(compute_dtype(), copy=False)
