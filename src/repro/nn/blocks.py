"""Composite blocks: Conv-BN-ReLU and the ResNet basic residual block.

These are the "atoms" of the paper's model partitioner (Algorithm 1): a
VGG atom is a single (conv, activation) layer, a ResNet atom is a whole
``BasicBlock`` because the skip connection cannot be cut.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import ReLU
from repro.nn.conv import Conv2d
from repro.nn.module import Identity, Module, Sequential
from repro.nn.normalization import BatchNorm2d


class ConvBNReLU(Module):
    """conv -> batchnorm -> relu, the unit layer of our VGG variants."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        batch_norm: bool = True,
        rng: np.random.Generator | None = None,
        bn_cls=BatchNorm2d,
    ):
        super().__init__()
        self.conv = Conv2d(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            padding=padding,
            bias=not batch_norm,
            rng=rng,
        )
        self.bn = bn_cls(out_channels) if batch_norm else Identity()
        self.act = ReLU()

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.act(self.bn(self.conv(x)))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.conv.backward(self.bn.backward(self.act.backward(grad_out)))


class BasicBlock(Module):
    """ResNet v1 basic block: two 3x3 convs with an additive skip path."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: np.random.Generator | None = None,
        bn_cls=BatchNorm2d,
    ):
        super().__init__()
        self.conv1 = Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng
        )
        self.bn1 = bn_cls(out_channels)
        self.act1 = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, padding=1, bias=False, rng=rng)
        self.bn2 = bn_cls(out_channels)
        self.act2 = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.downsample = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                bn_cls(out_channels),
            )
        else:
            self.downsample = Identity()

    def forward(self, x: np.ndarray) -> np.ndarray:
        main = self.bn2(self.conv2(self.act1(self.bn1(self.conv1(x)))))
        skip = self.downsample(x)
        return self.act2(main + skip)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = self.act2.backward(grad_out)
        g_main = self.conv1.backward(
            self.bn1.backward(self.act1.backward(self.conv2.backward(self.bn2.backward(g))))
        )
        g_skip = self.downsample.backward(g)
        return g_main + g_skip
