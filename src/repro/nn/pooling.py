"""Spatial pooling layers."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import col2im, im2col
from repro.nn.module import Module


class MaxPool2d(Module):
    """Max pooling over square windows (arbitrary kernel/stride/padding)."""

    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, _, _ = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        cols, out_h, out_w = im2col(x, k, k, s, p)
        cols = cols.reshape(n, c, k * k, out_h * out_w)
        self._argmax = cols.argmax(axis=2)
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        out = np.take_along_axis(cols, self._argmax[:, :, None, :], axis=2)
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, c, _, _ = self._x_shape
        k, s, p = self.kernel_size, self.stride, self.padding
        out_h, out_w = self._out_hw
        grad_cols = np.zeros((n, c, k * k, out_h * out_w), dtype=grad_out.dtype)
        g = grad_out.reshape(n, c, 1, out_h * out_w)
        np.put_along_axis(grad_cols, self._argmax[:, :, None, :], g, axis=2)
        self._argmax = None  # single-shot cache: release once consumed
        grad_cols = grad_cols.reshape(n, c * k * k, out_h * out_w)
        return col2im(grad_cols, self._x_shape, k, k, s, p)


class AvgPool2d(Module):
    """Average pooling over square windows."""

    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, _, _ = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        cols, out_h, out_w = im2col(x, k, k, s, p)
        cols = cols.reshape(n, c, k * k, out_h * out_w)
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        return cols.mean(axis=2).reshape(n, c, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, c, _, _ = self._x_shape
        k, s, p = self.kernel_size, self.stride, self.padding
        out_h, out_w = self._out_hw
        g = grad_out.reshape(n, c, 1, out_h * out_w) / float(k * k)
        grad_cols = np.broadcast_to(g, (n, c, k * k, out_h * out_w))
        grad_cols = grad_cols.reshape(n, c * k * k, out_h * out_w)
        return col2im(np.ascontiguousarray(grad_cols), self._x_shape, k, k, s, p)


class GlobalAvgPool2d(Module):
    """Average over all spatial positions, producing (N, C) features."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, c, h, w = self._x_shape
        g = grad_out[:, :, None, None] / float(h * w)
        return np.broadcast_to(g, self._x_shape).copy()
