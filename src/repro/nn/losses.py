"""Loss functions: cross-entropy and the paper's strong-convexity loss.

FedProphet's early-exit loss (Eq. 9) is

    l_m = CE(W_m^T z_m + b_m, y) + (mu/2) * ||z_m||_2^2

where ``z_m`` is the module's output feature and ``(W_m, b_m)`` a linear
auxiliary head.  :class:`StrongConvexityLoss` evaluates this loss given the
feature and the head, and returns the gradient w.r.t. the *feature* (which
the cascade trainer backpropagates into the module) while also accumulating
the head's parameter gradients.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.linear import Linear


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilised."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


class CrossEntropyLoss:
    """Mean softmax cross-entropy over a batch of integer labels."""

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
        labels = np.asarray(labels)
        self._probs = softmax(logits)
        self._labels = labels
        n = logits.shape[0]
        picked = log_softmax(logits)[np.arange(n), labels]
        return float(-picked.mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits."""
        n = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(n), self._labels] -= 1.0
        return grad / n

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


class StrongConvexityLoss:
    """FedProphet's regularized early-exit loss (Eq. 9).

    Parameters
    ----------
    head:
        The linear auxiliary output model ``theta_m``.
    mu:
        Strong-convexity coefficient; ``mu = 0`` recovers vanilla cascade
        learning's early-exit loss.
    """

    def __init__(self, head: Linear, mu: float):
        if mu < 0:
            raise ValueError("mu must be non-negative")
        self.head = head
        self.mu = mu
        self._ce = CrossEntropyLoss()

    def forward(self, features: np.ndarray, labels: np.ndarray) -> float:
        if features.ndim != 2:
            features = features.reshape(features.shape[0], -1)
        self._features = features
        logits = self.head(features)
        ce = self._ce(logits, labels)
        reg = 0.5 * self.mu * float((features**2).sum(axis=1).mean())
        return ce + reg

    def backward(self, accumulate_head_grads: bool = True) -> np.ndarray:
        """Gradient w.r.t. the input features (mean-reduced over batch)."""
        g_logits = self._ce.backward()
        if accumulate_head_grads:
            g_feat = self.head.backward(g_logits)
        else:
            g_feat = g_logits @ self.head.weight.data
        n = self._features.shape[0]
        return g_feat + (self.mu / n) * self._features

    def __call__(self, features: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(features, labels)


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of a logits batch."""
    return float((logits.argmax(axis=1) == np.asarray(labels)).mean())
