"""2-D convolution implemented via im2col."""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import compute_dtype
from repro.nn.functional import col2im, im2col
from repro.nn.grad_mode import param_grads_enabled
from repro.nn.init import kaiming_normal
from repro.nn.module import Module, Parameter


class Conv2d(Module):
    """NCHW convolution with square kernels.

    Forward unfolds the input with :func:`im2col` and reduces the kernel to a
    single matmul per batch; backward reuses the cached columns for the
    weight gradient and folds the input gradient back with ``col2im``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            kaiming_normal(
                (out_channels, in_channels, kernel_size, kernel_size),
                fan_in=fan_in,
                rng=rng,
            )
        )
        self.use_bias = bias
        if bias:
            self.bias = Parameter(np.zeros(out_channels, dtype=compute_dtype()))

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d({self.in_channels}->{self.out_channels}) got input "
                f"shape {x.shape}"
            )
        k, s, p = self.kernel_size, self.stride, self.padding
        cols, out_h, out_w = im2col(x, k, k, s, p)
        # The columns are only needed for the weight gradient; under an
        # input-grad-only scope (attacks, frozen-prefix forwards) don't
        # retain them — they dominate activation memory.
        self._cols = cols if param_grads_enabled() else None
        self._x_shape = x.shape
        w2d = self.weight.data.reshape(self.out_channels, -1)
        # (N, C_out, L) = (C_out, CKK) @ (N, CKK, L), batched over N
        out = np.matmul(w2d, cols)
        if self.use_bias:
            out = out + self.bias.data[None, :, None]
        return out.reshape(x.shape[0], self.out_channels, out_h, out_w)

    def backward(self, grad_out: np.ndarray, param_grads: bool = True) -> np.ndarray:
        n = grad_out.shape[0]
        g2d = grad_out.reshape(n, self.out_channels, -1)
        w2d = self.weight.data.reshape(self.out_channels, -1)
        if param_grads and param_grads_enabled():
            if self._cols is None:
                raise RuntimeError(
                    "Conv2d.backward needs parameter gradients but the "
                    "forward pass ran input-grad-only (no column cache)"
                )
            # (C_out, CKK): contract batch and spatial axes in one shot
            grad_w = np.tensordot(g2d, self._cols, axes=([0, 2], [0, 2]))
            self.weight.grad += grad_w.reshape(self.weight.data.shape)
            if self.use_bias:
                self.bias.grad += g2d.sum(axis=(0, 2))
        self._cols = None  # single-shot cache: release once consumed
        grad_cols = np.matmul(w2d.T, g2d)
        k, s, p = self.kernel_size, self.stride, self.padding
        return col2im(grad_cols, self._x_shape, k, k, s, p)
