"""2-D convolution implemented via im2col."""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import compute_dtype
from repro.nn.functional import col2im, im2col
from repro.nn.grad_mode import param_grads_enabled
from repro.nn.init import kaiming_normal
from repro.nn.module import Module, Parameter


class Conv2d(Module):
    """NCHW convolution with square kernels.

    Forward unfolds the input with :func:`im2col` and reduces the kernel to a
    single matmul per batch; backward reuses the cached columns for the
    weight gradient and folds the input gradient back with ``col2im``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            kaiming_normal(
                (out_channels, in_channels, kernel_size, kernel_size),
                fan_in=fan_in,
                rng=rng,
            )
        )
        self.use_bias = bias
        if bias:
            self.bias = Parameter(np.zeros(out_channels, dtype=compute_dtype()))

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d({self.in_channels}->{self.out_channels}) got input "
                f"shape {x.shape}"
            )
        k, s, p = self.kernel_size, self.stride, self.padding
        cols, out_h, out_w = im2col(x, k, k, s, p)
        # The columns are only needed for the weight gradient; under an
        # input-grad-only scope (attacks, frozen-prefix forwards) don't
        # retain them — they dominate activation memory.
        self._cols = cols if param_grads_enabled() else None
        self._x_shape = x.shape
        if self._cohort_k and self.weight.slab is not None:
            return self._forward_cohort(cols, x.shape[0], out_h, out_w)
        w2d = self.weight.data.reshape(self.out_channels, -1)
        # (N, C_out, L) = (C_out, CKK) @ (N, CKK, L), batched over N
        out = np.matmul(w2d, cols)
        if self.use_bias:
            out = out + self.bias.data[None, :, None]
        return out.reshape(x.shape[0], self.out_channels, out_h, out_w)

    def backward(self, grad_out: np.ndarray, param_grads: bool = True) -> np.ndarray:
        if self._cohort_k and self.weight.slab is not None:
            return self._backward_cohort(grad_out, self._cohort_k, param_grads)
        n = grad_out.shape[0]
        g2d = grad_out.reshape(n, self.out_channels, -1)
        w2d = self.weight.data.reshape(self.out_channels, -1)
        if param_grads and param_grads_enabled():
            if self._cols is None:
                raise RuntimeError(
                    "Conv2d.backward needs parameter gradients but the "
                    "forward pass ran input-grad-only (no column cache)"
                )
            # (C_out, CKK): contract batch and spatial axes in one shot
            grad_w = np.tensordot(g2d, self._cols, axes=([0, 2], [0, 2]))
            self.weight.grad += grad_w.reshape(self.weight.data.shape)
            if self.use_bias:
                self.bias.grad += g2d.sum(axis=(0, 2))
        self._cols = None  # single-shot cache: release once consumed
        grad_cols = np.matmul(w2d.T, g2d)
        k, s, p = self.kernel_size, self.stride, self.padding
        return col2im(grad_cols, self._x_shape, k, k, s, p)

    # -- client-batched (cohort) path -------------------------------------
    # The (K·B, CKK, L) columns regroup to (K, B, CKK, L); one broadcast
    # GEMM per direction applies each client's (C_out, CKK) weight slab to
    # its own B samples — bit-identical per slice to the serial broadcast-
    # over-N matmul.  The weight/bias reductions (tensordot / axis sums)
    # run per client on contiguous slice views so the summation order is
    # exactly the serial client's.
    def _forward_cohort(
        self, cols: np.ndarray, n: int, out_h: int, out_w: int
    ) -> np.ndarray:
        kk = self._cohort_k
        b = n // kk
        ckk = cols.shape[1]
        colsv = cols.reshape(kk, b, ckk, cols.shape[2])
        wslab = self.weight.slab.reshape(kk, self.out_channels, ckk)
        # (K, B, C_out, L) = (K, 1, C_out, CKK) @ (K, B, CKK, L)
        out = np.matmul(wslab[:, None], colsv)
        if self.use_bias:
            out = out + self.bias.slab[:, None, :, None]
        return out.reshape(n, self.out_channels, out_h, out_w)

    def _backward_cohort(
        self, grad_out: np.ndarray, kk: int, param_grads: bool
    ) -> np.ndarray:
        n = grad_out.shape[0]
        b = n // kk
        g2d = np.ascontiguousarray(grad_out).reshape(n, self.out_channels, -1)
        g2v = g2d.reshape(kk, b, self.out_channels, g2d.shape[2])
        ckk = self.in_channels * self.kernel_size * self.kernel_size
        wslab = self.weight.slab.reshape(kk, self.out_channels, ckk)
        if param_grads and param_grads_enabled():
            if self._cols is None:
                raise RuntimeError(
                    "Conv2d.backward needs parameter gradients but the "
                    "forward pass ran input-grad-only (no column cache)"
                )
            colsv = self._cols.reshape(kk, b, ckk, self._cols.shape[2])
            w_grad = self.weight.slab_grad
            b_grad = self.bias.slab_grad if self.use_bias else None
            w_shape = self.weight.data.shape
            for i in range(kk):
                grad_w = np.tensordot(g2v[i], colsv[i], axes=([0, 2], [0, 2]))
                w_grad[i] += grad_w.reshape(w_shape)
                if b_grad is not None:
                    b_grad[i] += g2v[i].sum(axis=(0, 2))
        self._cols = None  # single-shot cache: release once consumed
        # (K, B, CKK, L) = (K, 1, CKK, C_out) @ (K, B, C_out, L)
        grad_cols = np.matmul(wslab.transpose(0, 2, 1)[:, None], g2v)
        grad_cols = grad_cols.reshape(n, ckk, grad_cols.shape[3])
        k, s, p = self.kernel_size, self.stride, self.padding
        return col2im(grad_cols, self._x_shape, k, k, s, p)
