"""Batch normalization, including the dual-statistics variant FedRBN needs."""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import compute_dtype
from repro.nn.grad_mode import param_grads_enabled
from repro.nn.module import Module, Parameter


class BatchNorm2d(Module):
    """Standard NCHW batch normalization with running statistics.

    In training mode the layer normalises with batch statistics and updates
    exponential running averages; in eval mode it uses the running averages.
    The backward pass in eval mode treats the statistics as constants (which
    is what PGD attacks against a frozen model require).
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.weight = Parameter(np.ones(num_features, dtype=compute_dtype()))
        self.bias = Parameter(np.zeros(num_features, dtype=compute_dtype()))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=compute_dtype()))
        self.register_buffer("running_var", np.ones(num_features, dtype=compute_dtype()))

    # Subclasses (DualBatchNorm2d) redirect these to one of two stat banks.
    def _get_running(self) -> tuple[np.ndarray, np.ndarray]:
        return self.running_mean, self.running_var

    def _set_running(self, mean: np.ndarray, var: np.ndarray) -> None:
        self.set_buffer("running_mean", mean)
        self.set_buffer("running_var", var)

    # Cohort variants of the bank switch: per-client (K, C) stat slabs live
    # in ``_slab_buffers`` while a cohort is installed (repro.nn.cohort).
    def _get_running_slab(self) -> tuple[np.ndarray, np.ndarray]:
        return self._slab_buffers["running_mean"], self._slab_buffers["running_var"]

    def _set_running_slab(self, mean: np.ndarray, var: np.ndarray) -> None:
        dtype = self._buffers["running_mean"].dtype
        self._slab_buffers["running_mean"] = np.asarray(mean, dtype=dtype)
        self._slab_buffers["running_var"] = np.asarray(var, dtype=dtype)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(f"BatchNorm2d({self.num_features}) got shape {x.shape}")
        if self._cohort_k and self.weight.slab is not None:
            return self._forward_cohort(x, self._cohort_k)
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            r_mean, r_var = self._get_running()
            m = self.momentum
            self._set_running(
                (1 - m) * r_mean + m * mean,
                (1 - m) * r_var + m * var,
            )
            self._batch_stats = True
        else:
            mean, var = self._get_running()
            self._batch_stats = False
        self._inv_std = 1.0 / np.sqrt(var + self.eps)
        if not (self._batch_stats or param_grads_enabled()):
            # Input-grad-only eval forward (attacks on a frozen model, the
            # frozen-prefix cascade): nothing downstream needs x_hat, so
            # fold the affine transform into one scale-and-shift.
            self._x_hat = None
            scale = self.weight.data * self._inv_std
            shift = self.bias.data - mean * scale
            return x * scale[None, :, None, None] + shift[None, :, None, None]
        # x_hat is needed for the weight gradient and the train-mode input
        # gradient.
        x_hat = (x - mean[None, :, None, None]) * self._inv_std[None, :, None, None]
        self._x_hat = x_hat
        return (
            self.weight.data[None, :, None, None] * x_hat
            + self.bias.data[None, :, None, None]
        )

    def backward(self, grad_out: np.ndarray, param_grads: bool = True) -> np.ndarray:
        if self._cohort_k and self.weight.slab is not None:
            return self._backward_cohort(grad_out, self._cohort_k, param_grads)
        n, _, h, w = grad_out.shape
        count = n * h * w
        if param_grads and param_grads_enabled():
            if self._x_hat is None:
                raise RuntimeError(
                    "BatchNorm2d.backward needs parameter gradients but the "
                    "forward pass ran input-grad-only (no x_hat cache)"
                )
            self.weight.grad += (grad_out * self._x_hat).sum(axis=(0, 2, 3))
            self.bias.grad += grad_out.sum(axis=(0, 2, 3))
        g_xhat = grad_out * self.weight.data[None, :, None, None]
        inv_std = self._inv_std[None, :, None, None]
        if not self._batch_stats:
            # Eval mode: statistics are constants.
            self._x_hat = None
            return g_xhat * inv_std
        x_hat = self._x_hat
        self._x_hat = None
        sum_g = g_xhat.sum(axis=(0, 2, 3), keepdims=True)
        sum_gx = (g_xhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        return (inv_std / count) * (
            count * g_xhat - sum_g - x_hat * sum_gx
        )

    # -- client-batched (cohort) path -------------------------------------
    # The (K·B, C, H, W) activations regroup to (K, B, C, H, W); batch
    # statistics and every gradient reduction are computed per client on
    # contiguous slice views (identical layout to a standalone (B, C, H, W)
    # batch, so the summation order matches serial exactly), while the
    # normalisation itself is one elementwise broadcast over the slab.
    def _forward_cohort(self, x: np.ndarray, k: int) -> np.ndarray:
        n, c, h, w = x.shape
        b = n // k
        xv = x.reshape(k, b, c, h, w)
        if self.training:
            mean = np.empty((k, c), dtype=x.dtype)
            var = np.empty((k, c), dtype=x.dtype)
            for i in range(k):
                mean[i] = xv[i].mean(axis=(0, 2, 3))
                var[i] = xv[i].var(axis=(0, 2, 3))
            r_mean, r_var = self._get_running_slab()
            m = self.momentum
            self._set_running_slab(
                (1 - m) * r_mean + m * mean,
                (1 - m) * r_var + m * var,
            )
            self._batch_stats = True
        else:
            mean, var = self._get_running_slab()
            self._batch_stats = False
        self._inv_std = 1.0 / np.sqrt(var + self.eps)  # (K, C)
        if not (self._batch_stats or param_grads_enabled()):
            self._x_hat = None
            scale = self.weight.slab * self._inv_std
            shift = self.bias.slab - mean * scale
            out = (
                xv * scale[:, None, :, None, None]
                + shift[:, None, :, None, None]
            )
            return out.reshape(n, c, h, w)
        x_hat = (
            xv - mean[:, None, :, None, None]
        ) * self._inv_std[:, None, :, None, None]
        self._x_hat = x_hat  # (K, B, C, H, W)
        out = (
            self.weight.slab[:, None, :, None, None] * x_hat
            + self.bias.slab[:, None, :, None, None]
        )
        return out.reshape(n, c, h, w)

    def _backward_cohort(
        self, grad_out: np.ndarray, k: int, param_grads: bool
    ) -> np.ndarray:
        n, c, h, w = grad_out.shape
        b = n // k
        count = b * h * w  # per-client reduction count, as in serial
        gv = np.ascontiguousarray(grad_out).reshape(k, b, c, h, w)
        if param_grads and param_grads_enabled():
            if self._x_hat is None:
                raise RuntimeError(
                    "BatchNorm2d.backward needs parameter gradients but the "
                    "forward pass ran input-grad-only (no x_hat cache)"
                )
            w_grad, b_grad = self.weight.slab_grad, self.bias.slab_grad
            for i in range(k):
                w_grad[i] += (gv[i] * self._x_hat[i]).sum(axis=(0, 2, 3))
                b_grad[i] += gv[i].sum(axis=(0, 2, 3))
        g_xhat = gv * self.weight.slab[:, None, :, None, None]
        inv_std = self._inv_std[:, None, :, None, None]
        if not self._batch_stats:
            # Eval mode: statistics are constants.
            self._x_hat = None
            return (g_xhat * inv_std).reshape(n, c, h, w)
        x_hat = self._x_hat
        self._x_hat = None
        sum_g = np.empty((k, 1, c, 1, 1), dtype=g_xhat.dtype)
        sum_gx = np.empty((k, 1, c, 1, 1), dtype=g_xhat.dtype)
        for i in range(k):
            sum_g[i, 0, :, 0, 0] = g_xhat[i].sum(axis=(0, 2, 3))
            sum_gx[i, 0, :, 0, 0] = (g_xhat[i] * x_hat[i]).sum(axis=(0, 2, 3))
        out = (inv_std / count) * (count * g_xhat - sum_g - x_hat * sum_gx)
        return out.reshape(n, c, h, w)


class DualBatchNorm2d(BatchNorm2d):
    """BatchNorm with separate clean/adversarial running statistics.

    FedRBN (Hong et al., 2023) propagates robustness between clients by
    sharing the *adversarial* BN statistics of adversarially-training
    clients with standard-training clients.  This layer keeps two banks of
    running statistics and a switch selecting which bank forward passes in
    eval mode use (training mode updates the active bank).
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__(num_features, momentum=momentum, eps=eps)
        self.register_buffer("running_mean_adv", np.zeros(num_features))
        self.register_buffer("running_var_adv", np.ones(num_features))
        self.adversarial_mode = False

    def set_mode(self, adversarial: bool) -> None:
        object.__setattr__(self, "adversarial_mode", bool(adversarial))

    def _get_running(self) -> tuple[np.ndarray, np.ndarray]:
        if self.adversarial_mode:
            return self.running_mean_adv, self.running_var_adv
        return self.running_mean, self.running_var

    def _set_running(self, mean: np.ndarray, var: np.ndarray) -> None:
        if self.adversarial_mode:
            self.set_buffer("running_mean_adv", mean)
            self.set_buffer("running_var_adv", var)
        else:
            self.set_buffer("running_mean", mean)
            self.set_buffer("running_var", var)

    def _get_running_slab(self) -> tuple[np.ndarray, np.ndarray]:
        if self.adversarial_mode:
            return (
                self._slab_buffers["running_mean_adv"],
                self._slab_buffers["running_var_adv"],
            )
        return super()._get_running_slab()

    def _set_running_slab(self, mean: np.ndarray, var: np.ndarray) -> None:
        if self.adversarial_mode:
            dtype = self._buffers["running_mean_adv"].dtype
            self._slab_buffers["running_mean_adv"] = np.asarray(mean, dtype=dtype)
            self._slab_buffers["running_var_adv"] = np.asarray(var, dtype=dtype)
        else:
            super()._set_running_slab(mean, var)


def set_dual_bn_mode(model: Module, adversarial: bool) -> None:
    """Switch every DualBatchNorm2d in ``model`` to clean/adversarial stats."""
    for m in model.modules():
        if isinstance(m, DualBatchNorm2d):
            m.set_mode(adversarial)
