"""Elementwise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class ReLU(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        mask, self._mask = self._mask, None  # single-shot cache
        return np.where(mask, grad_out, 0.0)


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        if negative_slope < 0:
            raise ValueError("negative_slope must be >= 0")
        self.negative_slope = negative_slope

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        mask, self._mask = self._mask, None
        return np.where(mask, grad_out, self.negative_slope * grad_out)


class Tanh(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * (1.0 - self._out**2)
