"""repro.nn — a from-scratch NumPy neural-network library.

The FedProphet reproduction cannot rely on an autograd framework (none is
installed), so this package provides the minimal-but-complete substrate the
paper's experiments need:

* layers with explicit ``forward(x)`` / ``backward(grad_out) -> grad_in``
  passes (the returned input gradient is what PGD-style attacks consume),
* convolution via im2col, batch normalization with running statistics,
  residual blocks, pooling, linear heads,
* cross-entropy and the paper's strong-convexity-regularized early-exit
  loss (Eq. 9),
* SGD with momentum / weight decay, matching the paper's training recipe.

All layers follow the NCHW convention and accept an explicit
``numpy.random.Generator`` wherever randomness is involved, so experiments
are fully reproducible.
"""

from repro.nn.dtype import (
    as_compute,
    compute_dtype,
    dtype_scope,
    set_compute_dtype,
)
from repro.nn.grad_mode import (
    attack_grad_scope,
    fast_path_enabled,
    no_param_grads,
    param_grads_enabled,
    set_fast_path,
)
from repro.nn.module import Module, Parameter, Sequential, Identity
from repro.nn.linear import Linear, Flatten
from repro.nn.conv import Conv2d
from repro.nn.pooling import MaxPool2d, AvgPool2d, GlobalAvgPool2d
from repro.nn.normalization import BatchNorm2d, DualBatchNorm2d
from repro.nn.activations import ReLU, LeakyReLU, Tanh
from repro.nn.blocks import ConvBNReLU, BasicBlock
from repro.nn.losses import (
    CrossEntropyLoss,
    StrongConvexityLoss,
    softmax,
    log_softmax,
)

__all__ = [
    "as_compute",
    "compute_dtype",
    "dtype_scope",
    "set_compute_dtype",
    "attack_grad_scope",
    "fast_path_enabled",
    "no_param_grads",
    "param_grads_enabled",
    "set_fast_path",
    "Module",
    "Parameter",
    "Sequential",
    "Identity",
    "Linear",
    "Flatten",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "BatchNorm2d",
    "DualBatchNorm2d",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "ConvBNReLU",
    "BasicBlock",
    "CrossEntropyLoss",
    "StrongConvexityLoss",
    "softmax",
    "log_softmax",
]
