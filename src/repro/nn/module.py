"""Base classes for the NumPy NN library: Parameter, Module, Sequential.

The design deliberately mirrors a tiny subset of ``torch.nn``: modules own
named parameters and buffers, compose into trees, and expose
``state_dict``/``load_state_dict`` so the federated-learning aggregators can
operate on flat name->array mappings.  Unlike torch there is no autograd
tape: each module implements an explicit ``backward`` that consumes the
gradient of the loss w.r.t. its output and returns the gradient w.r.t. its
input, accumulating parameter gradients along the way.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.dtype import as_compute


class Parameter:
    """A trainable tensor together with its accumulated gradient.

    Floating-point data is cast to the active compute dtype (see
    :mod:`repro.nn.dtype`) at construction, so the dtype policy is enforced
    no matter which code path creates the parameter.

    ``slab``/``slab_grad`` hold the client-batched state of the ``batched``
    executor backend: a ``(K, *data.shape)`` stack of K clients' values for
    this parameter (see :mod:`repro.nn.cohort`).  While a slab is installed
    the cohort-aware layers ignore ``data``/``grad`` and operate on the
    slab; ``data`` keeps the last serial value untouched.
    """

    __slots__ = ("data", "grad", "slab", "slab_grad")

    def __init__(self, data: np.ndarray):
        self.data = as_compute(np.asarray(data))
        self.grad = np.zeros_like(self.data)
        self.slab: Optional[np.ndarray] = None
        self.slab_grad: Optional[np.ndarray] = None

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0
        if self.slab_grad is not None:
            self.slab_grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(shape={self.data.shape}, dtype={self.data.dtype})"


class Module:
    """Base class for all layers and models.

    Subclasses register parameters/buffers/children simply by assigning them
    as attributes; ``__setattr__`` sorts them into the right registry.  The
    contract is:

    * ``forward(x)`` caches whatever the backward pass needs and returns the
      output,
    * ``backward(grad_out)`` accumulates parameter gradients (into
      ``Parameter.grad``) and returns the gradient w.r.t. the forward input.

    ``backward`` must be called at most once per ``forward`` (caches are
    single-slot), which is all the training loops in this repo need.
    """

    # Cohort width of the ``batched`` executor backend: 0 = serial layout,
    # K > 0 = a (K·B, ...) activation layout with per-client parameter slabs
    # installed (see repro.nn.cohort).  Class-level default so every module
    # has the attribute without touching __init__ cost.
    _cohort_k: int = 0

    def __init__(self) -> None:
        object.__setattr__(self, "_params", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "_children", {})
        object.__setattr__(self, "_slab_buffers", {})
        object.__setattr__(self, "training", True)

    # -- attribute routing ------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._params[name] = value
        elif isinstance(value, Module):
            self._children[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable tensor (e.g. BN running statistics)."""
        self._buffers[name] = as_compute(np.asarray(value))
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = np.asarray(value, dtype=self._buffers[name].dtype)
        object.__setattr__(self, name, self._buffers[name])

    # -- interface ---------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- traversal ---------------------------------------------------------
    def children(self) -> Iterator["Module"]:
        return iter(self._children.values())

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._children.values():
            yield from child.modules()

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, p in self._params.items():
            yield prefix + name, p
        for cname, child in self._children.items():
            yield from child.named_parameters(prefix + cname + ".")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield prefix + name, self._buffers[name]
        for cname, child in self._children.items():
            yield from child.named_buffers(prefix + cname + ".")

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- modes & grads -----------------------------------------------------
    def train(self) -> "Module":
        for m in self.modules():
            object.__setattr__(m, "training", True)
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            object.__setattr__(m, "training", False)
        return self

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- (de)serialization ---------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat name -> array copy of all parameters and buffers."""
        out: Dict[str, np.ndarray] = {}
        for name, p in self.named_parameters():
            out[name] = p.data.copy()
        for name, b in self.named_buffers():
            out[name] = b.copy()
        return out

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        param_index = dict(self.named_parameters())
        missing = []
        for name, p in param_index.items():
            if name in state:
                p.data[...] = state[name]
            elif strict:
                missing.append(name)
        buffer_owners = self._buffer_owners()
        for name, (owner, local) in buffer_owners.items():
            if name in state:
                owner.set_buffer(local, state[name].copy())
            elif strict:
                missing.append(name)
        if missing:
            raise KeyError(f"state dict missing keys: {missing}")

    def _buffer_owners(self, prefix: str = "") -> Dict[str, Tuple["Module", str]]:
        out: Dict[str, Tuple[Module, str]] = {}
        for name in self._buffers:
            out[prefix + name] = (self, name)
        for cname, child in self._children.items():
            out.update(child._buffer_owners(prefix + cname + "."))
        return out


class Identity(Module):
    """Pass-through layer (used for absent residual downsample paths)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


class Sequential(Module):
    """Ordered composition of modules, with chained backward."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers: List[Module] = []
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)
            self.layers.append(layer)

    def append(self, layer: Module) -> None:
        idx = len(self.layers)
        setattr(self, f"layer{idx}", layer)
        self.layers.append(layer)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx) -> Module:
        if isinstance(idx, slice):
            return Sequential(*self.layers[idx])
        return self.layers[idx]

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out
