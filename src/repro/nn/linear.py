"""Dense layer and flattening."""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import compute_dtype
from repro.nn.grad_mode import param_grads_enabled
from repro.nn.init import kaiming_normal
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Fully connected layer ``y = x @ W.T + b`` with He init."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            kaiming_normal((out_features, in_features), fan_in=in_features, rng=rng)
        )
        self.use_bias = bias
        if bias:
            self.bias = Parameter(np.zeros(out_features, dtype=compute_dtype()))

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError(f"Linear expects 2-D input, got shape {x.shape}")
        if self._cohort_k and self.weight.slab is not None:
            return self._forward_cohort(x, self._cohort_k)
        # The input is only needed for the weight gradient.
        self._x = x if param_grads_enabled() else None
        out = x @ self.weight.data.T
        if self.use_bias:
            out = out + self.bias.data
        return out

    def backward(self, grad_out: np.ndarray, param_grads: bool = True) -> np.ndarray:
        if self._cohort_k and self.weight.slab is not None:
            return self._backward_cohort(grad_out, self._cohort_k, param_grads)
        if param_grads and param_grads_enabled():
            if self._x is None:
                raise RuntimeError(
                    "Linear.backward needs parameter gradients but the "
                    "forward pass ran input-grad-only (no input cache)"
                )
            self.weight.grad += grad_out.T @ self._x
            if self.use_bias:
                self.bias.grad += grad_out.sum(axis=0)
        self._x = None
        return grad_out @ self.weight.data

    # -- client-batched (cohort) path -------------------------------------
    # Activations carry K clients stacked on the batch axis: (K·B, in).
    # The stacked GEMMs below are bit-identical per client slice to the
    # serial 2-D matmuls (same BLAS kernel over the same contiguous
    # per-slice layout); the weight/bias *reductions* run per client on
    # contiguous slice views so the summation order matches serial exactly.
    def _forward_cohort(self, x: np.ndarray, k: int) -> np.ndarray:
        n = x.shape[0]
        b = n // k
        self._x = x if param_grads_enabled() else None
        xv = x.reshape(k, b, self.in_features)
        out = np.matmul(xv, self.weight.slab.transpose(0, 2, 1))
        if self.use_bias:
            out = out + self.bias.slab[:, None, :]
        return out.reshape(n, self.out_features)

    def _backward_cohort(
        self, grad_out: np.ndarray, k: int, param_grads: bool
    ) -> np.ndarray:
        n = grad_out.shape[0]
        b = n // k
        gv = np.ascontiguousarray(grad_out).reshape(k, b, self.out_features)
        if param_grads and param_grads_enabled():
            if self._x is None:
                raise RuntimeError(
                    "Linear.backward needs parameter gradients but the "
                    "forward pass ran input-grad-only (no input cache)"
                )
            xv = self._x.reshape(k, b, self.in_features)
            w_grad = self.weight.slab_grad
            b_grad = self.bias.slab_grad if self.use_bias else None
            for i in range(k):
                w_grad[i] += gv[i].T @ xv[i]
                if b_grad is not None:
                    b_grad[i] += gv[i].sum(axis=0)
        self._x = None
        return np.matmul(gv, self.weight.slab).reshape(n, self.in_features)


class Flatten(Module):
    """Collapse all non-batch dimensions."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._shape)
