"""Dense layer and flattening."""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import compute_dtype
from repro.nn.grad_mode import param_grads_enabled
from repro.nn.init import kaiming_normal
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Fully connected layer ``y = x @ W.T + b`` with He init."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            kaiming_normal((out_features, in_features), fan_in=in_features, rng=rng)
        )
        self.use_bias = bias
        if bias:
            self.bias = Parameter(np.zeros(out_features, dtype=compute_dtype()))

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError(f"Linear expects 2-D input, got shape {x.shape}")
        # The input is only needed for the weight gradient.
        self._x = x if param_grads_enabled() else None
        out = x @ self.weight.data.T
        if self.use_bias:
            out = out + self.bias.data
        return out

    def backward(self, grad_out: np.ndarray, param_grads: bool = True) -> np.ndarray:
        if param_grads and param_grads_enabled():
            if self._x is None:
                raise RuntimeError(
                    "Linear.backward needs parameter gradients but the "
                    "forward pass ran input-grad-only (no input cache)"
                )
            self.weight.grad += grad_out.T @ self._x
            if self.use_bias:
                self.bias.grad += grad_out.sum(axis=0)
        self._x = None
        return grad_out @ self.weight.data


class Flatten(Module):
    """Collapse all non-batch dimensions."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._shape)
