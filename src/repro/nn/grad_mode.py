"""Gradient-mode switches: input-grad-only backward passes.

Adversarial attacks (PGD, FGSM, APGD) only ever consume the gradient of
the loss w.r.t. the *input*; the parameter gradients the layers accumulate
along the way are discarded by every caller (training loops ``zero_grad``
right after the attack).  Those parameter gradients are expensive — the
``tensordot`` weight-gradient contraction in ``Conv2d`` costs about as
much as the whole forward pass — so the attack hot path runs inside
:func:`no_param_grads`, under which

* ``Conv2d`` / ``Linear`` / ``BatchNorm2d`` skip their weight/bias
  gradient contractions entirely, and
* forward passes skip stashing caches that only the parameter-gradient
  path needs (``Conv2d._cols``, ``Linear._x``, and eval-mode
  ``BatchNorm2d._x_hat``), cutting peak activation memory.

A process-wide master switch (:func:`set_fast_path`) lets the perf
benchmark measure the legacy full-gradient behaviour for its
before/after table without rebuilding models.  Note the two modes are
*mathematically* equivalent but not bit-comparable: the fast path also
selects fused kernels (e.g. eval-mode BatchNorm's folded scale-and-shift)
whose floating-point rounding differs from the legacy expressions.
Bit-identity guarantees in this repo (prefix cache on/off) always compare
runs within a single mode.

The input-grad-only flag is **thread-local**: the round execution engine
(:mod:`repro.flsim.executor`) runs one client's attack inside
``no_param_grads`` on a worker thread while another worker's SGD backward
— which must accumulate parameter gradients — runs concurrently.  A
process-global flag would let one worker's attack scope silently disable
the other's weight gradients.  New threads start with parameter gradients
enabled.  The fast-path master switch stays process-wide: it is a
benchmark-only toggle flipped outside any parallel region.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager, nullcontext
from typing import ContextManager, Iterator

_grad_state = threading.local()
_fast_path_enabled: bool = True


def param_grads_enabled() -> bool:
    """Whether backward passes (in this thread) accumulate parameter grads."""
    return getattr(_grad_state, "param_grads", True)


@contextmanager
def no_param_grads() -> Iterator[None]:
    """Scope in which backward passes produce *input* gradients only."""
    previous = param_grads_enabled()
    _grad_state.param_grads = False
    try:
        yield
    finally:
        _grad_state.param_grads = previous


def fast_path_enabled() -> bool:
    """Whether the input-grad-only attack fast path is active."""
    return _fast_path_enabled


def set_fast_path(enabled: bool) -> bool:
    """Toggle the attack fast path process-wide; returns the previous value.

    Exists for the perf benchmark's baseline measurements; production code
    should leave it on.
    """
    global _fast_path_enabled
    previous = _fast_path_enabled
    _fast_path_enabled = bool(enabled)
    return previous


def attack_grad_scope() -> ContextManager[None]:
    """The scope attacks and frozen-prefix forwards run under.

    Resolves to :func:`no_param_grads` normally, or a no-op when the fast
    path is disabled (benchmark baseline mode).
    """
    return no_param_grads() if _fast_path_enabled else nullcontext()
