"""Client-batched ("fusion cohort") parameter slabs for the batched backend.

The ``batched`` executor backend fuses K homogeneous clients into one
stacked forward/backward: activations carry the clients stacked on the
batch axis — a ``(K·B, ...)`` layout — while every trainable parameter
carries a ``(K, *shape)`` **slab** holding the K clients' values.  The
cohort-aware layers (Linear, Conv2d, BatchNorm2d) detect an installed slab
and switch to stacked kernels whose per-client slices are bit-identical to
the serial path: the GEMMs batch over the leading client axis (same BLAS
kernel over the same contiguous per-slice layout), and every multi-axis
*reduction* (weight/bias gradients, batch statistics) runs per client on a
contiguous slice view so the summation order matches a serial client
exactly.

This module owns the slab lifecycle:

* :func:`install_cohort` stacks K state dicts into parameter/buffer slabs,
* :func:`extract_cohort` slices the trained slabs back into K state dicts,
* :func:`clear_cohort` returns the model to the serial layout (slot models
  are reused across rounds, so this must run even on failure),

plus :class:`CohortCrossEntropyLoss`, the per-client-sliced loss whose
gradient matches K independent serial mean-CE losses bit for bit.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.nn.losses import log_softmax, softmax
from repro.nn.module import Module

StateDict = Dict[str, np.ndarray]


def install_cohort(model: Module, states: Sequence[StateDict]) -> int:
    """Stack K client state dicts into parameter/buffer slabs on ``model``.

    ``states`` must all carry exactly the keys of ``model.state_dict()``.
    While installed, the cohort-aware layers ignore the serial
    ``Parameter.data`` values (which are left untouched).  Returns K.
    """
    k = len(states)
    if k == 0:
        raise ValueError("install_cohort needs at least one state dict")
    for name, p in model.named_parameters():
        p.slab = np.stack(
            [np.asarray(s[name], dtype=p.data.dtype) for s in states]
        )
        p.slab_grad = np.zeros_like(p.slab)
    for name, (owner, local) in model._buffer_owners().items():
        dtype = owner._buffers[local].dtype
        owner._slab_buffers[local] = np.stack(
            [np.asarray(s[name], dtype=dtype) for s in states]
        )
    for m in model.modules():
        m._cohort_k = k
    return k


def extract_cohort(model: Module) -> List[StateDict]:
    """Slice the installed slabs back into K per-client state dicts.

    Key set and array values are exactly what K serial clients'
    ``state_dict()`` calls would produce after the same training.
    """
    k = model._cohort_k
    if not k:
        raise RuntimeError("no cohort installed")
    states: List[StateDict] = [{} for _ in range(k)]
    for name, p in model.named_parameters():
        if p.slab is None:
            raise RuntimeError(f"parameter {name!r} has no slab installed")
        for i in range(k):
            states[i][name] = p.slab[i].copy()
    for name, (owner, local) in model._buffer_owners().items():
        slab = owner._slab_buffers[local]
        for i in range(k):
            states[i][name] = slab[i].copy()
    return states


def clear_cohort(model: Module) -> None:
    """Drop all slabs and return ``model`` to the serial layout."""
    for _, p in model.named_parameters():
        p.slab = None
        p.slab_grad = None
    for m in model.modules():
        m._slab_buffers.clear()
        m._cohort_k = 0


class CohortCrossEntropyLoss:
    """Per-client mean cross-entropy over a (K·B, C) stacked logits batch.

    ``forward`` returns the K per-client losses (each the serial client's
    ``float(-picked.mean())`` over its own contiguous slice); ``backward``
    divides by the per-client batch size B — not K·B — so each client's
    logit gradient equals the serial ``CrossEntropyLoss.backward`` exactly.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("cohort width must be >= 1")
        self.k = k

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
        labels = np.asarray(labels)
        self._probs = softmax(logits)
        self._labels = labels
        n = logits.shape[0]
        b = n // self.k
        picked = log_softmax(logits)[np.arange(n), labels]
        return np.array(
            [float(-picked[i * b : (i + 1) * b].mean()) for i in range(self.k)]
        )

    def backward(self) -> np.ndarray:
        n = self._probs.shape[0]
        b = n // self.k
        grad = self._probs.copy()
        grad[np.arange(n), self._labels] -= 1.0
        return grad / b

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
        return self.forward(logits, labels)
