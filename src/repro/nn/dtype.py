"""Global compute-dtype policy for the NumPy NN substrate.

Everything in ``repro.nn`` computes in a single floating dtype chosen by
this policy.  The default is ``float32``: on every BLAS the repo targets,
single-precision matmuls run ~2x faster than double precision and halve
activation memory, which is exactly the resource the FedProphet edge-device
setting is constrained by.  ``float64`` remains available (per call, via
:func:`dtype_scope`, or process-wide via the ``REPRO_DTYPE`` environment
variable) for finite-difference gradient checks, which need double
precision to resolve central differences.

The policy is enforced at the *construction* boundary — ``Parameter``,
``Module.register_buffer`` and the weight initialisers cast floating
arrays to the active compute dtype — so models built under a scope keep
their dtype afterwards, and data generators/aggregators query
:func:`compute_dtype` at call time.  Integer arrays (labels, indices,
argmax caches) are never touched.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Union

import numpy as np

DTypeLike = Union[str, type, np.dtype]

_VALID = (np.dtype(np.float32), np.dtype(np.float64))


def _coerce(dtype: DTypeLike) -> np.dtype:
    try:
        d = np.dtype(dtype)
    except TypeError as exc:
        raise ValueError(
            f"unsupported compute dtype {dtype!r}; expected one of "
            f"{[str(v) for v in _VALID]}"
        ) from exc
    if d not in _VALID:
        raise ValueError(
            f"unsupported compute dtype {d}; expected one of "
            f"{[str(v) for v in _VALID]}"
        )
    return d


_compute_dtype: np.dtype = _coerce(os.environ.get("REPRO_DTYPE", "float32"))


def compute_dtype() -> np.dtype:
    """The dtype all floating tensors are created with."""
    return _compute_dtype


def set_compute_dtype(dtype: DTypeLike) -> np.dtype:
    """Set the process-wide compute dtype; returns the previous one."""
    global _compute_dtype
    previous = _compute_dtype
    _compute_dtype = _coerce(dtype)
    return previous


@contextmanager
def dtype_scope(dtype: DTypeLike) -> Iterator[np.dtype]:
    """Temporarily switch the compute dtype (e.g. float64 for gradchecks).

    Only affects tensors *created* inside the scope; models built within
    keep their dtype when the scope exits.
    """
    previous = set_compute_dtype(dtype)
    try:
        yield _compute_dtype
    finally:
        set_compute_dtype(previous)


def accum_dtype(*arrays: np.ndarray) -> np.dtype:
    """Accumulator dtype for aggregation over the given arrays.

    Follows the compute-dtype policy without ever *downcasting* the inputs:
    float32 states accumulate in float32 (the policy default), while
    float64 inputs — e.g. under a float64 scope, or externally supplied
    double-precision states — keep full precision.
    """
    return np.result_type(_compute_dtype, *[np.asarray(a).dtype for a in arrays])


def as_compute(x: np.ndarray) -> np.ndarray:
    """Cast a floating array to the compute dtype (no-copy when possible).

    Non-floating arrays (integer labels, bool masks) pass through
    unchanged.
    """
    x = np.asarray(x)
    if np.issubdtype(x.dtype, np.floating) and x.dtype != _compute_dtype:
        return x.astype(_compute_dtype)
    return x
