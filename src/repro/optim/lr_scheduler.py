"""Learning-rate schedules."""

from __future__ import annotations

from repro.optim.sgd import SGD


class ExponentialDecay:
    """Per-round exponential decay ``lr_t = gamma**t * lr_0`` (paper B.4)."""

    def __init__(self, optimizer: SGD, gamma: float = 0.994):
        if not (0.0 < gamma <= 1.0):
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.round = 0

    def step(self) -> float:
        """Advance one communication round and return the new lr."""
        self.round += 1
        self.optimizer.lr = self.base_lr * (self.gamma**self.round)
        return self.optimizer.lr

    def set_round(self, t: int) -> float:
        """Jump to round ``t`` (used when a fresh optimizer resumes mid-run)."""
        self.round = t
        self.optimizer.lr = self.base_lr * (self.gamma**t)
        return self.optimizer.lr
