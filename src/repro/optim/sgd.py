"""SGD with momentum and weight decay — the paper's local optimizer."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.module import Parameter


class SGD:
    """Stochastic gradient descent.

    Matches the torch semantics the paper's hyperparameters assume:
    ``v <- momentum * v + (grad + weight_decay * w)`` then
    ``w <- w - lr * v``.  The momentum buffers are the optimizer state that
    the hardware memory model accounts for (one extra copy of the weights).
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not (0.0 <= momentum < 1.0):
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        # Slab-aware: under the batched backend a parameter carries a
        # (K, *shape) per-client slab; the velocity matches it and every
        # update below is elementwise, so each client's slice evolves
        # bit-identically to a serial optimizer on that client alone.
        self._velocity = [
            np.zeros_like(p.slab if p.slab is not None else p.data)
            for p in self.params
        ]

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.slab is not None:
                data, g = p.slab, p.slab_grad
            else:
                data, g = p.data, p.grad
            if self.weight_decay:
                g = g + self.weight_decay * data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            data -= self.lr * g

    def state_size(self) -> int:
        """Number of scalars of optimizer state (for memory accounting)."""
        return sum(v.size for v in self._velocity) if self.momentum else 0
