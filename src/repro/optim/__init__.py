"""Optimizers and learning-rate schedules for the NumPy NN library."""

from repro.optim.sgd import SGD
from repro.optim.lr_scheduler import ExponentialDecay

__all__ = ["SGD", "ExponentialDecay"]
