"""Plain-text table formatting for benchmark harness output."""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table (benchmarks print these)."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(v) for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
