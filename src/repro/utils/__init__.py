"""Shared utilities: RNG streams and table formatting for bench output."""

from repro.utils.rng import spawn_rngs, seeded_rng
from repro.utils.tables import format_table
from repro.utils.serialization import save_state, load_state, save_model, load_model

__all__ = [
    "spawn_rngs",
    "seeded_rng",
    "format_table",
    "save_state",
    "load_state",
    "save_model",
    "load_model",
]
