"""Checkpointing: save/load model state dicts as .npz archives."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.nn.module import Module


def save_state(path: str, state: Dict[str, np.ndarray]) -> None:
    """Write a state dict to a compressed .npz archive.

    Keys containing dots are legal npz member names, so the flat
    name -> array mapping round-trips untouched.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **state)


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state`."""
    with np.load(path) as archive:
        return {key: archive[key].copy() for key in archive.files}


def save_model(path: str, model: Module) -> None:
    """Checkpoint a model's parameters and buffers."""
    save_state(path, model.state_dict())


def load_model(path: str, model: Module) -> Module:
    """Restore a checkpoint into an already-constructed model (in place)."""
    model.load_state_dict(load_state(path))
    return model
