"""Deterministic RNG stream management."""

from __future__ import annotations

from typing import List

import numpy as np


def seeded_rng(seed: int) -> np.random.Generator:
    """A fresh PCG64 generator for a given seed."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> List[np.random.Generator]:
    """Independent child generators (one per client/worker) from one seed."""
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
