"""Shared federated-experiment scaffolding.

Every algorithm (jFAT, the memory-efficient baselines, FedProphet) derives
from :class:`FederatedExperiment`, which owns the pieces the paper keeps
constant across methods: the non-IID client population, per-round client
and device sampling, the simulated wall clock, learning-rate decay, and
periodic evaluation.
"""

from __future__ import annotations

import os
import threading
import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks import ModelWithLoss
from repro.data.dataset import ArrayDataset
from repro.data.synthetic import SyntheticImageTask
from repro.flsim.eval_executor import EvalExecutor, EvalTarget, PendingEval
from repro.flsim.executor import BACKENDS, CohortFn, RoundExecutor
from repro.flsim.aggregation import AggregationError
from repro.flsim.faults import FaultPlan, RoundFaults
from repro.flsim.journal import JournalError, RunJournal
from repro.flsim.population import (
    MATERIALISATIONS,
    POPULATION_SCHEMES,
    ClientPopulation,
    FLClient,
)
from repro.flsim.robust_agg import AGGREGATION_RULES, RobustAggregator, masked_robust_average
from repro.flsim.scheduler import FLScheduler
from repro.flsim.threats import RoundThreats, ThreatPlan
from repro.hardware.devices import DeviceSampler, DeviceState
from repro.hardware.latency import LatencyModel, LocalTrainingCost
from repro.metrics.evaluation import EvalPlan, EvalResult
from repro.models.atoms import CascadeModel


@dataclass
class FLConfig:
    """Hyperparameters shared by all federated algorithms (paper §B.4).

    Defaults are the paper's values; experiments shrink ``rounds``,
    ``num_clients``, and ``train_pgd_steps`` to NumPy-friendly scales.

    ``executor_backend`` / ``round_parallelism`` select the round execution
    engine (:class:`repro.flsim.executor.RoundExecutor`): clients within a
    round train as independent work units on ``serial`` (default),
    ``thread``, ``process``, or ``batched`` workers, with bit-identical
    results across backends.  ``round_parallelism`` caps the worker count
    (None: one per CPU core).  The ``batched`` backend fuses homogeneous
    clients into stacked cohorts of at most ``fusion_width`` (per-client
    weight slabs against a ``(K·B, ...)`` activation layout — see
    :mod:`repro.nn.cohort`); heterogeneous clients fall back to the
    thread path per group, and cohorts still spread over the persistent
    thread pool.

    ``eval_backend`` / ``eval_parallelism`` configure the sharded
    evaluation engine (:class:`repro.flsim.eval_executor.EvalExecutor`)
    the same way; both default (None) to the round-engine settings, so a
    parallel experiment evaluates in parallel too.  Evaluation results are
    bit-identical across backends and worker counts.

    ``aggregation_mode`` selects how client updates reach the server:
    ``"sync"`` (default) is the classic round barrier — bit-identical to
    the pre-scheduler engine on every backend and worker count;
    ``"async"`` (experiments that declare ``supports_async_aggregation``
    — jFAT, FedRBN, the partial-training family, and FedProphet) merges
    updates as they land, in simulated-arrival order, with FedAsync
    staleness attenuation bounded by ``max_staleness`` merge events —
    deterministic and seed-reproducible at any worker count because
    arrival order derives from the simulated latency model, never from
    wall-clock scheduling.

    ``pipeline_depth`` (async mode only) lifts the round boundary itself:
    with depth *D* up to *D* rounds are in flight at once — round *r+1*'s
    fast clients dispatch against the latest merged server state while
    round *r*'s stragglers are still training
    (:class:`repro.flsim.scheduler.CrossRoundPipeline`).  Each round's
    clients train from the server state at the round's *base version*
    (the merge-event count at its simulated dispatch time), and merges
    still replay in simulated-arrival order, so any depth is bit-identical
    across backends and worker counts; ``pipeline_depth=1`` with
    ``max_staleness=0`` reproduces synchronous FedAvg exactly.
    FedProphet pins depth to 1: its per-round ``cascade_eval`` feeds APA
    and early-stop, putting a hard evaluation point on every round
    boundary (its async mode instead merges per-module within the round).

    ``overlap_eval`` (opt-in) pipelines periodic evaluation with the next
    round's training: the run loop publishes an immutable weight snapshot
    (:func:`repro.core.aggregator.publish_snapshot`) and streams the eval
    shards through the unified scheduler while round *r+1* trains, with
    results bit-identical to the barrier path (eval reads only the
    snapshot).  Wall-clock overlap needs the thread backend; serial and
    process degrade gracefully to the barrier behaviour.

    ``split_autoattack`` decomposes AutoAttack evaluation into
    independently scheduled FGSM/PGD/APGD ensemble-member shards (the
    combined worst-case ``aa`` column is still reported), shortening the
    eval critical path on wide machines.

    **Fault tolerance** (see ``docs/fault-tolerance.md``):
    ``journal_path`` writes an append-only JSONL event log of the run;
    ``checkpoint_every`` atomically snapshots the full run state every K
    rounds next to the journal (``<journal>.ckpt``), and
    :meth:`FederatedExperiment.resume` restarts from the last checkpoint
    **bit-identically** to an uninterrupted run (generic run loop only —
    FedProphet's cascade loop refuses).  ``fault_plan`` injects seeded,
    deterministic client faults (dropout / straggler / flaky-with-retry);
    ``client_timeout`` bounds how long the synchronous server waits
    (timed-out clients are dropped), ``max_client_retries`` bounds flaky
    retries, and a round whose surviving cohort falls below
    ``min_clients_per_round`` aborts deterministically (no training, an
    ``aborted`` history record).

    **Population engine** (see ``docs/architecture.md``):
    ``population_scheme`` picks how client shards are derived —
    ``"partition"`` is the legacy global partition pass (bit-identical to
    every pre-engine run), ``"virtual"`` derives each client's shard,
    sample count, and device profile from counter-derived
    ``(population seed, cid)`` streams with no global pass (O(cohort)
    memory and setup at any population size), and ``"auto"`` (default)
    picks ``partition`` while ``num_clients <= len(train)`` and
    ``virtual`` beyond it.  ``client_materialisation`` is an independent
    axis: ``"eager"`` (default) builds every :class:`FLClient` at init,
    ``"lazy"`` materialises on first touch into a bounded LRU of
    ``client_cache_size`` (None = O(cohort) default) — eviction cannot
    affect results, so lazy runs are bit-identical to eager ones.
    ``samples_per_client`` fixes the virtual shard size (None = derived
    from the dataset); ``availability_fraction`` / ``availability_period``
    give every client a deterministic periodic duty cycle that cohort
    sampling respects (see ``docs/fault-tolerance.md``).

    **Observability** (see ``docs/fault-tolerance.md``):
    ``metrics_path`` streams per-round / per-merge-event / per-eval JSONL
    metrics rows **live** during the run (flushed per event, so they can
    be tailed mid-run); ``status_port`` serves a read-only JSON status
    endpoint (current round, server version, simulated clock,
    fault/threat/cache counters) on a loopback daemon thread — port 0
    binds an ephemeral port, exposed as ``experiment.status_address``.
    Both are pure observability and non-semantic (they cannot affect
    results).  ``eval_every_merge`` (async mode, generic run loop only)
    evaluates the merged server state every K merge *events* — the
    accuracy-vs-server-version staleness curves — recorded in
    ``experiment.merge_evals`` and journalled as ``merge_eval`` events;
    it is semantic (it changes the journal and the merge-eval record).

    ``threat_plan`` injects seeded Byzantine clients (label-flip /
    backdoor data poisoning, sign-flip / Gaussian / model-replacement
    update poisoning — see :class:`repro.flsim.threats.ThreatPlan`);
    ``aggregation_rule`` picks the server's defence
    (:mod:`repro.flsim.robust_agg`): ``fedavg`` (default, bit-identical
    to the historical engine), ``median``, ``trimmed_mean`` (with
    ``trim_ratio``), ``krum``/``multi_krum`` (with ``krum_byzantine_f``),
    or ``norm_clip`` (with ``clip_norm``; None = adaptive median-norm
    radius).
    """

    num_clients: int = 100
    clients_per_round: int = 10
    local_iters: int = 30
    batch_size: int = 64
    lr: float = 0.005
    momentum: float = 0.9
    weight_decay: float = 1e-4
    lr_decay: float = 0.994
    rounds: int = 500
    train_pgd_steps: int = 10
    eps0: float = 8.0 / 255.0
    eval_pgd_steps: int = 20
    eval_every: int = 10
    eval_max_samples: int = 256
    eval_with_autoattack: bool = False
    seed: int = 0
    executor_backend: str = "serial"
    round_parallelism: Optional[int] = None
    fusion_width: int = 4
    eval_backend: Optional[str] = None
    eval_parallelism: Optional[int] = None
    aggregation_mode: str = "sync"
    max_staleness: int = 4
    pipeline_depth: int = 1
    overlap_eval: bool = False
    split_autoattack: bool = False
    journal_path: Optional[str] = None
    checkpoint_every: int = 0
    metrics_path: Optional[str] = None
    status_port: Optional[int] = None
    eval_every_merge: int = 0
    fault_plan: Optional[FaultPlan] = None
    client_timeout: Optional[float] = None
    max_client_retries: int = 2
    min_clients_per_round: int = 1
    threat_plan: Optional[ThreatPlan] = None
    aggregation_rule: str = "fedavg"
    trim_ratio: float = 0.2
    krum_byzantine_f: int = 1
    clip_norm: Optional[float] = None
    population_scheme: str = "auto"
    client_materialisation: str = "eager"
    client_cache_size: Optional[int] = None
    samples_per_client: Optional[int] = None
    availability_fraction: Optional[float] = None
    availability_period: int = 8

    def __post_init__(self):
        if self.clients_per_round > self.num_clients:
            warnings.warn(
                f"clients_per_round={self.clients_per_round} exceeds "
                f"num_clients={self.num_clients}; clamping to "
                f"{self.num_clients}",
                RuntimeWarning,
                stacklevel=2,
            )
            self.clients_per_round = self.num_clients
        if not (0 < self.lr_decay <= 1):
            raise ValueError("lr_decay must be in (0, 1]")
        if self.executor_backend not in BACKENDS:
            raise ValueError(
                f"executor_backend must be one of {BACKENDS}, "
                f"got {self.executor_backend!r}"
            )
        if self.round_parallelism is not None and self.round_parallelism < 1:
            raise ValueError("round_parallelism must be >= 1")
        if self.fusion_width < 1:
            raise ValueError("fusion_width must be >= 1")
        if self.eval_backend is not None and self.eval_backend not in BACKENDS:
            raise ValueError(
                f"eval_backend must be one of {BACKENDS} (or None to follow "
                f"executor_backend), got {self.eval_backend!r}"
            )
        if self.eval_parallelism is not None and self.eval_parallelism < 1:
            raise ValueError("eval_parallelism must be >= 1")
        if self.aggregation_mode not in ("sync", "async"):
            raise ValueError(
                f"aggregation_mode must be 'sync' or 'async', "
                f"got {self.aggregation_mode!r}"
            )
        if self.max_staleness < 0:
            raise ValueError("max_staleness must be >= 0")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        if self.pipeline_depth > 1 and self.aggregation_mode != "async":
            raise ValueError(
                "pipeline_depth > 1 requires aggregation_mode='async' "
                "(cross-round dispatch merges updates out of round order)"
            )
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0 (0 = off)")
        if self.checkpoint_every and not self.journal_path:
            raise ValueError(
                "checkpoint_every requires journal_path (checkpoints live "
                "next to the journal and resume() finds them through it)"
            )
        if self.status_port is not None and not (0 <= self.status_port <= 65535):
            raise ValueError("status_port must be in [0, 65535] (0 = ephemeral)")
        if self.eval_every_merge < 0:
            raise ValueError("eval_every_merge must be >= 0 (0 = off)")
        if self.eval_every_merge and self.aggregation_mode != "async":
            raise ValueError(
                "eval_every_merge requires aggregation_mode='async' (sync "
                "rounds have exactly one merge point; use eval_every)"
            )
        if isinstance(self.fault_plan, dict):
            self.fault_plan = FaultPlan(**self.fault_plan)
        if self.fault_plan is not None and not isinstance(self.fault_plan, FaultPlan):
            raise ValueError(
                f"fault_plan must be a FaultPlan (or a dict of its fields), "
                f"got {type(self.fault_plan).__name__}"
            )
        if self.client_timeout is not None and self.client_timeout <= 0:
            raise ValueError("client_timeout must be > 0 (or None)")
        if self.max_client_retries < 0:
            raise ValueError("max_client_retries must be >= 0")
        if self.min_clients_per_round < 1:
            raise ValueError("min_clients_per_round must be >= 1")
        if isinstance(self.threat_plan, dict):
            self.threat_plan = ThreatPlan(**self.threat_plan)
        if self.threat_plan is not None and not isinstance(
            self.threat_plan, ThreatPlan
        ):
            raise ValueError(
                f"threat_plan must be a ThreatPlan (or a dict of its fields), "
                f"got {type(self.threat_plan).__name__}"
            )
        if self.aggregation_rule not in AGGREGATION_RULES:
            raise ValueError(
                f"aggregation_rule must be one of {AGGREGATION_RULES}, "
                f"got {self.aggregation_rule!r}"
            )
        if not (0.0 <= self.trim_ratio < 0.5):
            raise ValueError("trim_ratio must be in [0, 0.5)")
        if self.krum_byzantine_f < 0:
            raise ValueError("krum_byzantine_f must be >= 0")
        if self.clip_norm is not None and self.clip_norm <= 0:
            raise ValueError("clip_norm must be > 0 (or None for adaptive)")
        if self.population_scheme not in POPULATION_SCHEMES:
            raise ValueError(
                f"population_scheme must be one of {POPULATION_SCHEMES}, "
                f"got {self.population_scheme!r}"
            )
        if self.client_materialisation not in MATERIALISATIONS:
            raise ValueError(
                f"client_materialisation must be one of {MATERIALISATIONS}, "
                f"got {self.client_materialisation!r}"
            )
        if self.client_cache_size is not None and self.client_cache_size < 1:
            raise ValueError("client_cache_size must be >= 1 (or None)")
        if self.samples_per_client is not None and self.samples_per_client < 1:
            raise ValueError("samples_per_client must be >= 1 (or None)")
        if self.availability_fraction is not None and not (
            0.0 < self.availability_fraction <= 1.0
        ):
            raise ValueError("availability_fraction must be in (0, 1] (or None)")
        if self.availability_period < 1:
            raise ValueError("availability_period must be >= 1")


@dataclass
class RoundRecord:
    """History entry: clock state and (optionally) accuracy at a round.

    ``aborted`` marks a round the fault plan cancelled (surviving cohort
    below ``min_clients_per_round``): no training happened, the model is
    unchanged, and the clock advanced only by the server's timeout wait.
    """

    round: int
    sim_time_s: float
    compute_s: float
    access_s: float
    eval: Optional[EvalResult] = None
    aborted: bool = False


@dataclass(frozen=True)
class AsyncMergeEvent:
    """One applied merge event of an asynchronous run (observability).

    ``staleness`` is the total server lag the event merged at (merge
    events applied since the round's base version — equal to ``event``,
    the intra-round index, at ``pipeline_depth=1``); ``base_version`` is
    the server version the event's clients trained from, and
    ``sim_time_s`` the simulated time the merge applied.  Every field is
    derived from the simulated latency model, so logs compare equal
    across backends and worker counts.
    """

    round: int
    event: int
    staleness: int
    client_ids: Tuple[int, ...]
    alpha: float
    base_version: int = 0
    sim_time_s: float = 0.0


@dataclass(frozen=True)
class MergeEvalRecord:
    """Accuracy of the merged server state at one server version.

    ``eval_every_merge`` samples the accuracy-vs-version staleness curve:
    ``version`` is the server's merge-event count *after* the triggering
    merge applied, ``round``/``event``/``staleness``/``sim_time_s``
    mirror that merge's :class:`AsyncMergeEvent`.  Like every async
    artefact, records compare equal across backends and worker counts.
    """

    version: int
    round: int
    event: int
    staleness: int
    sim_time_s: float
    eval: EvalResult


@dataclass
class AsyncRoundContext:
    """Everything an async merge rule may need about one dispatched round.

    Built *before* training from pure functions of the sampled clients
    and device states (costs, weights, experiment extras like FedRBN's
    AT-affordability flags), so the merge replay never depends on
    training output beyond the updates themselves.
    """

    round_idx: int
    clients: List[FLClient]
    states: List[Optional[DeviceState]]
    costs: List[LocalTrainingCost]
    weights: List[float]
    round_weight: float
    extra: Dict[str, Any] = field(default_factory=dict)


class FederatedExperiment(ABC):
    """Base class running the communication-round loop on a simulated clock."""

    name = "base"
    #: Whether this algorithm's aggregation rule has an asynchronous,
    #: staleness-bounded formulation (``aggregation_mode="async"``).
    #: Experiments opt in by implementing the ``async_*`` hook surface
    #: (jFAT, FedRBN, the partial-training family) or their own in-round
    #: merge replay (FedProphet); distillation-based baselines whose
    #: server step is inherently sequential opt out.
    supports_async_aggregation = False
    #: Whether async mode may pipeline across round boundaries
    #: (``pipeline_depth > 1``).  FedProphet turns this off: cascade_eval
    #: gates every round, so rounds cannot overlap.
    supports_cross_round_pipeline = True
    #: Whether periodic evaluation is purely observational (history only),
    #: and may therefore be overlapped with the next round's training.
    #: FedProphet turns this off: cascade_eval feeds APA and early-stop,
    #: putting evaluation on the algorithm's critical path.
    supports_overlap_eval = True
    #: Whether every state merge routes through :meth:`robust_aggregate` /
    #: :meth:`robust_masked_average`.  Experiments whose aggregation is
    #: not a weighted average of client states (e.g. ensemble
    #: distillation's logit averaging) set this False and refuse
    #: non-default ``aggregation_rule`` at init rather than ignore it.
    supports_robust_aggregation = True

    def __init__(
        self,
        task: SyntheticImageTask,
        model_builder: Callable[[np.random.Generator], CascadeModel],
        config: FLConfig,
        device_sampler: Optional[DeviceSampler] = None,
        latency_model: Optional[LatencyModel] = None,
    ):
        self.task = task
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.model_builder = model_builder
        self.global_model = model_builder(np.random.default_rng(config.seed + 7))
        self.device_sampler = device_sampler
        self.latency_model = latency_model if latency_model is not None else LatencyModel()

        # seed + 13 is the historical partition stream: the "partition"
        # scheme reproduces the pre-engine eager shards bit for bit.
        self.clients = ClientPopulation(
            task.train,
            num_clients=config.num_clients,
            seed=config.seed + 13,
            scheme=config.population_scheme,
            materialisation=config.client_materialisation,
            cache_size=config.client_cache_size,
            samples_per_client=config.samples_per_client,
            availability_fraction=config.availability_fraction,
            availability_period=config.availability_period,
            cohort_size=config.clients_per_round,
            pipeline_depth=config.pipeline_depth,
        )
        self.total_samples = self.clients.total_samples

        self.clock_s = 0.0
        self.total_compute_s = 0.0
        self.total_access_s = 0.0
        self.history: List[RoundRecord] = []

        if config.aggregation_mode == "async" and not self.supports_async_aggregation:
            raise ValueError(
                f"{type(self).__name__} does not support "
                f"aggregation_mode='async'; its aggregation rule has no "
                f"staleness-bounded formulation"
            )
        if config.pipeline_depth > 1 and not self.supports_cross_round_pipeline:
            raise ValueError(
                f"{type(self).__name__} does not support pipeline_depth > 1: "
                f"its per-round evaluation gates the next round (e.g. "
                f"cascade_eval feeding APA), so rounds cannot overlap"
            )
        if config.overlap_eval and not self.supports_overlap_eval:
            raise ValueError(
                f"{type(self).__name__} does not support overlap_eval: its "
                f"evaluation feeds back into training (e.g. APA/early-stop), "
                f"so evaluation is on the algorithmic critical path"
            )
        if config.checkpoint_every and type(self).run is not FederatedExperiment.run:
            raise ValueError(
                f"{type(self).__name__} overrides run() with a custom loop; "
                f"checkpoint/resume supports the generic run loop only "
                f"(set checkpoint_every=0; journalling and fault injection "
                f"still work)"
            )
        if config.eval_every_merge and type(self).run is not FederatedExperiment.run:
            raise ValueError(
                f"{type(self).__name__} overrides run() with a custom loop; "
                f"eval_every_merge hooks the generic cross-round pipeline's "
                f"merge events only (set eval_every_merge=0)"
            )
        self.executor = RoundExecutor(
            config.executor_backend,
            config.round_parallelism,
            fusion_width=config.fusion_width,
        )
        self.scheduler = FLScheduler(self.executor)
        self.eval_executor = EvalExecutor(
            RoundExecutor(
                config.eval_backend or config.executor_backend,
                config.eval_parallelism
                if config.eval_parallelism is not None
                else config.round_parallelism,
            )
        )
        self._slot_models: dict = {}
        self._overlap_models: dict = {}
        self._async_models: dict = {}
        self._async_model_lock = threading.Lock()
        self._pending_eval: Optional[Tuple[RoundRecord, PendingEval]] = None
        self._published = None  # latest PublishedWeights (double buffer)
        #: Applied merge events of every asynchronous round, in merge order.
        self.async_log: List[AsyncMergeEvent] = []
        #: Merge-event-granularity eval samples (``eval_every_merge``).
        self.merge_evals: List[MergeEvalRecord] = []
        self._last_pipeline_stats: Optional[Dict[str, int]] = None
        # Fault-tolerance state: the open journal, the current round's fault
        # verdict, and the resume cursor installed by resume().
        self._journal: Optional[RunJournal] = None
        self._round_faults: Optional[RoundFaults] = None
        self._resume_round: int = 0
        self._resume_async: Optional[Dict[str, Any]] = None
        # Threat state: the current round's Byzantine verdict and the
        # configured robust-aggregation rule (+ its per-merge stats sink,
        # drained into the journal by the run loops).
        self._round_threats: Optional[RoundThreats] = None
        self._robust = RobustAggregator.from_config(config)
        self._agg_stats: List[Dict[str, Any]] = []
        if config.aggregation_rule != "fedavg" and not self.supports_robust_aggregation:
            raise ValueError(
                f"{type(self).__name__} does not route its aggregation "
                f"through the robust-aggregation hooks; "
                f"aggregation_rule={config.aggregation_rule!r} would be "
                f"silently ignored (use 'fedavg')"
            )
        # Streaming observability: every _jlog event tees into the metrics
        # service (live JSONL + status endpoint).  Created at init so the
        # endpoint is reachable (state "init") before run() starts.
        self._metrics = None
        if config.metrics_path or config.status_port is not None:
            from repro.flsim.service import MetricsService

            self._metrics = MetricsService(
                metrics_path=config.metrics_path,
                status_port=config.status_port,
                parallelism=self.describe_parallelism(),
            )

    # -- executor workspaces -------------------------------------------------
    def _slot_model(self, slot: int) -> CascadeModel:
        """Model workspace for an executor slot.

        Slot 0 is the global model itself (the serial path and forked
        children, whose memory image is private, train directly on it);
        higher slots lazily build one replica each via ``model_builder`` so
        concurrent thread workers never share layer caches or parameters.
        Replicas persist across rounds; the experiment is responsible for
        syncing whatever state a work unit does not itself restore.
        """
        if slot == 0:
            return self.global_model
        model = self._slot_models.get(slot)
        if model is None:
            model = self.model_builder(np.random.default_rng(self.config.seed + 7))
            self._slot_models[slot] = model
        return model

    def _async_slot_model(self, slot: int) -> CascadeModel:
        """Model workspace for an async-pipeline work unit.

        Deliberately disjoint from the training slot models (slot 0 there
        *is* the live global model): with cross-round pipelining several
        rounds' clients run concurrently, and the global model must stay
        free for round-boundary evaluation of the merged server state.
        Every slot — including 0 — is a private replica; work units
        restore their full base snapshot before training, so a slot
        carries no state between tasks and which slot a task gets cannot
        affect results.  Creation is lock-guarded because concurrent
        groups lease slots on worker threads.
        """
        with self._async_model_lock:
            model = self._async_models.get(slot)
            if model is None:
                model = self.model_builder(np.random.default_rng(self.config.seed + 7))
                self._async_models[slot] = model
            return model

    # -- per-round helpers ---------------------------------------------------
    def _assert_sync_round(self) -> None:
        """Guard for synchronous ``run_round`` implementations.

        Under ``aggregation_mode="async"`` rounds are dispatched by
        :meth:`run` through the cross-round pipeline; calling a
        barrier-style ``run_round`` directly would silently perform
        synchronous aggregation with the async config ignored, so it
        fails loudly instead.  (FedProphet's ``run_round`` handles async
        itself and does not use this guard.)
        """
        if self.config.aggregation_mode == "async":
            raise RuntimeError(
                f"{type(self).__name__}.run_round is the synchronous path; "
                f"aggregation_mode='async' rounds are driven by run() "
                f"through the cross-round pipeline"
            )

    def lr_at(self, round_idx: int) -> float:
        return self.config.lr * (self.config.lr_decay**round_idx)

    def _client_rng(self, round_idx: int, cid: int) -> np.random.Generator:
        """The counter-derived RNG for one client's local training.

        A pure function of ``(seed, round, cid)`` — never of scheduling,
        slot, or backend — which is the root of the engine-wide
        bit-identity contract.  Every experiment's work units (sync and
        async alike) must draw from this one formula; do not inline it.
        """
        cfg = self.config
        return np.random.default_rng(cfg.seed * 1_000_003 + round_idx * 1009 + cid)

    def sample_round(
        self, round_idx: int
    ) -> Tuple[List[FLClient], List[Optional[DeviceState]]]:
        """Uniformly sample C participating clients and their device states.

        Sampling is O(cohort) at any population size (see
        :meth:`ClientPopulation.sample_ids`; small populations keep the
        historical ``rng.choice`` draw bit for bit), restricted to the
        round's available clients when ``availability_fraction`` is set.
        Selected clients materialise through the population's LRU.

        With an active ``fault_plan``, the sampled cohort is then filtered
        to the fault survivors (the fault RNG is a separate seeded stream,
        so the experiment's own sampling draws are untouched — a disabled
        plan reproduces the fault-free run bit for bit).  An aborted round
        (survivors below ``min_clients_per_round``) returns the *sampled*
        cohort unfiltered; callers check :meth:`_fault_aborted` before
        training.
        """
        cfg = self.config
        ids = self.clients.sample_ids(self.rng, cfg.clients_per_round, round_idx)
        selected = [self.clients.client(int(i)) for i in ids]
        if self.device_sampler is None:
            states: List[Optional[DeviceState]] = [None] * len(selected)
        elif self.clients.scheme == "virtual":
            # Virtual clients own a persistent counter-derived device
            # identity; the partition scheme keeps the sequential
            # per-round draws for bit-compat with historical seeds.
            states = [
                self.device_sampler.state_for(self.clients.seed, round_idx, c.cid)
                for c in selected
            ]
        else:
            states = list(self.device_sampler.sample_many(len(selected), self.rng))
        self._round_faults = None
        plan = cfg.fault_plan
        if plan is not None and plan.active:
            estimates = (
                self.fault_client_costs(round_idx, selected, states)
                if cfg.client_timeout is not None
                else None
            )
            faults = plan.plan_round(
                round_idx,
                [c.cid for c in selected],
                estimates,
                client_timeout=cfg.client_timeout,
                max_retries=cfg.max_client_retries,
                min_clients=cfg.min_clients_per_round,
            )
            self._round_faults = faults
            self._jlog(
                "faults",
                round=round_idx,
                sampled=[c.cid for c in selected],
                dropped=faults.dropped_cids,
                retries={selected[i].cid: n for i, n in faults.retries.items()},
                aborted=faults.aborted,
            )
            if not faults.aborted:
                selected = [selected[i] for i in faults.survivors]
                states = [states[i] for i in faults.survivors]
        self._round_threats = None
        tplan = cfg.threat_plan
        if tplan is not None and tplan.active and not self._fault_aborted():
            threats = tplan.plan_round(round_idx, [c.cid for c in selected])
            if threats.byzantine:
                self._round_threats = threats
                self._jlog(
                    "threats",
                    round=round_idx,
                    attack=threats.attack,
                    byzantine=list(threats.byzantine_cids),
                )
                if tplan.is_data_attack:
                    # Swap the Byzantine clients' shards for poisoned
                    # copies: every baseline then trains on them with no
                    # attack-specific code (num_samples is unchanged, so
                    # weights and costs stay honest-looking).
                    byz = set(threats.byzantine)
                    selected = [
                        FLClient(
                            cid=c.cid,
                            dataset=tplan.poison_dataset(
                                c.dataset, round_idx, c.cid,
                                self.task.num_classes,
                            ),
                        )
                        if i in byz
                        else c
                        for i, c in enumerate(selected)
                    ]
        self._jlog(
            "sample",
            round=round_idx,
            cids=[c.cid for c in selected],
            population=self.clients.num_clients,
            cache=self.clients.stats(),
        )
        return selected, states

    def fault_client_costs(
        self,
        round_idx: int,
        clients: List[FLClient],
        states: List[Optional[DeviceState]],
    ) -> Optional[List[Optional[float]]]:
        """Best-effort per-client latency estimate for ``client_timeout``.

        Total simulated seconds per sampled client, *before* training
        (the timeout decision must be pure).  Defaults to
        :meth:`async_client_costs` when the experiment implements it;
        experiments without a pre-training cost model return None and the
        timeout check is skipped.
        """
        try:
            costs = self.async_client_costs(round_idx, clients, states)
        except NotImplementedError:
            return None
        return [c.total_s for c in costs]

    def _fault_aborted(self) -> bool:
        """Whether the fault plan aborted the round just sampled."""
        return self._round_faults is not None and self._round_faults.aborted

    def _finish_aborted_round(self, round_idx: int, wait: bool = True) -> RoundRecord:
        """Record a fault-aborted round: no training, deterministic clock.

        A synchronous server (``wait=True``) sits out ``client_timeout``
        before abandoning the round (pure data-access/waiting time); the
        async server never waits on a round barrier, so its clock is
        untouched.
        """
        faults = self._round_faults
        self._round_faults = None
        floor = faults.timeout_floor_s if faults is not None else None
        if wait and floor is not None:
            self.clock_s += floor
            self.total_access_s += floor
        record = RoundRecord(
            round=round_idx,
            sim_time_s=self.clock_s,
            compute_s=self.total_compute_s,
            access_s=self.total_access_s,
            aborted=True,
        )
        self.history.append(record)
        self._jlog(
            "round", round=round_idx, sim_time_s=record.sim_time_s, aborted=True
        )
        return record

    def advance_clock(self, costs: Sequence[LocalTrainingCost]) -> None:
        """Synchronous FL: a round lasts as long as its slowest client.

        Consumes the pending :class:`RoundFaults` (if any): survivor costs
        are scaled by the fault latency (straggler slowdown, flaky
        retries + backoff), and a round that dropped clients lasts at
        least ``client_timeout`` — the server waits that long before
        giving up on the missing updates (charged as access/waiting time).
        """
        faults = self._round_faults
        self._round_faults = None
        floor: Optional[float] = None
        if faults is not None:
            costs = faults.scale_costs(costs)
            floor = faults.timeout_floor_s
        if not costs and floor is None:
            return
        if costs:
            bottleneck = max(costs, key=lambda c: c.total_s)
            compute, access = bottleneck.compute_s, bottleneck.access_s
        else:
            compute, access = 0.0, 0.0
        if floor is not None and floor > compute + access:
            access += floor - (compute + access)
        self.clock_s += compute + access
        self.total_compute_s += compute
        self.total_access_s += access

    # -- update-space threats + robust aggregation -----------------------------
    def _maybe_poison_update(
        self,
        round_idx: int,
        cid: int,
        update: Any,
        base: Dict[str, np.ndarray],
        threats: Optional[RoundThreats] = None,
    ) -> Any:
        """Apply the active update attack to one client's reported update."""
        plan = self.config.threat_plan
        threats = threats if threats is not None else self._round_threats
        if (
            plan is None
            or threats is None
            or not plan.is_update_attack
            or cid not in threats.byzantine_cids
        ):
            return update
        return plan.poison_update(update, base, round_idx, cid)

    def _threat_wrap(
        self,
        round_idx: int,
        fn: Callable,
        base: Dict[str, np.ndarray],
        threats: Optional[RoundThreats] = None,
    ) -> Callable:
        """Wrap a train work unit so Byzantine clients lie about their update.

        ``base`` is the round's training base (what the deltas are
        measured against); ``fn(item, slot)`` must take ``(client,
        device_state)`` items.  Honest rounds return ``fn`` unchanged, so
        an inactive plan costs nothing.  A :class:`~repro.flsim.executor.
        CohortFn` stays a ``CohortFn`` (same ``group_key``) with *both*
        paths wrapped — the poisoning applies to each client's extracted
        update after training, so cohort composition is unaffected.
        """
        plan = self.config.threat_plan
        threats = threats if threats is not None else self._round_threats
        if (
            plan is None
            or threats is None
            or not plan.is_update_attack
            or not threats.byzantine_cids
        ):
            return fn

        def poison(item, update):
            return self._maybe_poison_update(
                round_idx, item[0].cid, update, base, threats
            )

        if isinstance(fn, CohortFn):
            inner = fn

            def poisoned_item_fn(item, slot):
                return poison(item, inner.fn(item, slot))

            def poisoned_cohort_fn(items, slot):
                return [
                    poison(item, update)
                    for item, update in zip(items, inner.run_cohort(items, slot))
                ]

            return CohortFn(
                poisoned_item_fn, poisoned_cohort_fn, group_key=inner.group_key
            )

        def poisoned_fn(item, slot):
            return poison(item, fn(item, slot))

        return poisoned_fn

    def robust_aggregate(
        self,
        states: Sequence[Dict[str, np.ndarray]],
        weights: Sequence[float],
        keys: Optional[Sequence[str]] = None,
        base: Optional[Dict[str, np.ndarray]] = None,
    ) -> Dict[str, np.ndarray]:
        """Merge client states under the configured ``aggregation_rule``.

        The single funnel every baseline's state merge goes through (sync
        averages, async merge events, FedProphet per-module merges); rule
        stats are queued for the run loop's per-round ``agg`` journal
        event.  ``fedavg`` delegates to ``weighted_average_states``
        unchanged.
        """
        merged, stats = self._robust.aggregate(states, weights, keys=keys, base=base)
        if stats is not None:
            self._agg_stats.append(stats)
        return merged

    def robust_masked_average(
        self,
        global_state: Dict[str, np.ndarray],
        updates: Sequence[Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray], float]],
    ) -> Dict[str, np.ndarray]:
        """Masked-partial-average funnel (the partial-training family)."""
        merged, stats = masked_robust_average(global_state, updates, self._robust)
        if stats is not None:
            self._agg_stats.append(stats)
        return merged

    def _drain_agg_stats(self) -> List[Dict[str, Any]]:
        stats, self._agg_stats = self._agg_stats, []
        return stats

    def _jlog_agg(self, round_idx: int) -> None:
        """Journal the round's queued robust-aggregation stats (if any)."""
        stats = self._drain_agg_stats()
        if stats:
            self._jlog("agg", round=round_idx, events=stats)

    def _try_run_round(
        self,
        round_idx: int,
        clients: List[FLClient],
        states: List[Optional[DeviceState]],
    ) -> Optional[List[LocalTrainingCost]]:
        """Run one round, catching :class:`AggregationError` (-> None).

        The typed abort path for a fully-dropped cohort: the journal gets
        an ``agg_abort`` event and the caller records an aborted round
        instead of crashing the run on a bare ``ValueError``.
        """
        try:
            return self.run_round(round_idx, clients, states)
        except AggregationError as err:
            self._jlog("agg_abort", round=round_idx, error=str(err))
            self._drain_agg_stats()
            return None

    # -- main loop -------------------------------------------------------------
    @abstractmethod
    def run_round(
        self,
        round_idx: int,
        clients: List[FLClient],
        states: List[Optional[DeviceState]],
    ) -> List[LocalTrainingCost]:
        """Run one communication round; return per-client latency costs."""

    # -- asynchronous aggregation hooks ----------------------------------------
    # Experiments that set ``supports_async_aggregation`` and use the
    # generic run loop implement this surface; the cross-round pipeline in
    # :meth:`_run_async` drives it.  Every hook must be a pure function of
    # its inputs (plus counter-derived RNGs) so the merge replay stays
    # bit-identical across backends and worker counts.

    def async_client_fn(
        self, round_idx: int, base_state: Dict[str, np.ndarray]
    ) -> Callable:
        """The slot-aware work unit for one async round's clients.

        ``base_state`` is a private copy of the server state at the
        round's base version; the returned ``fn(item, slot)`` must
        restore it into ``self._async_slot_model(slot)`` (never the live
        global model — concurrent rounds share those workspaces), train,
        and return the client's update.
        """
        raise NotImplementedError(
            f"{type(self).__name__} declares supports_async_aggregation but "
            f"implements no async_client_fn"
        )

    def async_client_costs(
        self,
        round_idx: int,
        clients: List[FLClient],
        states: List[Optional[DeviceState]],
    ) -> List[LocalTrainingCost]:
        """Per-client simulated latency, computed *before* training.

        Pure arithmetic over the device states: the pipeline needs the
        costs up front to fix arrival order, merge schedule, and dispatch
        times.
        """
        raise NotImplementedError(
            f"{type(self).__name__} declares supports_async_aggregation but "
            f"implements no async_client_costs"
        )

    def async_client_weights(
        self,
        clients: List[FLClient],
        states: List[Optional[DeviceState]],
    ) -> List[float]:
        """Aggregation weight per client (default: local data size)."""
        return [float(client.num_samples) for client in clients]

    def async_round_extra(
        self,
        round_idx: int,
        clients: List[FLClient],
        states: List[Optional[DeviceState]],
    ) -> Dict[str, Any]:
        """Experiment-specific pre-training context for the merge rule.

        E.g. FedRBN precomputes which sampled clients can afford
        adversarial training (a pure function of the device states) so
        its dual-BN merge can weight adversarial statistics correctly.
        """
        return {}

    def async_server_state(self) -> Dict[str, np.ndarray]:
        """The initial async server state (a private full-state copy)."""
        return {k: v.copy() for k, v in self.global_model.state_dict().items()}

    def async_merge_event(
        self,
        server: Dict[str, np.ndarray],
        ctx: AsyncRoundContext,
        members: List[int],
        updates: List[Any],
        staleness: int,
    ) -> float:
        """Merge one event's updates into ``server`` in place.

        Default: full-model FedAsync (the event members' updates merged
        under the configured ``aggregation_rule`` — plain weighted
        average for ``fedavg`` — then mixed in at ``(event weight /
        round weight) / (1 + staleness)``), which is exact FedAvg for a
        single staleness-0 event.  ``norm_clip`` measures deltas against
        the server state *at merge time*, so a stale update's
        displacement is bounded where it actually lands.  Experiments
        with structured updates override (FedRBN's dual-BN statistics,
        the partial-training masked average).  Returns the applied
        mixing rate for the merge log.
        """
        from repro.core.aggregator import blend_into  # local: core imports flsim

        weights = [ctx.weights[i] for i in members]
        if ctx.round_weight <= 0:
            raise AggregationError("round weight must be positive")
        merged = self.robust_aggregate(updates, weights, base=server)
        alpha = (float(sum(weights)) / ctx.round_weight) / (1.0 + staleness)
        return blend_into(server, merged, alpha)

    def async_finalize(self, server: Dict[str, np.ndarray]) -> None:
        """Install the fully merged server state into the global model."""
        self.global_model.load_state_dict(server)

    def _merge_eval(self, server: Dict[str, np.ndarray], event: AsyncMergeEvent,
                    version: int) -> None:
        """Evaluate the merged server state at merge-event granularity.

        Runs on the main thread between merges (merges replay serially),
        loading ``server`` into the global model — safe mid-run because
        async work units train on the disjoint ``_async_models``
        workspaces and overlapped eval reads published snapshots.  Eval
        RNG streams are plan-derived (never ``self.rng``), so sampling
        the curve cannot perturb training results.
        """
        self.global_model.load_state_dict(server)
        result = self.evaluate()
        record = MergeEvalRecord(
            version=version,
            round=event.round,
            event=event.event,
            staleness=event.staleness,
            sim_time_s=event.sim_time_s,
            eval=result,
        )
        self.merge_evals.append(record)
        self._jlog(
            "merge_eval",
            version=version,
            round=event.round,
            event=event.event,
            staleness=event.staleness,
            sim_time_s=event.sim_time_s,
            clean_acc=result.clean_acc,
            pgd_acc=result.pgd_acc,
            aa_acc=result.aa_acc,
        )

    def _run_async(
        self, rounds: int, verbose: bool = False
    ) -> List[RoundRecord]:
        """The cross-round asynchronous run loop (``aggregation_mode="async"``).

        Drives a :class:`repro.flsim.scheduler.CrossRoundPipeline`: up to
        ``pipeline_depth`` rounds in flight, merge events replayed in
        simulated-arrival order into a server state dict, per-round base
        versions snapshotting the server for each round's clients.
        History records are created when a round's last event merges (at
        its simulated drain time) and sorted by round index before
        returning.  Bit-identical across backends at any worker count;
        ``pipeline_depth=1`` with ``max_staleness=0`` reproduces the
        synchronous loop exactly — records, evals, clock and all.
        """
        from repro.flsim.scheduler import CrossRoundPipeline

        cfg = self.config
        resume = self._resume_async
        self._resume_async = None
        start = self._resume_round
        self._resume_round = 0
        if resume is not None:
            server = {k: v.copy() for k, v in resume["server"].items()}
            history_start = resume["history_start"]
            bottlenecks = dict(resume["bottlenecks"])
            base_compute = resume["base_compute"]
            base_access = resume["base_access"]
        else:
            server = self.async_server_state()
            history_start = len(self.history)
            # Per-round bottleneck costs, recorded at dispatch (pure
            # arithmetic) so completion order cannot scramble the
            # cumulative accounting.
            bottlenecks = {}
            base_compute, base_access = self.total_compute_s, self.total_access_s

        def cumulative_cost(last_round: int) -> Tuple[float, float]:
            """Round-ordered cumulative compute/access through ``last_round``.

            Rounds complete in drain order, but the history's cumulative
            columns must accrue in *round* order (as the sync loop's
            ``advance_clock`` does) — otherwise a fast round r+1 draining
            before straggler round r would carry the wrong totals.
            """
            compute, access = base_compute, base_access
            for r in range(last_round + 1):
                cost = bottlenecks.get(r)
                if cost is not None:
                    compute += cost.compute_s
                    access += cost.access_s
            return compute, access

        def merge_event(ticket, members, staleness):
            ctx: AsyncRoundContext = ticket.meta
            updates = [ticket.updates[i] for i in members]
            alpha = self.async_merge_event(server, ctx, members, updates, staleness)
            agg_stats = self._drain_agg_stats()
            event = AsyncMergeEvent(
                round=ticket.round_idx,
                event=ticket.next_event,
                staleness=staleness,
                client_ids=tuple(ctx.clients[i].cid for i in members),
                alpha=alpha,
                base_version=ticket.base_version,
                sim_time_s=ticket.event_times[ticket.next_event],
            )
            self.async_log.append(event)
            payload = dict(
                round=event.round,
                event=event.event,
                staleness=event.staleness,
                client_ids=list(event.client_ids),
                alpha=event.alpha,
                base_version=event.base_version,
                sim_time_s=event.sim_time_s,
            )
            if agg_stats:
                payload["agg"] = agg_stats
            self._jlog("merge", **payload)
            if cfg.eval_every_merge:
                # Server version after this merge applied: merges replay
                # on the main thread in simulated-arrival order, so the
                # merge log's length *is* the version counter.
                version = len(self.async_log)
                if version % cfg.eval_every_merge == 0:
                    self._merge_eval(server, event, version)
            if self._metrics is not None:
                self._metrics.update_pipeline(pipeline.stats())

        def round_complete(ticket):
            t = ticket.round_idx
            drain = ticket.drain_time
            self.clock_s = max(self.clock_s, drain)
            compute, access = cumulative_cost(t)
            self.total_compute_s = max(self.total_compute_s, compute)
            self.total_access_s = max(self.total_access_s, access)
            record = RoundRecord(
                round=t,
                sim_time_s=drain,
                compute_s=compute,
                access_s=access,
            )
            if cfg.eval_every and (t + 1) % cfg.eval_every == 0:
                if self.overlap_active:
                    self._drain_overlapped_eval(verbose)
                    # round_complete only runs from inside pipeline calls,
                    # so the late-bound `pipeline` is always constructed.
                    self._submit_overlapped_eval(
                        record, state=server, version=pipeline.version
                    )
                else:
                    self.global_model.load_state_dict(server)
                    record.eval = self.evaluate()
                    self._journal_eval(record)
                    if verbose:  # pragma: no cover - console reporting
                        self._print_eval(record)
            self.history.append(record)
            self._jlog(
                "round",
                round=t,
                sim_time_s=record.sim_time_s,
                compute_s=record.compute_s,
                access_s=record.access_s,
                aborted=False,
            )
            if self._metrics is not None:
                self._metrics.update_pipeline(pipeline.stats())

        pipeline = CrossRoundPipeline(
            self.scheduler,
            max_staleness=cfg.max_staleness,
            depth=cfg.pipeline_depth,
            merge_event=merge_event,
            round_complete=round_complete,
        )
        if resume is not None:
            pipeline.restore_state(resume["pipeline"], self._restore_async_meta)

        for t in range(start, rounds):
            clients, states = self.sample_round(t)
            if self._fault_aborted():
                # The async server never waits on a round barrier: an
                # aborted round dispatches nothing and costs no clock.
                self._finish_aborted_round(t, wait=False)
            else:
                faults = self._round_faults
                self._round_faults = None
                costs = self.async_client_costs(t, clients, states)
                if faults is not None:
                    costs = faults.scale_costs(costs)
                weights = self.async_client_weights(clients, states)
                ctx = AsyncRoundContext(
                    round_idx=t,
                    clients=clients,
                    states=states,
                    costs=costs,
                    weights=weights,
                    round_weight=float(sum(weights)),
                    extra=self.async_round_extra(t, clients, states),
                )
                bottlenecks[t] = (
                    max(costs, key=lambda c: c.total_s) if costs else None
                )

                def fn_factory(ticket, _t=t, _threats=self._round_threats):
                    # Called after the pre-dispatch merge replay: the server
                    # now sits at this round's base version, so copy it as the
                    # round's immutable training base.  Byzantine clients lie
                    # relative to that same base (captured per round — later
                    # rounds must not see this round's verdict).
                    base = {k: v.copy() for k, v in server.items()}
                    return self._threat_wrap(
                        _t, self.async_client_fn(_t, base), base, threats=_threats
                    )

                ticket = pipeline.dispatch(
                    t,
                    list(zip(clients, states)),
                    [c.total_s for c in costs],
                    fn_factory,
                    meta=ctx,
                )
                if ticket is not None:
                    self._jlog(
                        "dispatch",
                        round=t,
                        base_version=ticket.base_version,
                        dispatch_time=ticket.dispatch_time,
                        cids=[c.cid for c in clients],
                    )
            if cfg.checkpoint_every and (t + 1) % cfg.checkpoint_every == 0:
                self._write_checkpoint(
                    t + 1,
                    async_state={
                        "server": {k: v.copy() for k, v in server.items()},
                        "history_start": history_start,
                        "base_compute": base_compute,
                        "base_access": base_access,
                        "bottlenecks": dict(bottlenecks),
                        "pipeline": pipeline.export_state(self._export_async_meta),
                    },
                )

        pipeline.drain_all()
        self._last_pipeline_stats = {
            "peak_in_flight": pipeline.peak_in_flight,
            "merge_events": pipeline.version,
        }
        self.async_finalize(server)
        self._drain_overlapped_eval(verbose)
        tail = sorted(self.history[history_start:], key=lambda r: r.round)
        self.history[history_start:] = tail
        return self.history

    # -- evaluation engine -----------------------------------------------------
    def eval_plan(
        self,
        max_samples: Optional[int] = None,
        with_autoattack: Optional[bool] = None,
        seed_offset: int = 99,
    ) -> EvalPlan:
        """The standard clean/PGD(/AA) plan under this experiment's config."""
        cfg = self.config
        return EvalPlan.standard(
            eps=cfg.eps0,
            pgd_steps=cfg.eval_pgd_steps,
            with_autoattack=(
                cfg.eval_with_autoattack if with_autoattack is None else with_autoattack
            ),
            max_samples=max_samples,
            seed=cfg.seed + seed_offset,
            split_autoattack=cfg.split_autoattack,
        )

    def _eval_target(self, slot: int) -> EvalTarget:
        """The evaluation target for an executor slot (the full model)."""
        return EvalTarget(ModelWithLoss(self._slot_model(slot)))

    # Eval-time mode applied to every slot model before shards run (state
    # that lives *outside* the state dict, e.g. FedRBN's dual-BN switch).
    # Subclasses override with a method; an explicit ``slot_setup`` argument
    # to :meth:`run_eval` takes precedence.
    _eval_slot_setup: Optional[Callable] = None

    def run_eval(
        self,
        plan: EvalPlan,
        dataset: Optional[ArrayDataset] = None,
        slot_setup: Optional[Callable] = None,
    ) -> EvalResult:
        """Submit an :class:`EvalPlan` to the sharded evaluation engine.

        Thread-slot replicas are synced to the current global weights
        before the parallel region; ``slot_setup(model)`` (default: the
        class's ``_eval_slot_setup`` hook) then applies any eval-time mode
        (e.g. FedRBN's dual-BN switch) to every slot model, keeping
        per-slot state identical across backends.
        """
        setup = slot_setup if slot_setup is not None else self._eval_slot_setup
        state: dict = {}

        def prepare(slot: int) -> None:
            model = self._slot_model(slot)
            if slot != 0:
                if "global" not in state:
                    state["global"] = self.global_model.state_dict()
                model.load_state_dict(state["global"])
            if setup is not None:
                setup(model)

        return self.eval_executor.run(
            plan,
            dataset if dataset is not None else self.task.test,
            self._eval_target,
            prepare_slot=prepare,
        )

    def evaluate(self, max_samples: Optional[int] = None) -> EvalResult:
        return self.run_eval(
            self.eval_plan(
                max_samples=(
                    max_samples if max_samples is not None else self.config.eval_max_samples
                )
            )
        )

    # -- eval/training overlap -------------------------------------------------
    def _overlap_slot_model(self, slot: int) -> CascadeModel:
        """Eval-only model workspaces for overlapped evaluation.

        Deliberately disjoint from the training slot models (slot 0 there
        *is* the live global model): overlapped eval shards run while the
        next round trains, so every overlap slot — including 0 — is a
        private replica loaded from the published snapshot.
        """
        model = self._overlap_models.get(slot)
        if model is None:
            model = self.model_builder(np.random.default_rng(self.config.seed + 7))
            self._overlap_models[slot] = model
        return model

    def _submit_overlapped_eval(
        self,
        record: RoundRecord,
        state: Optional[Dict[str, np.ndarray]] = None,
        version: Optional[int] = None,
    ) -> None:
        """Publish the current weights and stream this round's eval shards.

        The snapshot is immutable (read-only arrays), so round *r+1* can
        mutate the live model underneath the in-flight shards; the result
        is bit-identical to the barrier path because the shards see
        exactly the weights the barrier eval would have seen.  ``state``
        (the async pipeline's server dict) publishes a server state that
        never lives in the global model; ``version`` defaults to the
        round index (the async path passes the server's merge-event
        count instead, so the snapshot names the exact merge frontier it
        captured).
        """
        from repro.core.aggregator import publish_snapshot  # local: core imports flsim

        self._published = publish_snapshot(
            self.global_model if state is None else state,
            version=record.round if version is None else version,
        )
        snapshot = self._published
        setup = self._eval_slot_setup
        plan = self.eval_plan(max_samples=self.config.eval_max_samples)

        def prepare(slot: int) -> None:
            model = self._overlap_slot_model(slot)
            model.load_state_dict(snapshot.state)
            if setup is not None:
                setup(model)

        def target(slot: int) -> EvalTarget:
            return EvalTarget(ModelWithLoss(self._overlap_slot_model(slot)))

        pending = self.eval_executor.submit(
            plan, self.task.test, target, self.scheduler, prepare_slot=prepare
        )
        self._pending_eval = (record, pending)

    def _drain_overlapped_eval(self, verbose: bool = False) -> None:
        """Resolve the in-flight overlapped eval into its round record."""
        if self._pending_eval is None:
            return
        record, pending = self._pending_eval
        self._pending_eval = None
        record.eval = pending.result()
        self._journal_eval(record)
        if verbose:  # pragma: no cover - console reporting
            self._print_eval(record)

    def _print_eval(self, record: RoundRecord) -> None:  # pragma: no cover
        e = record.eval
        print(
            f"[{self.name}] round {record.round + 1}: clean={e.clean_acc:.3f} "
            f"pgd={e.pgd_acc if e.pgd_acc is None else round(e.pgd_acc, 3)} "
            f"time={record.sim_time_s:.1f}s"
        )

    @property
    def overlap_active(self) -> bool:
        """Whether periodic evaluation actually pipelines with training.

        Overlap streams eval shards through the *round* executor's
        persistent pool (that is the point: idle round workers absorb
        them), so it only buys concurrency on a multi-worker pooled
        backend (``thread`` or ``batched``).  Otherwise — serial,
        process, or a one-worker pool — the run loop falls back to the
        barrier path, which honours ``eval_backend``/``eval_parallelism``.
        """
        return self.config.overlap_eval and self.executor.pooled

    def describe_parallelism(self) -> str:
        """The resolved execution-engine settings, for verbose reporting."""
        cfg = self.config
        ex, ev = self.executor, self.eval_executor.executor
        if self.overlap_active:
            overlap = "on (eval shards share the round pool)"
        elif cfg.overlap_eval:
            overlap = "requested (inactive: needs a pooled round backend)"
        else:
            overlap = "off"
        engine = f"round engine: {ex.backend} x{ex.max_workers}"
        if ex.backend == "batched":
            engine += (
                f" (fusion width {ex.fusion_width}; homogeneous clients "
                f"fuse into stacked cohorts, others fall back per item)"
            )
        pop = self.clients
        cap = pop.cache_capacity
        stats = pop.stats()
        population = (
            f"population: {pop.num_clients} clients ({pop.scheme}, "
            f"{pop.materialisation}, cache cap "
            f"{'unbounded' if cap is None else cap}, live {stats['live']}, "
            f"peak {stats['peak_live']}, hits {stats['hits']}, "
            f"evictions {stats['evictions']})"
        )
        parts = [
            engine,
            population,
            f"eval engine: {ev.backend} x{ev.max_workers}",
            f"aggregation: {cfg.aggregation_mode}"
            + (
                f" (max_staleness={cfg.max_staleness}, "
                f"pipeline_depth={cfg.pipeline_depth})"
                if cfg.aggregation_mode == "async"
                else ""
            ),
            f"eval overlap: {overlap}",
        ]
        return f"[{self.name}] " + "; ".join(parts)

    def close(self) -> None:
        """Drain in-flight work and release the persistent worker pools."""
        self._drain_overlapped_eval()
        self.executor.close()
        self.eval_executor.executor.close()
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        if self._metrics is not None:
            self._metrics.close()

    def __enter__(self) -> "FederatedExperiment":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- journalling, checkpointing, resume ------------------------------------
    def _jlog(self, kind: str, **payload) -> None:
        """Log one run event: journal append + metrics-service tee.

        The journal may be off while the metrics service is on (and vice
        versa); both sinks see identical payloads, all emitted from the
        main run thread in deterministic program order.
        """
        if self._journal is not None:
            self._journal.append(kind, **payload)
        if self._metrics is not None:
            self._metrics.observe(kind, payload)

    @property
    def status_address(self) -> Optional[str]:
        """The live status endpoint's base URL (None when off)."""
        return self._metrics.address if self._metrics is not None else None

    def _journal_eval(self, record: RoundRecord) -> None:
        if record.eval is not None:
            self._jlog(
                "eval",
                round=record.round,
                clean_acc=record.eval.clean_acc,
                pgd_acc=record.eval.pgd_acc,
                aa_acc=record.eval.aa_acc,
            )

    def _fingerprint(self) -> str:
        from repro.flsim.checkpoint import config_fingerprint

        return config_fingerprint(self.config, self.name)

    def _run_start_payload(self) -> Dict[str, Any]:
        """The ``run_start`` event body (shared by journal and replay)."""
        pop = self.clients
        return dict(
            fingerprint=self._fingerprint(),
            experiment=self.name,
            rounds=self.config.rounds,
            mode=self.config.aggregation_mode,
            population=pop.num_clients,
            cohort=self.config.clients_per_round,
            scheme=pop.scheme,
            materialisation=pop.materialisation,
            cache_capacity=pop.cache_capacity,
        )

    def _open_journal(self) -> None:
        """Start a fresh journal for this run (if configured, once)."""
        if self.config.journal_path is None or self._journal is not None:
            # Journal off (or a replay verifier pre-installed): the
            # metrics service still wants its run_start marker.
            if self._metrics is not None and self.config.journal_path is None:
                self._metrics.observe("run_start", self._run_start_payload())
            return
        self._journal = RunJournal.create(self.config.journal_path)
        self._jlog("run_start", **self._run_start_payload())

    def _abort_cleanup(self) -> None:
        """Best-effort teardown when the run loop raises.

        An aborted run must not leak the persistent worker pools (the
        executor context-manager contract), and the journal records the
        abort so a later read tells a crash (torn tail / no ``run_end``)
        apart from a Python-level failure.
        """
        self._pending_eval = None
        for closer in (self.executor.close, self.eval_executor.executor.close):
            try:
                closer()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        try:
            self._jlog("run_abort")
            if self._journal is not None:
                self._journal.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass
        self._journal = None
        if self._metrics is not None:
            try:
                self._metrics.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass

    def _checkpoint_path(self) -> str:
        base = (
            self._journal.path if self._journal is not None
            else self.config.journal_path
        )
        return base + ".ckpt"

    def _write_checkpoint(
        self, next_round: int, async_state: Optional[Dict[str, Any]] = None
    ) -> None:
        """Atomically snapshot everything the run loop needs to continue.

        Overlapped eval is drained first (its record is already in the
        history, so the snapshot must carry the resolved result — eval
        results are data, not replayable bookkeeping).  ``async_state``
        carries the async loop's extra bookkeeping; the sync loop
        snapshots the global model directly.
        """
        from repro.flsim.checkpoint import CHECKPOINT_FORMAT, write_checkpoint

        self._drain_overlapped_eval()
        payload: Dict[str, Any] = {
            "format": CHECKPOINT_FORMAT,
            "fingerprint": self._fingerprint(),
            "next_round": next_round,
            "mode": self.config.aggregation_mode,
            "rng_state": self.rng.bit_generator.state,
            "clock_s": self.clock_s,
            "total_compute_s": self.total_compute_s,
            "total_access_s": self.total_access_s,
            "history": list(self.history),
            "async_log": list(self.async_log),
            "merge_evals": list(self.merge_evals),
            "global_state": (
                {k: v.copy() for k, v in self.global_model.state_dict().items()}
                if async_state is None
                else None
            ),
            "async": async_state,
        }
        path = self._checkpoint_path()
        write_checkpoint(path, payload)
        self._jlog(
            "checkpoint", next_round=next_round, path=os.path.basename(path)
        )

    def _restore_from_checkpoint(self, payload: Dict[str, Any]) -> None:
        self.rng.bit_generator.state = payload["rng_state"]
        self.clock_s = payload["clock_s"]
        self.total_compute_s = payload["total_compute_s"]
        self.total_access_s = payload["total_access_s"]
        self.history[:] = payload["history"]
        self.async_log[:] = payload["async_log"]
        # Additive field: checkpoints written before merge-eval existed
        # restore to an empty curve.
        self.merge_evals[:] = payload.get("merge_evals", [])
        if payload["async"] is None:
            self.global_model.load_state_dict(payload["global_state"])
        else:
            self._resume_async = payload["async"]
        self._resume_round = payload["next_round"]

    def _export_async_meta(self, ctx: AsyncRoundContext) -> Dict[str, Any]:
        """Flatten a round context for pickling (clients/states by id).

        Device states are consumed at dispatch (costs, weights, extra are
        all derived before training), so the snapshot keeps only what the
        merge rule reads: client ids, costs, weights, and ``extra``.
        """
        return {
            "round_idx": ctx.round_idx,
            "cids": [c.cid for c in ctx.clients],
            "costs": [(c.compute_s, c.access_s) for c in ctx.costs],
            "weights": list(ctx.weights),
            "round_weight": ctx.round_weight,
            "extra": ctx.extra,
        }

    def _restore_async_meta(self, data: Dict[str, Any]) -> AsyncRoundContext:
        return AsyncRoundContext(
            round_idx=data["round_idx"],
            clients=[self.clients[cid] for cid in data["cids"]],
            states=[None] * len(data["cids"]),
            costs=[LocalTrainingCost(*c) for c in data["costs"]],
            weights=list(data["weights"]),
            round_weight=data["round_weight"],
            extra=data["extra"],
        )

    def resume(
        self,
        journal_path: Optional[str] = None,
        rounds: Optional[int] = None,
        verbose: bool = False,
    ) -> List[RoundRecord]:
        """Continue an interrupted run from its journal's last checkpoint.

        Call on a **freshly constructed** experiment with the same
        semantic config (the journal's fingerprint is checked; execution
        backend and worker counts may differ — the determinism contract
        makes them irrelevant).  Produces bit-identical final weights,
        history, and merge log to the uninterrupted run.  A journal with
        no checkpoint yet simply restarts the (deterministic) run from
        round zero.
        """
        from repro.flsim.checkpoint import read_checkpoint

        if type(self).run is not FederatedExperiment.run:
            raise RuntimeError(
                f"{type(self).__name__} overrides run(); resume supports the "
                f"generic run loop only"
            )
        path = journal_path if journal_path is not None else self.config.journal_path
        if path is None:
            raise ValueError("resume needs a journal path (argument or config)")
        if self.history:
            raise RuntimeError("resume must be called on a fresh experiment")
        events = RunJournal.read(path)
        if not events or events[0].get("kind") != "run_start":
            raise JournalError(f"{path}: journal does not start with run_start")
        fingerprint = self._fingerprint()
        if events[0].get("fingerprint") != fingerprint:
            raise JournalError(
                f"{path}: journal fingerprint {events[0].get('fingerprint')} "
                f"does not match this experiment's config ({fingerprint}); "
                f"only non-semantic fields (backends, worker counts, paths) "
                f"may change across a resume"
            )
        ckpt_event = RunJournal.last_checkpoint(events)
        if ckpt_event is None:
            # Crashed before the first checkpoint: the run is deterministic,
            # so replaying from scratch *is* the resume.
            return self.run(rounds, verbose)
        ckpt_path = os.path.join(
            os.path.dirname(os.path.abspath(path)), ckpt_event["path"]
        )
        payload = read_checkpoint(ckpt_path)
        if payload["fingerprint"] != fingerprint:
            raise JournalError(
                f"{ckpt_path}: checkpoint fingerprint does not match this "
                f"experiment's config"
            )
        self._restore_from_checkpoint(payload)
        self._journal = RunJournal.resume_open(path)
        self._jlog("resume", next_round=payload["next_round"])
        return self.run(rounds, verbose)

    def run(self, rounds: Optional[int] = None, verbose: bool = False) -> List[RoundRecord]:
        rounds = rounds if rounds is not None else self.config.rounds
        self._open_journal()
        try:
            if self.config.aggregation_mode == "async":
                records = self._run_async(rounds, verbose)
            else:
                records = self._run_sync(rounds, verbose)
        except BaseException:
            self._abort_cleanup()
            raise
        self._jlog("run_end", rounds=rounds, clock_s=self.clock_s)
        return records

    def _run_sync(self, rounds: int, verbose: bool = False) -> List[RoundRecord]:
        cfg = self.config
        start = self._resume_round
        self._resume_round = 0
        for t in range(start, rounds):
            clients, states = self.sample_round(t)
            if self._fault_aborted():
                self._finish_aborted_round(t)
            elif (costs := self._try_run_round(t, clients, states)) is None:
                # A round with nothing to aggregate (AggregationError:
                # every update rejected or dropped) aborts like a
                # fault-aborted round: model unchanged, run continues.
                self._finish_aborted_round(t)
            else:
                self.advance_clock(costs)
                self._jlog_agg(t)
                record = RoundRecord(
                    round=t,
                    sim_time_s=self.clock_s,
                    compute_s=self.total_compute_s,
                    access_s=self.total_access_s,
                )
                if cfg.eval_every and (t + 1) % cfg.eval_every == 0:
                    if self.overlap_active:
                        # Double buffer: at most one eval in flight — resolve
                        # round r-k's shards before publishing round r's.
                        self._drain_overlapped_eval(verbose)
                        self._submit_overlapped_eval(record)
                    else:
                        record.eval = self.evaluate()
                        self._journal_eval(record)
                        if verbose:  # pragma: no cover - console reporting
                            self._print_eval(record)
                self.history.append(record)
                self._jlog(
                    "round",
                    round=t,
                    sim_time_s=record.sim_time_s,
                    compute_s=record.compute_s,
                    access_s=record.access_s,
                    aborted=False,
                )
            if cfg.checkpoint_every and (t + 1) % cfg.checkpoint_every == 0:
                self._write_checkpoint(t + 1)
        self._drain_overlapped_eval(verbose)
        return self.history

    def final_eval(self, max_samples: Optional[int] = None) -> EvalResult:
        """Full evaluation (with AutoAttack) of the final model."""
        return self.run_eval(
            self.eval_plan(max_samples=max_samples, with_autoattack=True, seed_offset=999)
        )
