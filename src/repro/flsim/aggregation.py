"""Server-side aggregation rules."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.dtype import accum_dtype

StateDict = Dict[str, np.ndarray]


class AggregationError(ValueError):
    """Aggregation received an unusable input set.

    Raised (instead of a bare ``ValueError``) when there is nothing to
    aggregate — e.g. every sampled client dropped out of a round — so run
    loops can catch the condition specifically and abort the round
    cleanly instead of crashing the run.
    """


def weighted_average_states(
    states: Sequence[StateDict],
    weights: Sequence[float],
    keys: Optional[Sequence[str]] = None,
) -> StateDict:
    """Weighted elementwise average of state dicts with identical keys.

    ``keys`` restricts the average to a subset of keys (each state may then
    hold a superset) — the partial-average aggregator passes each module's
    key list directly so no intermediate per-trainer sub-dicts are built.
    The accumulation is in place into one output array per key.

    Raises :class:`AggregationError` on an empty ``states`` (a fully
    dropped round) or non-positive total weight.
    """
    if not states:
        raise AggregationError(
            "cannot aggregate an empty set of client updates "
            "(did every sampled client drop out?)"
        )
    if len(states) != len(weights):
        raise ValueError("states and weights length mismatch")
    total = float(sum(weights))
    if total <= 0:
        raise AggregationError("weights must sum to a positive value")
    out: StateDict = {}
    for key in states[0] if keys is None else keys:
        acc = np.zeros_like(states[0][key], dtype=accum_dtype(*(s[key] for s in states)))
        for state, w in zip(states, weights):
            acc += (w / total) * state[key]
        out[key] = acc
    return out


def fedavg(states: Sequence[StateDict], num_samples: Sequence[int]) -> StateDict:
    """FedAvg (McMahan et al., 2017): average weighted by local data size."""
    return weighted_average_states(states, [float(n) for n in num_samples])


def masked_partial_average(
    global_state: StateDict,
    updates: Sequence[Tuple[StateDict, StateDict, float]],
) -> StateDict:
    """Partial average for sub-model training (HeteroFL/FedRolex/FedProphet).

    Each update is ``(scattered_state, mask, weight)`` where
    ``scattered_state`` has the *global* shapes with zeros outside the
    trained region and ``mask`` is 1 where the client actually trained.
    Entries covered by no client keep their previous global value (Eq. 16).
    Raises :class:`AggregationError` when ``updates`` is empty.
    """
    if not updates:
        raise AggregationError(
            "cannot aggregate an empty set of partial updates "
            "(did every sampled client drop out?)"
        )
    out: StateDict = {}
    for key, g in global_state.items():
        dtype = accum_dtype(g, *(s[key] for s, _, _ in updates if key in s))
        num = np.zeros_like(g, dtype=dtype)
        den = np.zeros_like(g, dtype=dtype)
        for state, mask, w in updates:
            if key in state:
                num += w * state[key]
                den += w * mask[key]
        covered = den > 0
        merged = np.array(g, dtype=dtype)
        merged[covered] = num[covered] / den[covered]
        out[key] = merged
    return out
