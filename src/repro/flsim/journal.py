"""Append-only JSONL run journal: the crash-tolerant record of a run.

One JSON object per line, flushed to the OS after every event, so a
``SIGKILL`` loses at most the line being written (a torn tail is
tolerated on read).  The journal is pure observability *plus* the resume
index: it names the config fingerprint the run was started with and the
checkpoint files written along the way, which is everything
:meth:`~repro.flsim.base.FederatedExperiment.resume` needs to restart a
run from its last consistent state.

Event kinds written by the run loops (all from the main thread, in
deterministic program order):

========== ==============================================================
kind        payload
========== ==============================================================
run_start   ``fingerprint``, ``experiment``, ``rounds``, ``mode``, plus
            the population shape: ``population``, ``cohort``, ``scheme``,
            ``materialisation``, ``cache_capacity``
sample      ``round``, ``cids`` (the cohort that will train),
            ``population``, ``cache`` (hit/miss/eviction/live counters of
            the client LRU at sampling time)
faults      ``round``, ``sampled``, ``dropped``, ``retries``, ``aborted``
threats     ``round``, ``attack``, ``byzantine`` (cids marked this round)
dispatch    async: ``round``, ``base_version``, ``dispatch_time``, ``cids``
merge       async: mirrors one ``AsyncMergeEvent`` (+``agg`` rule stats)
merge_eval  async: merged-server accuracy at a server ``version``
            (``eval_every_merge`` — the staleness-curve sample points)
agg         ``round``, ``events`` (robust-rule rejection/clipping stats)
agg_abort   ``round``, ``error`` (an ``AggregationError`` ended the round)
round       ``round``, ``sim_time_s`` (+cumulative costs, ``aborted``)
eval        ``round``, ``clean_acc``, ``pgd_acc``, ``aa_acc``
checkpoint  ``next_round``, ``path`` (basename, relative to the journal)
resume      ``next_round`` (a resumed process took over here)
run_end     ``rounds``, ``clock_s``
========== ==============================================================
"""

from __future__ import annotations

import json
import os
from typing import List, Optional


class JournalError(RuntimeError):
    """A journal could not be read, or does not match the experiment."""


#: The closed set of event kinds the run loops emit.  The writer refuses
#: unknown kinds (a typo would silently corrupt the replay contract) and
#: the reader refuses files containing them (they are not run journals —
#: or they were written by a newer schema this reader cannot replay).
KNOWN_KINDS = frozenset(
    {
        "run_start",
        "sample",
        "faults",
        "threats",
        "dispatch",
        "merge",
        "merge_eval",
        "agg",
        "agg_abort",
        "round",
        "eval",
        "checkpoint",
        "resume",
        "run_end",
        "run_abort",
    }
)


class RunJournal:
    """Append-only JSONL event log with monotonically increasing ``seq``."""

    def __init__(self, path: str, mode: str = "w"):
        if mode not in ("w", "a"):
            raise ValueError(f"journal mode must be 'w' or 'a', got {mode!r}")
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        seq = 0
        if mode == "a" and os.path.exists(path):
            seq = len(self.read(path))
        self.path = path
        self._file = open(path, mode, encoding="utf-8")
        self._seq = seq

    @classmethod
    def create(cls, path: str) -> "RunJournal":
        """Start a fresh journal (truncates any previous run's log)."""
        return cls(path, "w")

    @classmethod
    def resume_open(cls, path: str) -> "RunJournal":
        """Reopen an existing journal for appending (the resume path)."""
        if not os.path.exists(path):
            raise JournalError(f"journal not found: {path}")
        return cls(path, "a")

    def append(self, kind: str, **payload) -> None:
        """Write one event and flush it to the OS (crash-tolerant)."""
        if kind not in KNOWN_KINDS:
            raise ValueError(
                f"unknown journal event kind {kind!r} "
                f"(known: {sorted(KNOWN_KINDS)})"
            )
        record = {"seq": self._seq, "kind": kind}
        record.update(payload)
        self._file.write(json.dumps(record) + "\n")
        self._file.flush()
        self._seq += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    # -- readers -------------------------------------------------------------
    @staticmethod
    def read(path: str) -> List[dict]:
        """Parse a journal; a torn *final* line (crash artefact) is dropped.

        A malformed line anywhere else means the file is not an
        append-only journal and raises :class:`JournalError`.  The
        writer's ``seq`` counter is contiguous from 0, so the reader also
        verifies it: a gap, repeat, or missing ``seq`` mid-file (silent
        corruption a JSON parse alone cannot see — e.g. a torn *middle*
        page after a crashed overwrite) raises :class:`JournalError`
        naming the expected and found seq, and resume refuses cleanly
        instead of continuing from a hole.  An event whose ``kind`` is
        not in :data:`KNOWN_KINDS` likewise raises, naming the line.
        """
        events: List[dict] = []
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break  # torn tail from a mid-write kill
                raise JournalError(
                    f"{path}: malformed journal line {i + 1} "
                    f"(expected seq {len(events)})"
                ) from None
            expected = len(events)
            got = event.get("seq") if isinstance(event, dict) else None
            if got != expected:
                raise JournalError(
                    f"{path}: journal line {i + 1} has seq {got!r}, "
                    f"expected {expected} (mid-file corruption?)"
                )
            kind = event.get("kind")
            if kind not in KNOWN_KINDS:
                raise JournalError(
                    f"{path}: journal line {i + 1} (seq {expected}) has "
                    f"unknown event kind {kind!r}"
                )
            events.append(event)
        return events

    @staticmethod
    def last_checkpoint(events: List[dict]) -> Optional[dict]:
        """The most recent ``checkpoint`` event, or None."""
        for event in reversed(events):
            if event.get("kind") == "checkpoint":
                return event
        return None
