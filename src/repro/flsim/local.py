"""Local training procedures shared by the FL algorithms."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.attacks import ModelWithLoss, PGDConfig, pgd_attack
from repro.attacks.base import CohortModelWithLoss
from repro.attacks.pgd import cohort_pgd_attack
from repro.data.dataset import ArrayDataset, DataLoader
from repro.nn.cohort import CohortCrossEntropyLoss
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.optim.sgd import SGD


def _loader(dataset: ArrayDataset, batch_size: int, rng: np.random.Generator) -> DataLoader:
    return DataLoader(dataset, batch_size=min(batch_size, len(dataset)), shuffle=True, rng=rng)


def standard_local_train(
    model: Module,
    dataset: ArrayDataset,
    iterations: int,
    batch_size: int,
    lr: float,
    momentum: float = 0.9,
    weight_decay: float = 1e-4,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """E iterations of plain local SGD; returns the mean training loss."""
    rng = rng if rng is not None else np.random.default_rng(0)
    model.train()
    opt = SGD(model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay)
    ce = CrossEntropyLoss()
    losses = []
    batches = _loader(dataset, batch_size, rng).infinite()
    for _ in range(iterations):
        x, y = next(batches)
        opt.zero_grad()
        loss = ce(model(x), y)
        model.backward(ce.backward())
        opt.step()
        losses.append(loss)
    return float(np.mean(losses)) if losses else 0.0


def adversarial_local_train(
    model: Module,
    dataset: ArrayDataset,
    iterations: int,
    batch_size: int,
    lr: float,
    pgd: PGDConfig,
    momentum: float = 0.9,
    weight_decay: float = 1e-4,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """E iterations of PGD adversarial training (Madry et al., 2017).

    Each iteration generates adversarial examples with the *current* model
    (train mode, as is standard), then takes one SGD step on them.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    model.train()
    opt = SGD(model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay)
    ce = CrossEntropyLoss()
    mwl = ModelWithLoss(model)
    losses = []
    batches = _loader(dataset, batch_size, rng).infinite()
    for _ in range(iterations):
        x, y = next(batches)
        x_adv = pgd_attack(mwl, x, y, pgd, rng=rng)
        opt.zero_grad()
        loss = ce(model(x_adv), y)
        model.backward(ce.backward())
        opt.step()
        losses.append(loss)
    return float(np.mean(losses)) if losses else 0.0


# ---------------------------------------------------------------------------
# Client-batched (fusion cohort) trainers — the batched executor backend
# ---------------------------------------------------------------------------
# These run K clients through one stacked model (slabs installed via
# repro.nn.cohort).  Per-client RNG streams are preserved exactly: each
# client owns its loader (epoch permutations) and its PGD random starts,
# drawn in the serial order (permutation at epoch boundaries, then the
# attack init, per iteration).  Cohort members must share (shard size,
# effective batch size) so every iteration concatenates K equal-size
# batches and epoch boundaries stay aligned — the executor's grouping key
# guarantees this.


def _cohort_batches(loaders):
    """One iteration's stacked batch: K equal-size per-client batches."""
    xs, ys = [], []
    for it in loaders:
        x, y = next(it)
        xs.append(x)
        ys.append(y)
    return np.concatenate(xs), np.concatenate(ys)


def _per_client_means(losses: List[np.ndarray], k: int) -> List[float]:
    if not losses:
        return [0.0] * k
    return [float(np.mean([step[i] for step in losses])) for i in range(k)]


def cohort_standard_local_train(
    model: Module,
    datasets: Sequence[ArrayDataset],
    iterations: int,
    batch_size: int,
    lr: float,
    momentum: float = 0.9,
    weight_decay: float = 1e-4,
    rngs: Optional[Sequence[np.random.Generator]] = None,
) -> List[float]:
    """K clients' :func:`standard_local_train`, one stacked model pass each.

    Bit-identical per client to the serial trainer; returns the K mean
    training losses in cohort order.
    """
    k = len(datasets)
    model.train()
    opt = SGD(model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay)
    ce = CohortCrossEntropyLoss(k)
    losses: List[np.ndarray] = []
    loaders = [
        _loader(ds, batch_size, rng).infinite() for ds, rng in zip(datasets, rngs)
    ]
    for _ in range(iterations):
        x, y = _cohort_batches(loaders)
        opt.zero_grad()
        loss = ce(model(x), y)
        model.backward(ce.backward())
        opt.step()
        losses.append(loss)
    return _per_client_means(losses, k)


def cohort_adversarial_local_train(
    model: Module,
    datasets: Sequence[ArrayDataset],
    iterations: int,
    batch_size: int,
    lr: float,
    pgd: PGDConfig,
    momentum: float = 0.9,
    weight_decay: float = 1e-4,
    rngs: Optional[Sequence[np.random.Generator]] = None,
) -> List[float]:
    """K clients' :func:`adversarial_local_train` as one stacked cohort."""
    k = len(datasets)
    model.train()
    opt = SGD(model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay)
    ce = CohortCrossEntropyLoss(k)
    mwl = CohortModelWithLoss(model, k)
    losses: List[np.ndarray] = []
    loaders = [
        _loader(ds, batch_size, rng).infinite() for ds, rng in zip(datasets, rngs)
    ]
    for _ in range(iterations):
        x, y = _cohort_batches(loaders)
        x_adv = cohort_pgd_attack(mwl, x, y, pgd, rngs)
        opt.zero_grad()
        loss = ce(model(x_adv), y)
        model.backward(ce.backward())
        opt.step()
        losses.append(loss)
    return _per_client_means(losses, k)
