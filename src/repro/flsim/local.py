"""Local training procedures shared by the FL algorithms."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attacks import ModelWithLoss, PGDConfig, pgd_attack
from repro.data.dataset import ArrayDataset, DataLoader
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.optim.sgd import SGD


def _loader(dataset: ArrayDataset, batch_size: int, rng: np.random.Generator) -> DataLoader:
    return DataLoader(dataset, batch_size=min(batch_size, len(dataset)), shuffle=True, rng=rng)


def standard_local_train(
    model: Module,
    dataset: ArrayDataset,
    iterations: int,
    batch_size: int,
    lr: float,
    momentum: float = 0.9,
    weight_decay: float = 1e-4,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """E iterations of plain local SGD; returns the mean training loss."""
    rng = rng if rng is not None else np.random.default_rng(0)
    model.train()
    opt = SGD(model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay)
    ce = CrossEntropyLoss()
    losses = []
    batches = _loader(dataset, batch_size, rng).infinite()
    for _ in range(iterations):
        x, y = next(batches)
        opt.zero_grad()
        loss = ce(model(x), y)
        model.backward(ce.backward())
        opt.step()
        losses.append(loss)
    return float(np.mean(losses)) if losses else 0.0


def adversarial_local_train(
    model: Module,
    dataset: ArrayDataset,
    iterations: int,
    batch_size: int,
    lr: float,
    pgd: PGDConfig,
    momentum: float = 0.9,
    weight_decay: float = 1e-4,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """E iterations of PGD adversarial training (Madry et al., 2017).

    Each iteration generates adversarial examples with the *current* model
    (train mode, as is standard), then takes one SGD step on them.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    model.train()
    opt = SGD(model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay)
    ce = CrossEntropyLoss()
    mwl = ModelWithLoss(model)
    losses = []
    batches = _loader(dataset, batch_size, rng).infinite()
    for _ in range(iterations):
        x, y = next(batches)
        x_adv = pgd_attack(mwl, x, y, pgd, rng=rng)
        opt.zero_grad()
        loss = ce(model(x_adv), y)
        model.backward(ce.backward())
        opt.step()
        losses.append(loss)
    return float(np.mean(losses)) if losses else 0.0
