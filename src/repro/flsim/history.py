"""Round-history utilities: tabulation, CSV export, convergence queries.

The experiment classes record a :class:`~repro.flsim.base.RoundRecord` per
communication round; these helpers turn that history into the artefacts
the paper's figures are built from (accuracy-vs-round curves,
time-to-accuracy, compute/access breakdowns).
"""

from __future__ import annotations

import csv
import os
from typing import List, Optional, Sequence

from repro.flsim.base import RoundRecord

_FIELDS = [
    "round",
    "sim_time_s",
    "compute_s",
    "access_s",
    "clean_acc",
    "pgd_acc",
    "aa_acc",
]


def history_rows(history: Sequence[RoundRecord]) -> List[dict]:
    """Flatten a round history into dict rows (None for missing evals)."""
    rows = []
    for rec in history:
        rows.append(
            {
                "round": rec.round,
                "sim_time_s": rec.sim_time_s,
                "compute_s": rec.compute_s,
                "access_s": rec.access_s,
                "clean_acc": rec.eval.clean_acc if rec.eval else None,
                "pgd_acc": rec.eval.pgd_acc if rec.eval else None,
                "aa_acc": rec.eval.aa_acc if rec.eval else None,
            }
        )
    return rows


def export_csv(history: Sequence[RoundRecord], path: str) -> None:
    """Write the history as a CSV with one row per round."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=_FIELDS)
        writer.writeheader()
        for row in history_rows(history):
            writer.writerow(row)


def time_to_accuracy(
    history: Sequence[RoundRecord], target_clean_acc: float
) -> Optional[float]:
    """Simulated seconds until validation clean accuracy first reaches the
    target, or None if it never does (the Fig. 7-style efficiency metric)."""
    for rec in history:
        if rec.eval is not None and rec.eval.clean_acc >= target_clean_acc:
            return rec.sim_time_s
    return None


def best_round(history: Sequence[RoundRecord], metric: str = "pgd_acc") -> Optional[RoundRecord]:
    """The round with the best recorded value of ``metric``."""
    best: Optional[RoundRecord] = None
    best_value = float("-inf")
    for rec in history:
        if rec.eval is None:
            continue
        value = getattr(rec.eval, metric)
        if value is not None and value > best_value:
            best_value = value
            best = rec
    return best
