"""Round-history utilities: tabulation, CSV export, convergence queries.

The experiment classes record a :class:`~repro.flsim.base.RoundRecord` per
communication round; these helpers turn that history into the artefacts
the paper's figures are built from (accuracy-vs-round curves,
time-to-accuracy, compute/access breakdowns).
"""

from __future__ import annotations

import csv
import json
import os
from typing import List, Optional, Sequence

from repro.flsim.base import RoundRecord
from repro.metrics.evaluation import EvalResult

_FIELDS = [
    "round",
    "sim_time_s",
    "compute_s",
    "access_s",
    "clean_acc",
    "pgd_acc",
    "aa_acc",
    "aborted",
]


def history_rows(history: Sequence[RoundRecord]) -> List[dict]:
    """Flatten a round history into dict rows (None for missing evals)."""
    rows = []
    for rec in history:
        rows.append(
            {
                "round": rec.round,
                "sim_time_s": rec.sim_time_s,
                "compute_s": rec.compute_s,
                "access_s": rec.access_s,
                "clean_acc": rec.eval.clean_acc if rec.eval else None,
                "pgd_acc": rec.eval.pgd_acc if rec.eval else None,
                "aa_acc": rec.eval.aa_acc if rec.eval else None,
                "aborted": rec.aborted,
            }
        )
    return rows


def round_record_to_dict(rec: RoundRecord) -> dict:
    """Lossless JSON-safe form of one record (inverse of ``from_dict``)."""
    eval_payload = None
    if rec.eval is not None:
        eval_payload = {
            "clean_acc": rec.eval.clean_acc,
            "pgd_acc": rec.eval.pgd_acc,
            "aa_acc": rec.eval.aa_acc,
            "attack_accs": rec.eval.attack_accs,
        }
    return {
        "round": rec.round,
        "sim_time_s": rec.sim_time_s,
        "compute_s": rec.compute_s,
        "access_s": rec.access_s,
        "aborted": rec.aborted,
        "eval": eval_payload,
    }


def round_record_from_dict(data: dict) -> RoundRecord:
    """Rebuild a :class:`RoundRecord` from :func:`round_record_to_dict`."""
    eval_payload = data.get("eval")
    result = None
    if eval_payload is not None:
        result = EvalResult(
            clean_acc=eval_payload.get("clean_acc"),
            pgd_acc=eval_payload.get("pgd_acc"),
            aa_acc=eval_payload.get("aa_acc"),
            attack_accs=eval_payload.get("attack_accs"),
        )
    return RoundRecord(
        round=data["round"],
        sim_time_s=data["sim_time_s"],
        compute_s=data["compute_s"],
        access_s=data["access_s"],
        eval=result,
        aborted=data.get("aborted", False),
    )


class RunHistory(List[RoundRecord]):
    """A round history with lossless JSONL (de)serialization.

    A plain list of :class:`RoundRecord` with one JSON object per round —
    the journal's line-oriented format, so a history round-trips through
    the same tooling that reads run journals.
    """

    def to_jsonl(self) -> str:
        """One JSON object per line; ``from_jsonl`` inverts it exactly."""
        return "".join(
            json.dumps(round_record_to_dict(rec), sort_keys=True) + "\n"
            for rec in self
        )

    @classmethod
    def from_jsonl(cls, text: str) -> "RunHistory":
        history = cls()
        for line in text.splitlines():
            if line.strip():
                history.append(round_record_from_dict(json.loads(line)))
        return history

    def save(self, path: str) -> None:
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_jsonl())

    @classmethod
    def load(cls, path: str) -> "RunHistory":
        with open(path, encoding="utf-8") as f:
            return cls.from_jsonl(f.read())


def merge_eval_rows(merge_evals: Sequence) -> List[dict]:
    """Flatten ``experiment.merge_evals`` into accuracy-vs-version rows.

    One dict per :class:`~repro.flsim.base.MergeEvalRecord` — the
    staleness-curve artefact (``eval_every_merge``): accuracy of the
    merged server state keyed by server version, annotated with the
    triggering merge's round / staleness / simulated time.
    """
    return [
        {
            "version": rec.version,
            "round": rec.round,
            "event": rec.event,
            "staleness": rec.staleness,
            "sim_time_s": rec.sim_time_s,
            "clean_acc": rec.eval.clean_acc if rec.eval else None,
            "pgd_acc": rec.eval.pgd_acc if rec.eval else None,
            "aa_acc": rec.eval.aa_acc if rec.eval else None,
        }
        for rec in merge_evals
    ]


def export_csv(history: Sequence[RoundRecord], path: str) -> None:
    """Write the history as a CSV with one row per round."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=_FIELDS)
        writer.writeheader()
        for row in history_rows(history):
            writer.writerow(row)


def time_to_accuracy(
    history: Sequence[RoundRecord], target_clean_acc: float
) -> Optional[float]:
    """Simulated seconds until validation clean accuracy first reaches the
    target, or None if it never does (the Fig. 7-style efficiency metric)."""
    for rec in history:
        if rec.eval is not None and rec.eval.clean_acc >= target_clean_acc:
            return rec.sim_time_s
    return None


def best_round(history: Sequence[RoundRecord], metric: str = "pgd_acc") -> Optional[RoundRecord]:
    """The round with the best recorded value of ``metric``."""
    best: Optional[RoundRecord] = None
    best_value = float("-inf")
    for rec in history:
        if rec.eval is None:
            continue
        value = getattr(rec.eval, metric)
        if value is not None and value > best_value:
            best_value = value
            best = rec
    return best
