"""Population-scale virtual client engine: O(cohort) lazy materialisation.

Production FL samples a ~100-client cohort per round from a population of
millions; materialising every client up front is O(population) in memory
and startup time.  :class:`ClientPopulation` instead derives everything a
client is — shard indices, sample count, device profile — from
counter-derived RNG streams of ``(population_seed, cid)`` on first touch,
and holds the materialised :class:`FLClient` objects in a bounded
deterministic LRU.  Eviction provably cannot affect results: a client's
state is a pure function of ``(seed, cid)``, so rematerialising after an
eviction reproduces it bit for bit (the same move :mod:`repro.flsim.faults`
and :mod:`repro.flsim.threats` already make with per-``(round, cid)``
streams).

Two independent axes:

* **scheme** — how per-client shards are derived.  ``"partition"`` runs
  the legacy global :func:`~repro.data.partition.pathological_partition`
  pass (bit-identical shards to every pre-engine run); ``"virtual"``
  derives each shard per-cid from ``default_rng([SHARD_STREAM, seed,
  cid])`` with no global pass (O(dataset) preprocessing, O(1) per
  client), which is what makes ``num_clients=10_000_000`` tractable;
  ``"auto"`` picks ``partition`` while the population fits the dataset
  (``num_clients <= len(train)``) and ``virtual`` beyond it.
* **materialisation** — ``"eager"`` builds every ``FLClient`` at init
  (the legacy surface: ``population[i]``, iteration, ``len``);
  ``"lazy"`` builds clients on first touch and evicts least-recently-used
  ones beyond ``cache_size``.  Either way shard *data* is only copied out
  of the training arrays on first ``.dataset`` access.

Cohort sampling is O(cohort) too: :func:`sample_cohort_ids` keeps numpy's
``Generator.choice`` for small populations (bit-compat with existing
seeds — its raw-draw count is data-dependent, so the stream cannot be
reproduced any other way) and switches to a sparse partial Fisher–Yates
above :data:`SMALL_POPULATION_COMPAT`, where ``choice`` would allocate an
O(population) permutation per round.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.data.partition import VirtualPartition, pathological_partition

#: Stream tags keeping the population's counter-derived RNG families
#: disjoint from each other and from the fault/threat streams.
SHARD_STREAM = 0x5A9D
AVAIL_STREAM = 0x41B6

#: Populations at or below this size keep the legacy
#: ``rng.choice(population, cohort, replace=False)`` cohort draw so
#: existing seeds stay bit-identical; larger populations use the
#: O(cohort) sparse Fisher–Yates draw (new seeds, so no compat debt).
SMALL_POPULATION_COMPAT = 1 << 16

POPULATION_SCHEMES = ("auto", "partition", "virtual")
MATERIALISATIONS = ("eager", "lazy")


def sample_cohort_ids(
    rng: np.random.Generator, population: int, cohort: int
) -> np.ndarray:
    """Uniform without-replacement cohort draw in O(cohort) memory.

    Small populations (``<= SMALL_POPULATION_COMPAT``) delegate to
    ``rng.choice`` — bit-identical to the historical sampler on the same
    generator state.  Large populations run a partial Fisher–Yates over a
    sparse swap map: ``cohort`` draws, O(cohort) memory, still exactly
    uniform over ordered ``cohort``-subsets.
    """
    if cohort > population:
        raise ValueError(f"cohort {cohort} exceeds population {population}")
    if population <= SMALL_POPULATION_COMPAT:
        return rng.choice(population, size=cohort, replace=False)
    swap: Dict[int, int] = {}
    out = np.empty(cohort, dtype=np.int64)
    for i in range(cohort):
        j = int(rng.integers(i, population))
        vi = swap.get(i, i)
        vj = swap.get(j, j)
        swap[i], swap[j] = vj, vi
        out[i] = vj
    return out


class FLClient:
    """One client: an id and its (lazily materialised) local shard.

    Built either from a concrete ``dataset`` (the historical surface,
    used by tests and the threat plan's poisoned copies) or from
    ``indices`` into a shared ``source`` dataset, in which case the
    shard arrays are only copied out on first ``.dataset`` access —
    clients that never participate never pay for their shard.
    ``num_samples`` never materialises.
    """

    __slots__ = ("cid", "_dataset", "_indices", "_source")

    def __init__(
        self,
        cid: int,
        dataset: Optional[ArrayDataset] = None,
        *,
        indices: Optional[np.ndarray] = None,
        source: Optional[ArrayDataset] = None,
    ):
        if dataset is None and (indices is None or source is None):
            raise ValueError("FLClient needs a dataset or (indices, source)")
        self.cid = cid
        self._dataset = dataset
        self._indices = None if indices is None else np.asarray(indices)
        self._source = source

    @property
    def dataset(self) -> ArrayDataset:
        ds = self._dataset
        if ds is None:
            # Idempotent (subset is a pure read), so a concurrent first
            # touch from two worker threads is benign.
            ds = self._source.subset(self._indices)
            self._dataset = ds
        return ds

    @property
    def num_samples(self) -> int:
        if self._dataset is not None:
            return len(self._dataset)
        return len(self._indices)

    @property
    def materialised(self) -> bool:
        """Whether the shard data has been copied out yet."""
        return self._dataset is not None

    def __getstate__(self):
        # Pickling (the process backend) materialises the shard and drops
        # the source reference: shipping the full training set per client
        # would defeat the point of lazy shards.
        return {"cid": self.cid, "dataset": self.dataset}

    def __setstate__(self, state):
        self.cid = state["cid"]
        self._dataset = state["dataset"]
        self._indices = None
        self._source = None

    def __repr__(self) -> str:
        return f"FLClient(cid={self.cid}, num_samples={self.num_samples})"


class ClientPopulation:
    """The client population: lazy derivation, bounded LRU, O(cohort) draws.

    Exposes the sequence surface the rest of the engine historically used
    (``population[cid]``, ``len``, iteration) plus :meth:`client` (the
    LRU-tracked accessor the run loop uses), :meth:`sample_ids`,
    :meth:`available`, and cache :meth:`stats`.

    Determinism contract: everything a client is derives from
    ``(seed, cid)`` (scheme ``virtual``) or from the one legacy partition
    pass (scheme ``partition``), never from access order — so cache size,
    eviction pattern, materialisation mode, backend, and worker count
    cannot affect results.
    """

    def __init__(
        self,
        train: ArrayDataset,
        num_clients: int,
        seed: int,
        scheme: str = "auto",
        materialisation: str = "eager",
        cache_size: Optional[int] = None,
        samples_per_client: Optional[int] = None,
        availability_fraction: Optional[float] = None,
        availability_period: int = 8,
        cohort_size: int = 10,
        pipeline_depth: int = 1,
    ):
        if scheme not in POPULATION_SCHEMES:
            raise ValueError(
                f"population scheme must be one of {POPULATION_SCHEMES}, "
                f"got {scheme!r}"
            )
        if materialisation not in MATERIALISATIONS:
            raise ValueError(
                f"client materialisation must be one of {MATERIALISATIONS}, "
                f"got {materialisation!r}"
            )
        if scheme == "auto":
            scheme = "partition" if num_clients <= len(train) else "virtual"
        if scheme == "partition" and num_clients > len(train):
            raise ValueError(
                f"population scheme 'partition' needs num_clients <= "
                f"len(train) ({num_clients} > {len(train)}); use 'virtual' "
                f"(per-cid derived shards, sampled with replacement)"
            )
        self.train = train
        self.num_clients = num_clients
        self.seed = seed
        self.scheme = scheme
        self.materialisation = materialisation
        self.availability_fraction = availability_fraction
        self.availability_period = availability_period

        if scheme == "partition":
            # The legacy global pass, shard *indices* only: bit-identical
            # shards to the historical eager constructor, but no data is
            # copied until a client's first .dataset touch.
            self._shards: Optional[List[np.ndarray]] = pathological_partition(
                train.y, num_clients, rng=np.random.default_rng(seed)
            )
            self._virtual: Optional[VirtualPartition] = None
            self.samples_per_client: Optional[int] = None
            self.total_samples = int(sum(len(s) for s in self._shards))
        else:
            if samples_per_client is None:
                samples_per_client = len(train) // num_clients
                if samples_per_client < 1:
                    samples_per_client = min(64, len(train))
            if samples_per_client < 1:
                raise ValueError("samples_per_client must be >= 1")
            self._shards = None
            self._virtual = VirtualPartition(train.y, samples_per_client)
            self.samples_per_client = int(samples_per_client)
            # Every virtual client holds exactly samples_per_client
            # samples, so the population total is analytic — no O(n) sum.
            self.total_samples = num_clients * self.samples_per_client

        if materialisation == "eager":
            # Unbounded by definition: the legacy surface keeps every
            # client alive (iteration hands out stable objects).
            self.cache_capacity: Optional[int] = None
        elif cache_size is not None:
            if cache_size < 1:
                raise ValueError("client_cache_size must be >= 1")
            self.cache_capacity = int(cache_size)
        else:
            # O(cohort): enough for every round a deep pipeline can have
            # in flight, with headroom so resampled clients usually hit.
            self.cache_capacity = max(64, 4 * cohort_size * max(1, pipeline_depth))

        self._cache: "OrderedDict[int, FLClient]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.peak_live = 0
        if materialisation == "eager":
            for cid in range(num_clients):
                self.client(cid)
            # Prefetching is construction, not cache traffic.
            self.hits = self.misses = 0

    # -- materialisation -----------------------------------------------------
    def _build(self, cid: int) -> FLClient:
        if self._shards is not None:
            indices = self._shards[cid]
        else:
            rng = np.random.default_rng([SHARD_STREAM, self.seed, cid])
            indices = self._virtual.shard_for(rng)
        return FLClient(cid=cid, indices=indices, source=self.train)

    def client(self, cid: int) -> FLClient:
        """The LRU-tracked accessor: materialise on miss, evict beyond cap."""
        if not 0 <= cid < self.num_clients:
            raise IndexError(f"cid {cid} outside population of {self.num_clients}")
        with self._lock:
            c = self._cache.get(cid)
            if c is not None:
                self._cache.move_to_end(cid)
                self.hits += 1
                return c
            self.misses += 1
            c = self._build(cid)
            self._cache[cid] = c
            cap = self.cache_capacity
            if cap is not None:
                while len(self._cache) > cap:
                    self._cache.popitem(last=False)
                    self.evictions += 1
            if len(self._cache) > self.peak_live:
                self.peak_live = len(self._cache)
            return c

    def stats(self) -> Dict[str, int]:
        """Cache counters for the journal / ``describe_parallelism``."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "live": len(self._cache),
                "peak_live": self.peak_live,
            }

    # -- availability --------------------------------------------------------
    def available(self, round_idx: int, cid: int) -> bool:
        """Whether ``cid`` is inside its availability window at ``round_idx``.

        Each client gets a periodic duty cycle: a window of
        ``round(availability_fraction * availability_period)`` consecutive
        rounds out of every ``availability_period``, phase-shifted by a
        counter-derived draw from ``(seed, cid)`` — a pure function, so
        availability composes with checkpoints, fault plans, and any
        backend without extra state.
        """
        frac = self.availability_fraction
        if frac is None:
            return True
        period = self.availability_period
        window = max(1, int(round(frac * period)))
        if window >= period:
            return True
        rng = np.random.default_rng([AVAIL_STREAM, self.seed, cid])
        phase = int(rng.integers(0, period))
        return (round_idx + phase) % period < window

    # -- cohort sampling -----------------------------------------------------
    def sample_ids(
        self, rng: np.random.Generator, cohort: int, round_idx: int
    ) -> np.ndarray:
        """Draw this round's cohort ids from ``rng`` in O(cohort).

        Without availability windows this is :func:`sample_cohort_ids`
        (bit-compat with the historical ``rng.choice`` for small
        populations).  With windows it rejection-samples uniformly over
        the round's *available* clients — deterministic because the
        rejected draws come from the same single ``rng`` stream.
        """
        if self.availability_fraction is None:
            return sample_cohort_ids(rng, self.num_clients, cohort)
        chosen: List[int] = []
        seen = set()
        frac = self.availability_fraction
        limit = max(10_000, int(100 * cohort / frac))
        for _ in range(limit):
            if len(chosen) >= cohort:
                break
            cid = int(rng.integers(0, self.num_clients))
            if cid in seen or not self.available(round_idx, cid):
                continue
            seen.add(cid)
            chosen.append(cid)
        if len(chosen) < cohort:
            raise RuntimeError(
                f"round {round_idx}: could not fill a cohort of {cohort} "
                f"from {self.num_clients} clients at availability "
                f"{frac} within {limit} draws"
            )
        return np.asarray(chosen, dtype=np.int64)

    # -- legacy sequence surface ---------------------------------------------
    def __len__(self) -> int:
        return self.num_clients

    def __getitem__(self, cid: int) -> FLClient:
        return self.client(cid)

    def __iter__(self) -> Iterator[FLClient]:
        for cid in range(self.num_clients):
            yield self.client(cid)
