"""Seeded update-space threats: Byzantine clients and poisoning attacks.

The eval engine covers *input-space* adversaries (FGSM/PGD/AutoAttack);
this module covers *update-space* ones — clients that lie.  A
:class:`ThreatPlan` mirrors the fault layer (:mod:`repro.flsim.faults`):
each sampled client is marked Byzantine by one uniform draw from a
dedicated counter-derived RNG stream
(``np.random.default_rng([_THREAT_STREAM, seed, round, cid])``), so
attacker selection and behaviour are pure functions of
``(plan seed, round, client id)`` — bit-identical across
serial/thread/process backends at any worker count, and a plan with
``byzantine_prob=0`` (or ``threat_plan=None``) reproduces the clean run
bit for bit.  The domain-separation constant keeps the draws independent
of a :class:`~repro.flsim.faults.FaultPlan` sharing the same seed.

Two attack families, both applied *before* aggregation with no
baseline-specific code:

* **data poisoning** — the Byzantine client trains honestly on a
  poisoned shard.  ``label_flip`` rotates labels by ``flip_offset``
  (mod ``num_classes``); ``backdoor`` stamps a ``trigger_size`` ×
  ``trigger_size`` patch of ``trigger_value`` into the corner of a
  ``backdoor_fraction`` of the shard and relabels those samples to
  ``backdoor_target``.  The run loop swaps the client's dataset for the
  poisoned copy at sampling time, so every baseline trains on it
  unchanged.
* **update poisoning** — the client trains honestly and then lies about
  the result.  ``sign_flip`` reports ``base - (state - base)`` (the
  negated delta), ``model_replacement`` reports
  ``base + scale * (state - base)`` (the boosted-delta attack), and
  ``gaussian`` adds ``noise_std``-scaled Gaussian noise.  The transform
  is applied to the outgoing update by a structural walk
  (:meth:`ThreatPlan.poison_update`) that handles every baseline's
  update shape — plain state dicts, the partial-training family's
  ``(scattered_state, mask, weight)`` triples (only in-mask entries are
  touched), and FedProphet's ``(segment_state, head_state, ...)``
  tuples (the segment state, whose keys the aggregation base covers,
  is poisoned; auxiliary head states are left honest).

Defences live in :mod:`repro.flsim.robust_agg`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.flsim.faults import load_plan_spec, validate_plan_dict

StateDict = Dict[str, np.ndarray]

#: Domain-separation constant for the threat RNG stream: a FaultPlan and a
#: ThreatPlan sharing the same ``seed`` must not draw correlated variates.
_THREAT_STREAM = 0x7B3A

DATA_ATTACKS = ("label_flip", "backdoor")
UPDATE_ATTACKS = ("sign_flip", "gaussian", "model_replacement")
ATTACKS = DATA_ATTACKS + UPDATE_ATTACKS


@dataclass
class RoundThreats:
    """The threat plan's verdict for one sampled cohort.

    ``byzantine`` indexes into the sampled cohort; ``byzantine_cids``
    carries the matching client ids (what the journal and the update
    poisoner key on).
    """

    round_idx: int
    attack: str
    byzantine: List[int]
    byzantine_cids: List[int]


@dataclass(frozen=True)
class ThreatPlan:
    """Seeded Byzantine-client scenarios, mirroring :class:`FaultPlan`.

    Every sampled client turns Byzantine this round with probability
    ``byzantine_prob`` (one dedicated-stream draw per ``(round, cid)``)
    within the active window ``[start_round, end_round)``; Byzantine
    clients all mount the same ``attack``.  See the module docstring for
    the attack semantics and each knob below for its parameter.
    """

    seed: int = 0
    byzantine_prob: float = 0.0
    attack: str = "label_flip"
    #: label_flip: labels map to ``(y + flip_offset) % num_classes``.
    flip_offset: int = 1
    #: backdoor: poisoned samples are relabelled to this class ...
    backdoor_target: int = 0
    #: ... for this fraction of the client's shard ...
    backdoor_fraction: float = 1.0
    #: ... with a trigger patch of this side length ...
    trigger_size: int = 2
    #: ... and this pixel value stamped in the bottom-right corner.
    trigger_value: float = 1.0
    #: model_replacement: the reported delta is boosted by this factor.
    scale: float = 10.0
    #: gaussian: std-dev of the additive update noise.
    noise_std: float = 0.1
    #: Attack window: rounds in ``[start_round, end_round)`` (None = open).
    start_round: int = 0
    end_round: Optional[int] = None

    def __post_init__(self):
        if not (0.0 <= self.byzantine_prob <= 1.0):
            raise ValueError(
                f"byzantine_prob must be in [0, 1], got {self.byzantine_prob}"
            )
        if self.attack not in ATTACKS:
            raise ValueError(
                f"attack must be one of {ATTACKS}, got {self.attack!r}"
            )
        if not (0.0 <= self.backdoor_fraction <= 1.0):
            raise ValueError(
                f"backdoor_fraction must be in [0, 1], "
                f"got {self.backdoor_fraction}"
            )
        if self.trigger_size < 1:
            raise ValueError("trigger_size must be >= 1")
        if self.noise_std < 0:
            raise ValueError("noise_std must be >= 0")
        if self.start_round < 0:
            raise ValueError("start_round must be >= 0")
        if self.end_round is not None and self.end_round <= self.start_round:
            raise ValueError("end_round must be > start_round (or null)")

    @property
    def active(self) -> bool:
        """Whether any client can ever turn Byzantine."""
        return self.byzantine_prob > 0.0

    @property
    def is_data_attack(self) -> bool:
        return self.attack in DATA_ATTACKS

    @property
    def is_update_attack(self) -> bool:
        return self.attack in UPDATE_ATTACKS

    # -- the deterministic decision function --------------------------------
    def _rng(self, round_idx: int, cid: int, salt: int = 0) -> np.random.Generator:
        return np.random.default_rng(
            [_THREAT_STREAM, self.seed, round_idx, cid, salt]
        )

    def in_window(self, round_idx: int) -> bool:
        if round_idx < self.start_round:
            return False
        return self.end_round is None or round_idx < self.end_round

    def is_byzantine(self, round_idx: int, cid: int) -> bool:
        """This client's allegiance this round: pure in (seed, round, cid)."""
        if not self.active or not self.in_window(round_idx):
            return False
        return bool(self._rng(round_idx, cid).random() < self.byzantine_prob)

    def plan_round(self, round_idx: int, cids: Sequence[int]) -> RoundThreats:
        """Decide the whole sampled cohort's allegiance for one round."""
        byz = [
            i for i, cid in enumerate(cids) if self.is_byzantine(round_idx, cid)
        ]
        return RoundThreats(
            round_idx=round_idx,
            attack=self.attack,
            byzantine=byz,
            byzantine_cids=[int(cids[i]) for i in byz],
        )

    # -- data poisoning ------------------------------------------------------
    def poison_dataset(
        self,
        dataset: ArrayDataset,
        round_idx: int,
        cid: int,
        num_classes: int,
    ) -> ArrayDataset:
        """A poisoned copy of one Byzantine client's shard (input untouched).

        ``label_flip`` shares the input tensor (only labels change);
        ``backdoor`` copies it to stamp the trigger.  Which samples carry
        the backdoor is a dedicated-stream draw, so the poisoned shard is
        identical on every backend.  The copy lives in a fresh
        per-round ``FLClient`` wrapper outside the population's LRU
        (the honest client object is never mutated), so a lazily
        materialised client that is evicted and re-touched later still
        rematerialises its *clean* shard — poisoning is per-``(round,
        cid)``, never sticky.
        """
        if self.attack == "label_flip":
            y = (np.asarray(dataset.y) + self.flip_offset) % num_classes
            return ArrayDataset(dataset.x, y.astype(np.asarray(dataset.y).dtype))
        if self.attack == "backdoor":
            x = np.array(dataset.x, copy=True)
            y = np.array(dataset.y, copy=True)
            n = len(y)
            k = int(round(self.backdoor_fraction * n))
            if k > 0:
                rng = self._rng(round_idx, cid, salt=1)
                idx = np.sort(rng.permutation(n)[:k])
                ts = min(self.trigger_size, x.shape[-2], x.shape[-1])
                x[idx, ..., -ts:, -ts:] = np.asarray(
                    self.trigger_value, dtype=x.dtype
                )
                y[idx] = self.backdoor_target % num_classes
            return ArrayDataset(x, y)
        raise ValueError(f"{self.attack!r} is not a data attack")

    # -- update poisoning ----------------------------------------------------
    def poison_state(
        self,
        state: StateDict,
        base: StateDict,
        round_idx: int,
        cid: int,
        mask: Optional[StateDict] = None,
    ) -> StateDict:
        """The Byzantine version of one reported state dict.

        Only floating keys present in ``base`` with matching shapes are
        transformed (integer buffers like BN counters stay honest); with
        a ``mask`` (the partial-training family), entries outside the
        mask keep the reported value — scattered zeros stay zeros, so the
        masked aggregation's bookkeeping is untouched.  Gaussian noise
        draws from the dedicated stream in key order, so the poisoned
        update is identical on every backend.
        """
        if not self.is_update_attack:
            raise ValueError(f"{self.attack!r} is not an update attack")
        rng = self._rng(round_idx, cid, salt=2)
        out: StateDict = {}
        for key, value in state.items():
            ref = base.get(key)
            if (
                ref is None
                or not np.issubdtype(np.asarray(value).dtype, np.floating)
                or np.asarray(ref).shape != np.asarray(value).shape
            ):
                out[key] = value
                continue
            if self.attack == "sign_flip":
                poisoned = 2.0 * ref - value
            elif self.attack == "model_replacement":
                poisoned = ref + self.scale * (value - ref)
            else:  # gaussian
                noise = rng.standard_normal(value.shape)
                poisoned = value + self.noise_std * noise
            poisoned = poisoned.astype(value.dtype, copy=False)
            if mask is not None and key in mask:
                poisoned = np.where(mask[key] > 0, poisoned, value)
            out[key] = poisoned
        return out

    def poison_update(
        self, update: Any, base: StateDict, round_idx: int, cid: int
    ) -> Any:
        """Apply the update attack to one client's reported update.

        Structural walk over the baseline families' update shapes:

        * a plain state dict is poisoned directly;
        * a tuple/list whose first two elements are dicts over the *same*
          keys is a ``(scattered_state, mask, ...)`` partial-training
          update — the state is poisoned inside the mask only;
        * any other tuple/list has its first state-dict element poisoned
          (FedProphet's ``(segment_state, head_state, cost, ...)``: the
          segment keys match ``base``; auxiliary heads stay honest);
        * anything else is returned unchanged.
        """
        if isinstance(update, dict):
            return self.poison_state(update, base, round_idx, cid)
        if isinstance(update, (tuple, list)):
            items = list(update)
            if (
                len(items) >= 2
                and isinstance(items[0], dict)
                and isinstance(items[1], dict)
                and set(items[0]) == set(items[1])
            ):
                items[0] = self.poison_state(
                    items[0], base, round_idx, cid, mask=items[1]
                )
            else:
                for i, item in enumerate(items):
                    if isinstance(item, dict):
                        items[i] = self.poison_state(
                            item, base, round_idx, cid
                        )
                        break
                    if isinstance(item, (tuple, list)):
                        items[i] = self.poison_update(
                            item, base, round_idx, cid
                        )
                        break
            return type(update)(items) if isinstance(update, tuple) else items
        return update

    # -- (de)serialization ---------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ThreatPlan":
        data = validate_plan_dict(json.loads(text), cls, "threat plan")
        return cls(**data)

    @classmethod
    def parse(cls, spec: str) -> "ThreatPlan":
        """Parse a CLI spec: inline JSON (``{...}``) or a JSON file path."""
        return load_plan_spec(cls, spec, "threat plan")
