"""Sharded evaluation engine: eval plans on the round execution engine.

Evaluation is embarrassingly parallel over ``(attack, sample range)``
tuples: every accuracy an :class:`~repro.metrics.evaluation.EvalPlan`
requests decomposes into deterministic :class:`EvalShard` work units whose
results are integer correct-counts, reduced in input order.  The shards
run through the existing :class:`~repro.flsim.executor.RoundExecutor`
(serial / thread / process backends), sharing its determinism contract:

* **shard-stable RNG** — each shard draws from
  ``default_rng([plan seed, attack index, shard index])``
  (:func:`repro.metrics.evaluation.shard_rng`), so randomness depends only
  on the plan, never on scheduling, worker count, or backend;
* **per-slot replicas** — concurrent shards never share a model: the
  caller's ``target_for_slot`` maps an executor slot to a private
  :class:`EvalTarget` (slot 0 is conventionally the real model; thread
  slots are replicas synced by ``prepare_slot`` before the parallel
  region; forked children own copy-on-write copies);
* **fixed reduction order** — per-attack counts are summed over shards in
  input order, so the final float divisions see identical operands on
  every backend.

The engine also reuses the stage-scoped
:class:`~repro.core.prefix_cache.PrefixCache`: clean-pass shards forward
*unperturbed* inputs through a frozen prefix — exactly what the cache
memoises — so an :class:`EvalTarget` may carry a split
``prefix_forward`` / ``suffix_mwl`` pair and serve repeated validation
passes from cached activations (bit-identical to the uncached forward).
Attack shards perturb the raw input and always bypass the cache.  On the
process backend, children's cache-counter deltas and freshly filled
entries are merged back into the parent so ``stats()`` reflects the whole
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.attacks import ModelWithLoss
from repro.data.dataset import ArrayDataset
from repro.flsim.executor import RoundExecutor
from repro.metrics.evaluation import EvalPlan, EvalResult, seed_entropy, shard_rng


@dataclass(frozen=True)
class EvalShard:
    """One evaluation work unit: one attack over one sample range."""

    attack_idx: int
    shard_idx: int  # batch index within the attack (seeds the shard RNG)
    start: int
    stop: int


@dataclass
class EvalTarget:
    """What one executor slot evaluates.

    ``mwl`` is the full model(+head) adapter attacks and predictions run
    against.  When the leading part of the model is frozen (FedProphet's
    cascade prefix), ``prefix_forward`` / ``suffix_mwl`` optionally split
    the clean forward at that boundary so the prefix half can be served by
    a :class:`~repro.core.prefix_cache.PrefixCache`; composing them is
    bit-identical to ``mwl.logits`` because the cascade forward is a plain
    composition of the same per-atom ops.
    """

    mwl: ModelWithLoss
    prefix_forward: Optional[Callable[[np.ndarray], np.ndarray]] = None
    suffix_mwl: Optional[ModelWithLoss] = None


class EvalExecutor:
    """Runs :class:`EvalPlan`\\ s as sharded work on a round executor.

    Parameters
    ----------
    executor:
        The backing :class:`RoundExecutor`.  Defaults to a serial one, the
        reference path every parallel backend must match bit for bit.
    """

    def __init__(self, executor: Optional[RoundExecutor] = None):
        self.executor = executor if executor is not None else RoundExecutor("serial")

    @property
    def backend(self) -> str:
        return self.executor.backend

    def shards_for(self, plan: EvalPlan, num_samples: int) -> List[EvalShard]:
        """The deterministic shard decomposition of a plan.

        Depends only on (plan, sample count) — never on the backend or
        worker count — so the same shards (and shard RNGs) are produced no
        matter how they are scheduled.
        """
        shards: List[EvalShard] = []
        for ai in range(len(plan.attacks)):
            for si, start in enumerate(range(0, num_samples, plan.batch_size)):
                shards.append(
                    EvalShard(ai, si, start, min(num_samples, start + plan.batch_size))
                )
        return shards

    def run(
        self,
        plan: EvalPlan,
        dataset: ArrayDataset,
        target_for_slot: Callable[[int], EvalTarget],
        prepare_slot: Optional[Callable[[int], None]] = None,
        prefix_cache=None,
        cache_key=None,
    ) -> EvalResult:
        """Execute a plan and reduce shard counts into an :class:`EvalResult`.

        ``prepare_slot`` runs once per executor slot *before* the parallel
        region (sync a replica's weights, set eval-time modes);
        ``target_for_slot`` then supplies the slot's :class:`EvalTarget`.
        With a ``prefix_cache`` and ``cache_key``, clean shards whose
        target carries a prefix/suffix split are served from (and fill)
        the cache; rows are keyed by dataset index, so the ``max_samples``
        subsample path caches the same rows it evaluates.
        """
        x, y = dataset.x, np.asarray(dataset.y)
        num_total = len(x)
        rows = np.arange(num_total)
        if plan.max_samples is not None and num_total > plan.max_samples:
            rows = np.random.default_rng(seed_entropy(plan.seed)).choice(
                num_total, size=plan.max_samples, replace=False
            )
            x, y = x[rows], y[rows]
        n = len(x)
        shards = self.shards_for(plan, n)
        # The process backend accrues cache hits/misses (and fresh entries)
        # in forked children; detect an actual fork so the parent can merge
        # the deltas back.  Mirrors RoundExecutor.map's fallback-to-serial.
        forked = self.executor.forks_for(len(shards))

        targets: Dict[int, EvalTarget] = {}
        for slot in self.executor.slots_for(len(shards)):
            if prepare_slot is not None:
                prepare_slot(slot)
            target = targets[slot] = target_for_slot(slot)
            target.mwl.model.eval()
            if target.mwl.head is not None:
                target.mwl.head.eval()

        def run_shard(shard: EvalShard, slot: int):
            target = targets[slot]
            attack = plan.attacks[shard.attack_idx]
            xb = x[shard.start : shard.stop]
            yb = y[shard.start : shard.stop]
            use_cache = (
                prefix_cache is not None
                and cache_key is not None
                and attack.cacheable
                and target.prefix_forward is not None
                and target.suffix_mwl is not None
            )
            hits0 = misses0 = 0
            if forked and prefix_cache is not None:
                hits0, misses0 = prefix_cache.hits, prefix_cache.misses
            export = None
            if use_cache:
                shard_rows = rows[shard.start : shard.stop]
                version = prefix_cache.version
                feats = prefix_cache.fetch(
                    cache_key, shard_rows, xb, target.prefix_forward, num_total
                )
                if forked:
                    # Ship only this shard's rows back to the parent — the
                    # shards of one eval share the entry, so exporting it
                    # whole per shard would pickle the same array K times.
                    export = (version, shard_rows, feats)
                preds = target.suffix_mwl.logits(feats).argmax(axis=1)
            elif attack.cacheable:
                preds = target.mwl.logits(xb).argmax(axis=1)
            else:
                rng = shard_rng(plan.seed, shard.attack_idx, shard.shard_idx)
                adv = attack.perturb(target.mwl, xb, yb, rng)
                preds = target.mwl.logits(adv).argmax(axis=1)
            correct = int((preds == yb).sum())
            counters = None
            if forked and prefix_cache is not None:
                counters = (
                    prefix_cache.hits - hits0,
                    prefix_cache.misses - misses0,
                )
            return shard.attack_idx, correct, counters, export

        results = self.executor.map(run_shard, shards)

        if forked and prefix_cache is not None:
            for _, _, counters, export in results:
                if counters is not None:
                    prefix_cache.adopt_counters(*counters)
                if export is not None:
                    version, shard_rows, feats = export
                    prefix_cache.adopt_rows(
                        cache_key, version, shard_rows, feats, num_total
                    )

        for target in targets.values():
            target.mwl.model.zero_grad()
            if target.mwl.head is not None:
                target.mwl.head.zero_grad()

        correct_by_attack = [0] * len(plan.attacks)
        for attack_idx, correct, _, _ in results:
            correct_by_attack[attack_idx] += correct
        # An empty evaluation (empty dataset, max_samples=0) measured
        # nothing: report None, never a fake 0 % (to_result's contract).
        accuracies = {
            attack.name: (correct_by_attack[i] / n if n else None)
            for i, attack in enumerate(plan.attacks)
        }
        return plan.to_result(accuracies)
