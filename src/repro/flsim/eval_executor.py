"""Sharded evaluation engine: eval plans on the round execution engine.

Evaluation is embarrassingly parallel over ``(attack, sample range)``
tuples: every accuracy an :class:`~repro.metrics.evaluation.EvalPlan`
requests decomposes into deterministic :class:`EvalShard` work units whose
results are integer correct-counts, reduced in input order.  The shards
run through the existing :class:`~repro.flsim.executor.RoundExecutor`
(serial / thread / process backends), sharing its determinism contract:

* **shard-stable RNG** — each shard draws from
  ``default_rng([plan seed, attack index, shard index])``
  (:func:`repro.metrics.evaluation.shard_rng`), so randomness depends only
  on the plan, never on scheduling, worker count, or backend;
* **per-slot replicas** — concurrent shards never share a model: the
  caller's ``target_for_slot`` maps an executor slot to a private
  :class:`EvalTarget` (slot 0 is conventionally the real model; thread
  slots are replicas synced by ``prepare_slot`` before the parallel
  region; forked children own copy-on-write copies);
* **fixed reduction order** — per-attack counts are summed over shards in
  input order, so the final float divisions see identical operands on
  every backend.

The engine also reuses the stage-scoped
:class:`~repro.core.prefix_cache.PrefixCache`: clean-pass shards forward
*unperturbed* inputs through a frozen prefix — exactly what the cache
memoises — so an :class:`EvalTarget` may carry a split
``prefix_forward`` / ``suffix_mwl`` pair and serve repeated validation
passes from cached activations (bit-identical to the uncached forward).
Attack shards perturb the raw input and always bypass the cache.  On the
process backend, children's cache-counter deltas and freshly filled
entries are merged back into the parent so ``stats()`` reflects the whole
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.attacks import ModelWithLoss
from repro.data.dataset import ArrayDataset
from repro.flsim.executor import RoundExecutor
from repro.metrics.evaluation import EvalPlan, EvalResult, seed_entropy, shard_rng


@dataclass(frozen=True)
class EvalShard:
    """One evaluation work unit: one attack over one sample range.

    Shards are a pure function of (plan, sample count) and carry their
    own RNG identity (``shard_idx`` seeds ``shard_rng``), so a shard
    computes the same correct-count no matter which backend, worker, or
    wall-clock order runs it.
    """

    attack_idx: int
    shard_idx: int  # batch index within the attack (seeds the shard RNG)
    start: int
    stop: int


@dataclass
class EvalTarget:
    """What one executor slot evaluates.

    ``mwl`` is the full model(+head) adapter attacks and predictions run
    against.  When the leading part of the model is frozen (FedProphet's
    cascade prefix), ``prefix_forward`` / ``suffix_mwl`` optionally split
    the clean forward at that boundary so the prefix half can be served by
    a :class:`~repro.core.prefix_cache.PrefixCache`; composing them is
    bit-identical to ``mwl.logits`` because the cascade forward is a plain
    composition of the same per-atom ops.
    """

    mwl: ModelWithLoss
    prefix_forward: Optional[Callable[[np.ndarray], np.ndarray]] = None
    suffix_mwl: Optional[ModelWithLoss] = None


class EvalExecutor:
    """Runs :class:`EvalPlan`\\ s as sharded work on a round executor.

    Parameters
    ----------
    executor:
        The backing :class:`RoundExecutor`.  Defaults to a serial one, the
        reference path every parallel backend must match bit for bit.
    """

    def __init__(self, executor: Optional[RoundExecutor] = None):
        self.executor = executor if executor is not None else RoundExecutor("serial")

    @property
    def backend(self) -> str:
        return self.executor.backend

    def shards_for(self, plan: EvalPlan, num_samples: int) -> List[EvalShard]:
        """The deterministic shard decomposition of a plan.

        Depends only on (plan, sample count) — never on the backend or
        worker count — so the same shards (and shard RNGs) are produced no
        matter how they are scheduled.
        """
        shards: List[EvalShard] = []
        for ai in range(len(plan.attacks)):
            for si, start in enumerate(range(0, num_samples, plan.batch_size)):
                shards.append(
                    EvalShard(ai, si, start, min(num_samples, start + plan.batch_size))
                )
        return shards

    def _subsample(self, plan: EvalPlan, dataset: ArrayDataset):
        """The plan's deterministic (rows, x, y) view of a dataset."""
        x, y = dataset.x, np.asarray(dataset.y)
        num_total = len(x)
        rows = np.arange(num_total)
        if plan.max_samples is not None and num_total > plan.max_samples:
            rows = np.random.default_rng(seed_entropy(plan.seed)).choice(
                num_total, size=plan.max_samples, replace=False
            )
            x, y = x[rows], y[rows]
        return x, y, rows, num_total

    def _prepare_targets(
        self,
        slots: List[int],
        target_for_slot: Callable[[int], EvalTarget],
        prepare_slot: Optional[Callable[[int], None]],
    ) -> Dict[int, EvalTarget]:
        targets: Dict[int, EvalTarget] = {}
        for slot in slots:
            if prepare_slot is not None:
                prepare_slot(slot)
            target = targets[slot] = target_for_slot(slot)
            target.mwl.model.eval()
            if target.mwl.head is not None:
                target.mwl.head.eval()
        return targets

    def _shard_runner(
        self,
        plan: EvalPlan,
        x: np.ndarray,
        y: np.ndarray,
        rows: np.ndarray,
        num_total: int,
        targets: Dict[int, EvalTarget],
        prefix_cache=None,
        cache_key=None,
        forked: bool = False,
    ) -> Callable[[EvalShard, int], tuple]:
        """The slot-aware work function one evaluation's shards run."""

        def run_shard(shard: EvalShard, slot: int):
            target = targets[slot]
            attack = plan.attacks[shard.attack_idx]
            xb = x[shard.start : shard.stop]
            yb = y[shard.start : shard.stop]
            use_cache = (
                prefix_cache is not None
                and cache_key is not None
                and attack.cacheable
                and target.prefix_forward is not None
                and target.suffix_mwl is not None
            )
            hits0 = misses0 = 0
            if forked and prefix_cache is not None:
                hits0, misses0 = prefix_cache.hits, prefix_cache.misses
            export = None
            if use_cache:
                shard_rows = rows[shard.start : shard.stop]
                version = prefix_cache.version
                feats = prefix_cache.fetch(
                    cache_key, shard_rows, xb, target.prefix_forward, num_total
                )
                if forked:
                    # Ship only this shard's rows back to the parent — the
                    # shards of one eval share the entry, so exporting it
                    # whole per shard would pickle the same array K times.
                    export = (version, shard_rows, feats)
                preds = target.suffix_mwl.logits(feats).argmax(axis=1)
            elif attack.cacheable:
                preds = target.mwl.logits(xb).argmax(axis=1)
            else:
                rng = shard_rng(plan.seed, shard.attack_idx, shard.shard_idx)
                adv = attack.perturb(target.mwl, xb, yb, rng)
                preds = target.mwl.logits(adv).argmax(axis=1)
            mask = preds == yb
            # Ensemble members ship their per-sample mask (worst-case
            # combination needs sample identity); plain attacks reduce to a
            # count right here to keep the pipe narrow.
            value = mask.copy() if attack.ensemble is not None else int(mask.sum())
            counters = None
            if forked and prefix_cache is not None:
                counters = (
                    prefix_cache.hits - hits0,
                    prefix_cache.misses - misses0,
                )
            return shard.attack_idx, shard.shard_idx, value, counters, export

        return run_shard

    def _reduce(self, plan: EvalPlan, shard_results: List[tuple], n: int) -> EvalResult:
        """Fold shard counts/masks into the plan's :class:`EvalResult`.

        Plain attacks sum correct counts over shards in input order.  For
        each ensemble group, members' per-sample masks are AND-combined
        per sample range — a sample counts correct only if *every* member
        left it correct, the worst-case semantics of ``auto_attack_lite``.
        """
        correct_by_attack = [0] * len(plan.attacks)
        masks: Dict[Tuple[int, int], np.ndarray] = {}
        for attack_idx, shard_idx, value, _, _ in shard_results:
            if plan.attacks[attack_idx].ensemble is not None:
                masks[(attack_idx, shard_idx)] = value
                correct_by_attack[attack_idx] += int(value.sum())
            else:
                correct_by_attack[attack_idx] += value
        # An empty evaluation (empty dataset, max_samples=0) measured
        # nothing: report None, never a fake 0 % (to_result's contract).
        accuracies = {
            attack.name: (correct_by_attack[i] / n if n else None)
            for i, attack in enumerate(plan.attacks)
        }
        for group, members in plan.ensembles().items():
            shard_ids = sorted(si for ai, si in masks if ai == members[0])
            correct = 0
            for si in shard_ids:
                combined = masks[(members[0], si)].copy()
                for member in members[1:]:
                    combined &= masks[(member, si)]
                correct += int(combined.sum())
            accuracies[group] = correct / n if n else None
        return plan.to_result(accuracies)

    @staticmethod
    def _release_targets(targets: Dict[int, EvalTarget]) -> None:
        for target in targets.values():
            target.mwl.model.zero_grad()
            if target.mwl.head is not None:
                target.mwl.head.zero_grad()

    def run(
        self,
        plan: EvalPlan,
        dataset: ArrayDataset,
        target_for_slot: Callable[[int], EvalTarget],
        prepare_slot: Optional[Callable[[int], None]] = None,
        prefix_cache=None,
        cache_key=None,
    ) -> EvalResult:
        """Execute a plan and reduce shard counts into an :class:`EvalResult`.

        ``prepare_slot`` runs once per executor slot *before* the parallel
        region (sync a replica's weights, set eval-time modes);
        ``target_for_slot`` then supplies the slot's :class:`EvalTarget`.
        With a ``prefix_cache`` and ``cache_key``, clean shards whose
        target carries a prefix/suffix split are served from (and fill)
        the cache; rows are keyed by dataset index, so the ``max_samples``
        subsample path caches the same rows it evaluates.
        """
        x, y, rows, num_total = self._subsample(plan, dataset)
        n = len(x)
        shards = self.shards_for(plan, n)
        # The process backend accrues cache hits/misses (and fresh entries)
        # in forked children; detect an actual fork so the parent can merge
        # the deltas back.  Mirrors RoundExecutor.map's fallback-to-serial.
        forked = self.executor.forks_for(len(shards))
        targets = self._prepare_targets(
            self.executor.slots_for(len(shards)), target_for_slot, prepare_slot
        )
        run_shard = self._shard_runner(
            plan, x, y, rows, num_total, targets,
            prefix_cache=prefix_cache, cache_key=cache_key, forked=forked,
        )
        results = self.executor.map(run_shard, shards)

        if forked and prefix_cache is not None:
            for _, _, _, counters, export in results:
                if counters is not None:
                    prefix_cache.adopt_counters(*counters)
                if export is not None:
                    version, shard_rows, feats = export
                    prefix_cache.adopt_rows(
                        cache_key, version, shard_rows, feats, num_total
                    )

        self._release_targets(targets)
        return self._reduce(plan, results, n)

    def submit(
        self,
        plan: EvalPlan,
        dataset: ArrayDataset,
        target_for_slot: Callable[[int], EvalTarget],
        scheduler,
        prepare_slot: Optional[Callable[[int], None]] = None,
        tag: str = "eval-shard",
    ) -> "PendingEval":
        """Submit a plan as a task group on an :class:`FLScheduler`.

        The overlapped counterpart of :meth:`run`: shards are tagged
        ``tag`` and stream through the scheduler's persistent pool, so on
        the thread backend they interleave with whatever other groups
        (e.g. the next round's train clients) are in flight; the caller
        collects the reduced :class:`EvalResult` later from the returned
        handle.  ``prepare_slot`` runs here, in the caller's thread,
        *before* submission — the targets it prepares must stay untouched
        by the caller until the handle resolves (eval reads a published
        snapshot precisely so training can keep mutating the live model).
        The prefix cache is not threaded through this path: overlapped
        evaluation reads frozen snapshot replicas, which the cache's
        stage-scoped keys do not cover.
        """
        x, y, rows, num_total = self._subsample(plan, dataset)
        n = len(x)
        shards = self.shards_for(plan, n)
        targets = self._prepare_targets(
            scheduler.slots_for(len(shards)), target_for_slot, prepare_slot
        )
        run_shard = self._shard_runner(plan, x, y, rows, num_total, targets)
        group = scheduler.submit_group(tag, run_shard, shards)
        return PendingEval(group, plan, n, targets, self)


class PendingEval:
    """A handle on an in-flight sharded evaluation.

    Shards may complete in any wall-clock order; :meth:`result` reduces
    them in input order, so the resolved :class:`EvalResult` is
    bit-identical to the barrier :meth:`EvalExecutor.run` over the same
    published weights.
    """

    def __init__(self, group, plan: EvalPlan, n: int, targets, executor: EvalExecutor):
        self.group = group
        self.plan = plan
        self.num_samples = n
        self._targets = targets
        self._executor = executor
        self._result: Optional[EvalResult] = None

    def done(self) -> bool:
        return self.group.done()

    def result(self) -> EvalResult:
        """Block until every shard lands; reduce once (in input order) and cache."""
        if self._result is None:
            try:
                shard_results = self.group.results()
            finally:
                # release even when a shard raised — otherwise the overlap
                # replicas pin full-model gradient buffers indefinitely
                self._executor._release_targets(self._targets)
            self._result = self._executor._reduce(
                self.plan, shard_results, self.num_samples
            )
        return self._result
