"""Unified task scheduler: dependency-aware phases on a persistent pool.

PRs 1–3 parallelised the inside of each phase, but every phase still ended
in a hard barrier: ``RoundExecutor.map`` blocks until the slowest work
unit finishes, and the next phase (evaluation, the next round) cannot
start on the cores that went idle in the meantime.  :class:`FLScheduler`
replaces the one-shot barrier with **tagged task groups** submitted onto
the executor's persistent worker pool:

* ``submit_group(tag, fn, items, deps)`` registers one phase — e.g. the
  train-client units of round *r*, or the eval shards of a published
  snapshot — and returns a :class:`TaskGroup` immediately;
* groups with ``deps`` launch only once every dependency group has
  completed (dependency tracking is callback-driven, so waiting groups
  never occupy a worker — no pool-starvation deadlocks);
* :meth:`TaskGroup.stream` yields ``(index, result)`` pairs in completion
  order, so a consumer (e.g. staleness-bounded async aggregation) can act
  on each work unit *as it lands* while its siblings are still running;
* :meth:`TaskGroup.results` is the barrier view: results in input order,
  exceptions re-raised — drop-in for the old ``map`` contract.

Determinism contract (inherited from :class:`RoundExecutor`): results are
a pure function of the item list.  Worker *slots* are leased per task
from a per-group pool of ``workers_for(len(items))`` ids, so no two
concurrent tasks of one group ever share a slot — but unlike the stripe
assignment of ``map``, *which* slot a task gets is scheduling-dependent.
Callers therefore must (and all experiments do) make work units
slot-independent: every unit restores the state it trains from a shared
snapshot, so the slot only selects a private model workspace, never an
input.  Groups with different tags may run concurrently; callers back
them with disjoint workspaces (train replicas vs. eval replicas).

Backend mapping:

* ``thread``  — tasks go to the executor's persistent
  :class:`~concurrent.futures.ThreadPoolExecutor`; true streaming and
  cross-phase overlap.
* ``serial``  — tasks run eagerly, inline, at launch; streaming
  degenerates to input order.
* ``process`` — the group executes as one ``RoundExecutor.map`` fork
  region at launch (the fork is the snapshot; children cannot outlive the
  phase), completing atomically.  Cross-phase overlap needs the thread
  backend.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.flsim.executor import RoundExecutor


class _SlotPool:
    """Leases worker-slot ids so concurrent tasks never share a workspace."""

    def __init__(self, size: int):
        self._free = list(range(size))
        self._cond = threading.Condition()

    def acquire(self) -> int:
        with self._cond:
            while not self._free:
                self._cond.wait()
            return self._free.pop(0)

    def release(self, slot: int) -> None:
        with self._cond:
            self._free.append(slot)
            self._free.sort()
            self._cond.notify()


class TaskGroup:
    """One tagged phase of work: a list of items and their pending results."""

    def __init__(self, tag: str, num_items: int):
        self.tag = tag
        self.num_items = num_items
        self._lock = threading.Lock()
        self._results: List[Any] = [None] * num_items
        self._errors: List[Optional[BaseException]] = [None] * num_items
        self._remaining = num_items
        self._completed: "queue.SimpleQueue[Tuple[int, Any, Optional[BaseException]]]" = (
            queue.SimpleQueue()
        )
        self._done = threading.Event()
        self._on_done: List[Callable[[], None]] = []
        if num_items == 0:
            self._done.set()

    # -- producer side (scheduler internals) -------------------------------
    def _complete(self, index: int, result: Any, error: Optional[BaseException]) -> None:
        callbacks: List[Callable[[], None]] = []
        with self._lock:
            self._results[index] = result
            self._errors[index] = error
            self._remaining -= 1
            if self._remaining == 0:
                self._done.set()
                callbacks, self._on_done = self._on_done, []
        self._completed.put((index, result, error))
        for callback in callbacks:
            callback()

    def _add_done_callback(self, callback: Callable[[], None]) -> None:
        with self._lock:
            if not self._done.is_set():
                self._on_done.append(callback)
                return
        callback()

    # -- consumer side -----------------------------------------------------
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)

    def stream(self):
        """Yield ``(index, result)`` in completion order; single consumer.

        A work-unit exception is re-raised at the point the failed unit
        would have been yielded.
        """
        for _ in range(self.num_items):
            index, result, error = self._completed.get()
            if error is not None:
                raise error
            yield index, result

    def results(self) -> List[Any]:
        """Barrier view: block until done, return results in input order."""
        self._done.wait()
        for error in self._errors:
            if error is not None:
                raise error
        return list(self._results)


class FLScheduler:
    """Schedules tagged task groups over a :class:`RoundExecutor`'s pool.

    Parameters
    ----------
    executor:
        The backing round executor.  Its backend decides the dispatch mode
        (see module docstring) and its **persistent** thread pool carries
        every thread-backend group, so concurrent groups — eval shards of
        round *r* next to train clients of round *r+1* — share one set of
        workers and idle cores absorb whichever phase has work left.
    """

    def __init__(self, executor: RoundExecutor):
        self.executor = executor

    @property
    def backend(self) -> str:
        return self.executor.backend

    def slots_for(self, num_items: int) -> List[int]:
        """Every slot id a group of ``num_items`` tasks may lease.

        Callers pre-sync one workspace per listed slot before submitting,
        exactly as they do for ``RoundExecutor.map``.
        """
        if self.executor.backend == "thread":
            return list(range(self.executor.workers_for(num_items)))
        return [0]

    def submit_group(
        self,
        tag: str,
        fn: Callable[[Any, int], Any],
        items: Sequence[Any],
        deps: Sequence[TaskGroup] = (),
    ) -> TaskGroup:
        """Register one phase; launch it once every ``deps`` group is done.

        Returns the :class:`TaskGroup` immediately — consume it via
        :meth:`TaskGroup.stream` or :meth:`TaskGroup.results`.
        """
        items = list(items)
        group = TaskGroup(tag, len(items))
        if not items:
            return group
        pending = [dep for dep in deps if not dep.done()]
        if not pending:
            self._launch(group, fn, items)
            return group
        remaining = [len(pending)]
        lock = threading.Lock()

        def dep_done() -> None:
            with lock:
                remaining[0] -= 1
                if remaining[0] != 0:
                    return
            # Launch in whichever thread finished the last dependency; the
            # serial/process launch paths run the work right here.
            self._launch(group, fn, items)

        for dep in pending:
            dep._add_done_callback(dep_done)
        return group

    def run_group(
        self,
        tag: str,
        fn: Callable[[Any, int], Any],
        items: Sequence[Any],
        deps: Sequence[TaskGroup] = (),
    ) -> List[Any]:
        """Submit a group and gather it: the ``map``-compatible barrier."""
        return self.submit_group(tag, fn, items, deps).results()

    # -- dispatch ----------------------------------------------------------
    def _launch(self, group: TaskGroup, fn, items: List[Any]) -> None:
        if self.executor.backend == "thread" and self.executor.max_workers > 1:
            slots = _SlotPool(self.executor.workers_for(len(items)))
            pool = self.executor.thread_pool
            for i, item in enumerate(items):
                pool.submit(self._run_task, group, fn, i, item, slots)
            return
        if self.executor.backend == "process" and self.executor.forks_for(len(items)):
            # One fork region per group: barrier within the group (children
            # must not outlive the phase), deps still honoured at launch.
            try:
                results = self.executor.map(fn, items)
            except BaseException as error:  # propagate through the group
                for i in range(len(items)):
                    group._complete(i, None, error)
                return
            for i, result in enumerate(results):
                group._complete(i, result, None)
            return
        for i, item in enumerate(items):  # serial (and 1-worker fallbacks)
            try:
                result = fn(item, 0)
            except BaseException as error:
                group._complete(i, None, error)
                # eager inline dispatch: a failure aborts the rest of the
                # group, mirroring the serial map's fail-fast behaviour
                for j in range(i + 1, len(items)):
                    group._complete(j, None, error)
                return
            group._complete(i, result, None)

    @staticmethod
    def _run_task(group: TaskGroup, fn, index: int, item: Any, slots: _SlotPool) -> None:
        slot = slots.acquire()
        try:
            result = fn(item, slot)
        except BaseException as error:
            group._complete(index, None, error)
        else:
            group._complete(index, result, None)
        finally:
            slots.release(slot)
