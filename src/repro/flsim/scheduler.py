"""Unified task scheduler: dependency-aware phases on a persistent pool.

PRs 1–3 parallelised the inside of each phase, but every phase still ended
in a hard barrier: ``RoundExecutor.map`` blocks until the slowest work
unit finishes, and the next phase (evaluation, the next round) cannot
start on the cores that went idle in the meantime.  :class:`FLScheduler`
replaces the one-shot barrier with **tagged task groups** submitted onto
the executor's persistent worker pool:

* ``submit_group(tag, fn, items, deps)`` registers one phase — e.g. the
  train-client units of round *r*, or the eval shards of a published
  snapshot — and returns a :class:`TaskGroup` immediately;
* groups with ``deps`` launch only once every dependency group has
  completed (dependency tracking is callback-driven, so waiting groups
  never occupy a worker — no pool-starvation deadlocks);
* :meth:`TaskGroup.stream` yields ``(index, result)`` pairs in completion
  order, so a consumer (e.g. staleness-bounded async aggregation) can act
  on each work unit *as it lands* while its siblings are still running;
* :meth:`TaskGroup.results` is the barrier view: results in input order,
  exceptions re-raised — drop-in for the old ``map`` contract.

Determinism contract (inherited from :class:`RoundExecutor`): results are
a pure function of the item list.  Worker *slots* are leased per task
from a per-group pool of ``workers_for(len(items))`` ids, so no two
concurrent tasks of one group ever share a slot — but unlike the stripe
assignment of ``map``, *which* slot a task gets is scheduling-dependent.
Callers therefore must (and all experiments do) make work units
slot-independent: every unit restores the state it trains from a shared
snapshot, so the slot only selects a private model workspace, never an
input.  Groups with different tags may run concurrently; callers back
them with disjoint workspaces (train replicas vs. eval replicas).

Backend mapping:

* ``thread``  — tasks go to the executor's persistent
  :class:`~concurrent.futures.ThreadPoolExecutor`; true streaming and
  cross-phase overlap.
* ``serial``  — tasks run eagerly, inline, at launch; streaming
  degenerates to input order.
* ``process`` — the group executes as one ``RoundExecutor.map`` fork
  region at launch (the fork is the snapshot; children cannot outlive the
  phase), completing atomically.  Cross-phase overlap needs the thread
  backend.

On top of the task groups sits the **cross-round async pipeline**
(:class:`CrossRoundPipeline`): up to ``depth`` training rounds in flight
at once, each dispatched against the server state its *simulated*
dispatch time implies (the per-round **base version** — the count of
merge events applied to the server before dispatch), with merge events
replayed in simulated-arrival order across all in-flight rounds.  See the
class docstring for the full determinism argument.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.flsim.executor import CohortFn, RoundExecutor


class SlotPool:
    """Leases worker-slot ids so concurrent tasks never share a workspace.

    One pool may be shared by *several* concurrent task groups (the
    cross-round pipeline passes one pool to every train group), in which
    case no two concurrent tasks across those groups ever hold the same
    slot — the invariant that lets different rounds reuse one set of
    model workspaces.  Which slot a task gets is scheduling-dependent;
    callers keep results deterministic by making work units
    slot-independent (each restores its full input state from a
    snapshot, so the slot only picks a private workspace).
    """

    def __init__(self, size: int):
        self._free = list(range(size))
        self._cond = threading.Condition()

    def acquire(self) -> int:
        with self._cond:
            while not self._free:
                self._cond.wait()
            return self._free.pop(0)

    def release(self, slot: int) -> None:
        with self._cond:
            self._free.append(slot)
            self._free.sort()
            self._cond.notify()


#: Historical (private) name, kept for callers of the PR 4 surface.
_SlotPool = SlotPool


class TaskGroup:
    """One tagged phase of work: a list of items and their pending results."""

    def __init__(self, tag: str, num_items: int):
        self.tag = tag
        self.num_items = num_items
        self._lock = threading.Lock()
        self._results: List[Any] = [None] * num_items
        self._errors: List[Optional[BaseException]] = [None] * num_items
        self._remaining = num_items
        self._completed: "queue.SimpleQueue[Tuple[int, Any, Optional[BaseException]]]" = (
            queue.SimpleQueue()
        )
        self._done = threading.Event()
        self._on_done: List[Callable[[], None]] = []
        if num_items == 0:
            self._done.set()

    # -- producer side (scheduler internals) -------------------------------
    def _complete(self, index: int, result: Any, error: Optional[BaseException]) -> None:
        callbacks: List[Callable[[], None]] = []
        with self._lock:
            self._results[index] = result
            self._errors[index] = error
            self._remaining -= 1
            if self._remaining == 0:
                self._done.set()
                callbacks, self._on_done = self._on_done, []
        self._completed.put((index, result, error))
        for callback in callbacks:
            callback()

    def _add_done_callback(self, callback: Callable[[], None]) -> None:
        with self._lock:
            if not self._done.is_set():
                self._on_done.append(callback)
                return
        callback()

    # -- consumer side -----------------------------------------------------
    def done(self) -> bool:
        """Whether every work unit has completed (successfully or not)."""
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the group completes; returns ``done()``."""
        return self._done.wait(timeout)

    def next_completion(self) -> Tuple[int, Any]:
        """Block for the next completed work unit; single consumer.

        Returns ``(index, result)`` in completion order — the
        wall-clock order, which is scheduling-dependent.  Consumers that
        need determinism (the async merge replay) therefore buffer
        completions and act on them in an order derived from *simulated*
        time, never from the order this method yields.  A work-unit
        exception is re-raised here.  Must be called at most
        ``num_items`` times.
        """
        index, result, error = self._completed.get()
        if error is not None:
            raise error
        return index, result

    def stream(self):
        """Yield ``(index, result)`` in completion order; single consumer.

        A work-unit exception is re-raised at the point the failed unit
        would have been yielded.
        """
        for _ in range(self.num_items):
            yield self.next_completion()

    def results(self) -> List[Any]:
        """Barrier view: block until done, return results in input order."""
        self._done.wait()
        for error in self._errors:
            if error is not None:
                raise error
        return list(self._results)


class FLScheduler:
    """Schedules tagged task groups over a :class:`RoundExecutor`'s pool.

    Parameters
    ----------
    executor:
        The backing round executor.  Its backend decides the dispatch mode
        (see module docstring) and its **persistent** thread pool carries
        every thread-backend group, so concurrent groups — eval shards of
        round *r* next to train clients of round *r+1* — share one set of
        workers and idle cores absorb whichever phase has work left.
    """

    def __init__(self, executor: RoundExecutor):
        self.executor = executor

    @property
    def backend(self) -> str:
        return self.executor.backend

    def slots_for(self, num_items: int) -> List[int]:
        """Every slot id a group of ``num_items`` tasks may lease.

        Callers pre-sync one workspace per listed slot before submitting,
        exactly as they do for ``RoundExecutor.map``.
        """
        if self.executor.backend in ("thread", "batched"):
            return list(range(self.executor.workers_for(num_items)))
        return [0]

    def submit_group(
        self,
        tag: str,
        fn: Callable[[Any, int], Any],
        items: Sequence[Any],
        deps: Sequence[TaskGroup] = (),
        slot_pool: Optional[SlotPool] = None,
    ) -> TaskGroup:
        """Register one phase; launch it once every ``deps`` group is done.

        Returns the :class:`TaskGroup` immediately — consume it via
        :meth:`TaskGroup.stream` or :meth:`TaskGroup.results`.
        ``slot_pool`` overrides the group-private slot pool with a shared
        one so *several concurrent groups* (the pipeline's cross-round
        train groups) can coexist on one set of worker workspaces without
        two in-flight tasks ever sharing a slot.
        """
        items = list(items)
        group = TaskGroup(tag, len(items))
        if not items:
            return group
        pending = [dep for dep in deps if not dep.done()]
        if not pending:
            self._launch(group, fn, items, slot_pool)
            return group
        remaining = [len(pending)]
        lock = threading.Lock()

        def dep_done() -> None:
            with lock:
                remaining[0] -= 1
                if remaining[0] != 0:
                    return
            # Launch in whichever thread finished the last dependency; the
            # serial/process launch paths run the work right here.
            self._launch(group, fn, items, slot_pool)

        for dep in pending:
            dep._add_done_callback(dep_done)
        return group

    def run_group(
        self,
        tag: str,
        fn: Callable[[Any, int], Any],
        items: Sequence[Any],
        deps: Sequence[TaskGroup] = (),
    ) -> List[Any]:
        """Submit a group and gather it: the ``map``-compatible barrier.

        Inherits the group determinism contract — results in input order,
        a pure function of the item list on every backend.
        """
        return self.submit_group(tag, fn, items, deps).results()

    # -- dispatch ----------------------------------------------------------
    def _launch(
        self,
        group: TaskGroup,
        fn,
        items: List[Any],
        slot_pool: Optional[SlotPool] = None,
    ) -> None:
        if self.executor.backend == "batched" and isinstance(fn, CohortFn):
            self._launch_batched(group, fn, items, slot_pool)
            return
        if (
            self.executor.backend in ("thread", "batched")
            and self.executor.max_workers > 1
        ):
            slots = (
                slot_pool
                if slot_pool is not None
                else SlotPool(self.executor.workers_for(len(items)))
            )
            pool = self.executor.thread_pool
            for i, item in enumerate(items):
                pool.submit(self._run_task, group, fn, i, item, slots)
            return
        if self.executor.backend == "process" and self.executor.forks_for(len(items)):
            # One fork region per group: barrier within the group (children
            # must not outlive the phase), deps still honoured at launch.
            try:
                results = self.executor.map(fn, items)
            except BaseException as error:  # propagate through the group
                for i in range(len(items)):
                    group._complete(i, None, error)
                return
            for i, result in enumerate(results):
                group._complete(i, result, None)
            return
        for i, item in enumerate(items):  # serial (and 1-worker fallbacks)
            try:
                result = fn(item, 0)
            except BaseException as error:
                group._complete(i, None, error)
                # eager inline dispatch: a failure aborts the rest of the
                # group, mirroring the serial map's fail-fast behaviour
                for j in range(i + 1, len(items)):
                    group._complete(j, None, error)
                return
            group._complete(i, result, None)

    def _launch_batched(
        self,
        group: TaskGroup,
        fn: CohortFn,
        items: List[Any],
        slot_pool: Optional[SlotPool] = None,
    ) -> None:
        """Dispatch a group as fusion cohorts (the ``batched`` backend).

        One pool task per cohort: the cohort leases a single slot, runs the
        stacked forward/backward, and completes every member index —
        cohorts are planned per group, so the async pipeline's per-round
        groups never fuse clients across base versions.
        """
        cohorts = self.executor.plan_cohorts(fn, items)
        if self.executor.max_workers > 1:
            slots = (
                slot_pool
                if slot_pool is not None
                else SlotPool(self.executor.workers_for(len(items)))
            )
            pool = self.executor.thread_pool
            for idxs in cohorts:
                pool.submit(
                    self._run_cohort_task,
                    group,
                    fn,
                    idxs,
                    [items[i] for i in idxs],
                    slots,
                )
            return
        done = [False] * len(items)  # inline 1-worker path, fail fast
        for idxs in cohorts:
            try:
                results = self._cohort_results(fn, idxs, [items[i] for i in idxs], 0)
            except BaseException as error:
                for i in range(len(items)):
                    if not done[i]:
                        group._complete(i, None, error)
                return
            for i, result in zip(idxs, results):
                group._complete(i, result, None)
                done[i] = True

    @staticmethod
    def _cohort_results(
        fn: CohortFn, idxs: List[int], cohort_items: List[Any], slot: int
    ) -> List[Any]:
        if len(idxs) == 1:
            return [fn(cohort_items[0], slot)]
        results = fn.run_cohort(cohort_items, slot)
        if len(results) != len(idxs):
            raise RuntimeError(
                f"cohort fn returned {len(results)} results for "
                f"{len(idxs)} items"
            )
        return results

    @staticmethod
    def _run_cohort_task(
        group: TaskGroup,
        fn: CohortFn,
        idxs: List[int],
        cohort_items: List[Any],
        slots: SlotPool,
    ) -> None:
        slot = slots.acquire()
        try:
            try:
                results = FLScheduler._cohort_results(fn, idxs, cohort_items, slot)
            except BaseException as error:
                for i in idxs:
                    group._complete(i, None, error)
                return
            for i, result in zip(idxs, results):
                group._complete(i, result, None)
        finally:
            slots.release(slot)

    @staticmethod
    def _run_task(group: TaskGroup, fn, index: int, item: Any, slots: SlotPool) -> None:
        slot = slots.acquire()
        try:
            result = fn(item, slot)
        except BaseException as error:
            group._complete(index, None, error)
        else:
            group._complete(index, result, None)
        finally:
            slots.release(slot)


# ---------------------------------------------------------------------------
# Cross-round asynchronous pipeline
# ---------------------------------------------------------------------------


@dataclass
class AsyncRoundTicket:
    """Bookkeeping for one in-flight round of the cross-round pipeline.

    ``base_version`` is the per-round base version every client of the
    round trains from: the number of merge events the server had absorbed
    at the round's simulated dispatch time.  ``events`` holds the round's
    merge schedule as client *positions* (ascending within an event, so
    within-event averages always reduce in input order); ``event_times``
    are the absolute simulated times each event applies (the arrival of
    its slowest member).  ``updates`` buffers landed work-unit results
    until the simulated order lets them merge.
    """

    round_idx: int
    dispatch_time: float
    base_version: int
    events: List[List[int]]
    event_times: List[float]
    meta: Any = None
    group: Optional[TaskGroup] = None
    next_event: int = 0
    landed: List[bool] = field(default_factory=list)
    updates: List[Any] = field(default_factory=list)

    @property
    def drain_time(self) -> float:
        """Simulated time the round's last merge event applies."""
        return self.event_times[-1] if self.event_times else self.dispatch_time


class CrossRoundPipeline:
    """Staleness-bounded asynchronous execution across round boundaries.

    The classic async round still drains at every round boundary: all of
    round *r*'s updates must merge before round *r+1* may dispatch.  The
    pipeline removes that barrier the way a bounded-staleness parameter
    server does: up to ``depth`` rounds are in flight at once, round *r*
    dispatches against the **latest merged server state** its simulated
    dispatch time implies, and fast clients of round *r* merge while the
    stragglers of round *r−1* are still training.

    Mechanics (all in *simulated* time, never wall clock):

    * round *r*'s dispatch time is ``max(previous dispatch, drain time of
      round r−depth)`` — the SSP-style capacity rule: at most ``depth``
      rounds between the oldest un-drained round and the newest dispatch;
    * before dispatching, every merge event (of any in-flight round) with
      apply time ≤ the dispatch time is applied, in global
      ``(time, round, event)`` order; the server version after that replay
      is the round's **base version** and the caller snapshots the server
      for the round's clients right then;
    * each round's own merge schedule is
      :func:`repro.core.aggregator.async_merge_schedule` over its
      simulated arrival order, so ``max_staleness`` bounds the
      *intra-round* merge lag exactly as in the single-round engine; the
      staleness handed to the merge callback is the **total** lag
      ``server version at merge − base version``, which additionally
      counts interleaved merges of the other in-flight rounds (at
      ``depth=1`` the two notions coincide).

    Determinism contract: the merge replay order, per-round base
    versions, and dispatch times are pure functions of the per-client
    simulated costs — wall-clock completion order only decides *when* a
    buffered result becomes available, never when it merges.  Results are
    therefore bit-identical on every backend at any worker count, and
    ``depth=1`` with ``max_staleness=0`` reproduces synchronous FedAvg
    exactly.  Wall-clock overlap needs the thread backend (serial and
    process launch groups eagerly at dispatch and degrade gracefully to
    the same — bit-identical — results).

    Population-engine composition: tickets hold strong references to the
    dispatched :class:`~repro.flsim.population.FLClient` objects (via
    their items and ``meta``), so a lazily materialised client stays
    alive for every in-flight round that uses it even after the
    population LRU evicts it — eviction only drops the *cache entry*,
    and a later re-touch rematerialises the identical client from its
    ``(seed, cid)`` streams.
    """

    def __init__(
        self,
        scheduler: FLScheduler,
        max_staleness: int,
        depth: int,
        merge_event: Callable[[AsyncRoundTicket, List[int], int], None],
        round_complete: Callable[[AsyncRoundTicket], None],
        tag: str = "train",
    ):
        if depth < 1:
            raise ValueError("pipeline depth must be >= 1")
        if max_staleness < 0:
            raise ValueError("max_staleness must be >= 0")
        self.scheduler = scheduler
        self.max_staleness = max_staleness
        self.depth = depth
        self.merge_event = merge_event
        self.round_complete = round_complete
        self.tag = tag
        #: Server version: merge events applied so far.
        self.version = 0
        #: Highest number of concurrently in-flight rounds observed.
        self.peak_in_flight = 0
        self._inflight: List[AsyncRoundTicket] = []
        self._dispatched = 0
        self._last_dispatch_time = 0.0
        self._drain_watermarks: List[float] = []  # running max drain per dispatch
        executor = scheduler.executor
        self._slot_pool = SlotPool(executor.max_workers) if executor.pooled else None

    @property
    def in_flight(self) -> int:
        """Rounds dispatched but not yet fully merged."""
        return len(self._inflight)

    def stats(self) -> Dict[str, int]:
        """Live pipeline counters (the status endpoint's async panel).

        Pure bookkeeping reads — safe to sample between merges — and
        derived from the simulated schedule, so identical across
        backends at any worker count.
        """
        return {
            "version": self.version,
            "in_flight": self.in_flight,
            "peak_in_flight": self.peak_in_flight,
            "rounds_dispatched": self._dispatched,
        }

    def dispatch(
        self,
        round_idx: int,
        items: Sequence[Any],
        costs_s: Sequence[float],
        fn_factory: Callable[[AsyncRoundTicket], Callable[[Any, int], Any]],
        meta: Any = None,
    ) -> AsyncRoundTicket:
        """Dispatch one round against the server state its sim-time implies.

        ``costs_s`` are the clients' simulated training latencies (pure
        arithmetic over device states, known *before* training), which fix
        the arrival order, the merge schedule, and every event's apply
        time.  ``fn_factory(ticket)`` is called *after* the pre-dispatch
        merge replay, so it can snapshot the server at exactly the
        round's base version and close the work function over that
        snapshot.  Rounds must be dispatched in increasing simulated
        order (the run loop's natural order).
        """
        from repro.core.aggregator import async_merge_schedule  # local: core imports flsim

        items = list(items)
        costs_s = [float(c) for c in costs_s]
        if len(items) != len(costs_s):
            raise ValueError("items and costs_s must have equal length")
        t = self._last_dispatch_time
        if self._dispatched >= self.depth:
            t = max(t, self._drain_watermarks[self._dispatched - self.depth])
        self.advance_to(t)
        order = sorted(range(len(items)), key=lambda i: (costs_s[i], i))
        events = [
            sorted(order[pos] for pos in event)
            for event in async_merge_schedule(len(items), self.max_staleness)
        ]
        event_times = [
            t + max(costs_s[i] for i in event) for event in events
        ]
        ticket = AsyncRoundTicket(
            round_idx=round_idx,
            dispatch_time=t,
            base_version=self.version,
            events=events,
            event_times=event_times,
            meta=meta,
            landed=[False] * len(items),
            updates=[None] * len(items),
        )
        ticket.group = self.scheduler.submit_group(
            self.tag, fn_factory(ticket), items, slot_pool=self._slot_pool
        )
        self._last_dispatch_time = t
        previous = self._drain_watermarks[-1] if self._drain_watermarks else 0.0
        self._drain_watermarks.append(max(previous, ticket.drain_time))
        self._dispatched += 1
        if ticket.events:
            self._inflight.append(ticket)
            self.peak_in_flight = max(self.peak_in_flight, len(self._inflight))
        else:  # empty round: nothing to merge
            self.round_complete(ticket)
        return ticket

    def advance_to(self, time_limit: float) -> None:
        """Apply every merge event with apply time ≤ ``time_limit``.

        Events replay in global ``(apply time, round, event)`` order;
        applying one may block on the wall clock until the event's member
        results actually land — which is exactly where the pipeline's
        overlap comes from: while this waits on round *r*'s fast clients,
        round *r−1*'s stragglers keep training on other workers.
        """
        while True:
            ticket = self._next_ready(time_limit)
            if ticket is None:
                return
            self._apply_event(ticket)

    def drain_all(self) -> None:
        """Apply every outstanding merge event (end of the run loop)."""
        self.advance_to(float("inf"))

    # -- checkpoint support --------------------------------------------------
    def export_state(self, export_meta: Callable[[Any], Any]) -> Dict[str, Any]:
        """Snapshot the pipeline's bookkeeping for a checkpoint.

        Barriers on every in-flight ticket's *results* (wall-clock only —
        the simulated merge schedule is fixed at dispatch, so waiting here
        cannot change what merges when) and stores the landed updates with
        each ticket.  The live pipeline keeps running afterwards: landed
        tickets never touch their task group again
        (:meth:`_apply_event` only calls ``next_completion`` while a
        member is un-landed).  ``export_meta`` serialises each ticket's
        opaque ``meta`` (the experiment's round context).
        """
        tickets = []
        for ticket in self._inflight:
            if ticket.group is not None and not all(ticket.landed):
                results = ticket.group.results()
                ticket.updates = list(results)
                ticket.landed = [True] * len(results)
            tickets.append(
                {
                    "round_idx": ticket.round_idx,
                    "dispatch_time": ticket.dispatch_time,
                    "base_version": ticket.base_version,
                    "events": [list(e) for e in ticket.events],
                    "event_times": list(ticket.event_times),
                    "next_event": ticket.next_event,
                    "updates": list(ticket.updates),
                    "meta": export_meta(ticket.meta),
                }
            )
        return {
            "version": self.version,
            "peak_in_flight": self.peak_in_flight,
            "dispatched": self._dispatched,
            "last_dispatch_time": self._last_dispatch_time,
            "drain_watermarks": list(self._drain_watermarks),
            "tickets": tickets,
        }

    def restore_state(
        self, state: Dict[str, Any], build_meta: Callable[[Any], Any]
    ) -> None:
        """Rebuild a freshly constructed pipeline from a checkpoint snapshot.

        Restored tickets carry their landed updates (``group=None`` — all
        members landed, so the merge replay never consults the group) and
        the scalar bookkeeping resumes exactly where the checkpoint left
        it, so the continuing dispatch/merge schedule is bit-identical to
        the uninterrupted run's.  ``build_meta`` rehydrates each ticket's
        round context from ``export_meta``'s output.
        """
        if self._dispatched:
            raise RuntimeError(
                "restore_state requires a freshly constructed pipeline"
            )
        self.version = state["version"]
        self.peak_in_flight = state["peak_in_flight"]
        self._dispatched = state["dispatched"]
        self._last_dispatch_time = state["last_dispatch_time"]
        self._drain_watermarks = list(state["drain_watermarks"])
        for data in state["tickets"]:
            ticket = AsyncRoundTicket(
                round_idx=data["round_idx"],
                dispatch_time=data["dispatch_time"],
                base_version=data["base_version"],
                events=[list(e) for e in data["events"]],
                event_times=list(data["event_times"]),
                meta=build_meta(data["meta"]),
                group=None,
                next_event=data["next_event"],
                landed=[True] * len(data["updates"]),
                updates=list(data["updates"]),
            )
            self._inflight.append(ticket)

    # -- internals ---------------------------------------------------------
    def _next_ready(self, time_limit: float) -> Optional[AsyncRoundTicket]:
        best: Optional[AsyncRoundTicket] = None
        best_key: Optional[Tuple[float, int, int]] = None
        for ticket in self._inflight:
            key = (
                ticket.event_times[ticket.next_event],
                ticket.round_idx,
                ticket.next_event,
            )
            if key[0] <= time_limit and (best_key is None or key < best_key):
                best, best_key = ticket, key
        return best

    def _apply_event(self, ticket: AsyncRoundTicket) -> None:
        members = ticket.events[ticket.next_event]
        while not all(ticket.landed[i] for i in members):
            index, result = ticket.group.next_completion()
            ticket.landed[index] = True
            ticket.updates[index] = result
        staleness = self.version - ticket.base_version
        self.merge_event(ticket, members, staleness)
        self.version += 1
        ticket.next_event += 1
        if ticket.next_event == len(ticket.events):
            self._inflight.remove(ticket)
            self.round_complete(ticket)
