"""Atomic run checkpoints: snapshot, restore, and config fingerprinting.

A checkpoint is one pickle file written **atomically** (tmp file in the
same directory + ``os.replace``), fsynced before the rename, so a crash
at any instant leaves either the previous checkpoint or the new one —
never a torn file.  The payload is assembled by
:meth:`~repro.flsim.base.FederatedExperiment._write_checkpoint` and holds
everything the generic run loop needs to continue bit-identically:
server/model state, the experiment RNG's bit-generator state, the round
history and async merge log, the simulated clock, and (async mode) the
cross-round pipeline's full in-flight bookkeeping.

The **config fingerprint** ties journals and checkpoints to the
*semantics* of a run: a SHA-256 over the config dataclass with the
non-semantic fields removed — execution backend, worker counts, eval
overlap, journal/checkpoint paths — because the engine's determinism
contract guarantees those cannot change results.  Resuming on a
different backend or worker count is therefore explicitly supported;
resuming with a different learning rate is explicitly refused.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from typing import Any, Dict


class CheckpointError(RuntimeError):
    """A checkpoint could not be read or fails validation."""


#: The on-disk payload format version (bump on incompatible change).
CHECKPOINT_FORMAT = 1

#: Config fields that cannot affect results (the bit-identity contract):
#: execution backends/worker counts, eval overlap, the journal /
#: checkpoint plumbing itself, the streaming-metrics surface (a pure
#: observer of journal events), and the client-population materialisation
#: knobs (lazy vs eager and the LRU capacity are pure caching — every
#: client is a deterministic function of the population seed).
#: Everything else is semantic and fingerprinted; note
#: ``population_scheme`` *is* semantic (partition and virtual shards
#: differ), so a resume may change cache size but not scheme, and
#: ``eval_every_merge`` is semantic too (it changes what the run records
#: and journals, so a replay must use the original's value).
NONSEMANTIC_FIELDS = frozenset(
    {
        "journal_path",
        "checkpoint_every",
        "executor_backend",
        "round_parallelism",
        "eval_backend",
        "eval_parallelism",
        "overlap_eval",
        "client_materialisation",
        "client_cache_size",
        "metrics_path",
        "status_port",
    }
)


def config_fingerprint(config: Any, experiment: str) -> str:
    """Stable hash of a config dataclass's semantic fields + experiment name."""
    payload = dataclasses.asdict(config)
    for name in NONSEMANTIC_FIELDS:
        payload.pop(name, None)
    payload["experiment"] = experiment
    text = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def write_checkpoint(path: str, payload: Dict[str, Any]) -> None:
    """Pickle ``payload`` to ``path`` atomically (tmp + fsync + rename)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as f:
            pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def read_checkpoint(path: str) -> Dict[str, Any]:
    """Load and validate a checkpoint payload."""
    if not os.path.exists(path):
        raise CheckpointError(f"checkpoint not found: {path}")
    try:
        with open(path, "rb") as f:
            payload = pickle.load(f)
    except (pickle.UnpicklingError, EOFError, OSError) as error:
        raise CheckpointError(f"unreadable checkpoint {path}: {error}") from error
    if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path}: unsupported checkpoint format "
            f"{payload.get('format') if isinstance(payload, dict) else '?'!r} "
            f"(expected {CHECKPOINT_FORMAT})"
        )
    return payload
