"""Streaming run metrics + a read-only HTTP status endpoint.

Promotes a run from a batch script to an observable service: the
experiment's journalling funnel (``_jlog``) tees every event into a
:class:`MetricsService`, which

* appends **live** JSONL metrics rows (per round, per merge event, per
  eval) to ``FLConfig.metrics_path``, flushed as they happen — ingestion
  (client updates merging into the server) stays decoupled from serving
  (metrics readers tail the file mid-run);
* maintains a thread-safe status snapshot (current round, server
  version, simulated clock, fault/threat/cache counters, last eval);
* optionally serves that snapshot as JSON over a stdlib
  :class:`~http.server.ThreadingHTTPServer` on a daemon thread
  (``FLConfig.status_port``; port 0 binds an ephemeral port) — ``GET
  /status`` for the snapshot, ``GET /events`` for the journal tail,
  ``GET /health`` for liveness.

The service is pure observability: it only ever *reads* event payloads
(all emitted from the main run thread), so it cannot perturb results —
both knobs are non-semantic config fields.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional

#: Event kinds that become JSONL metrics rows (the streaming surface);
#: everything else only updates the status snapshot's counters.
STREAM_KINDS = frozenset(
    {"run_start", "round", "merge", "eval", "merge_eval", "run_end", "run_abort"}
)

#: How many recent events ``GET /events`` serves.
TAIL_EVENTS = 50


class MetricsService:
    """Live metrics stream + status snapshot for one experiment run."""

    def __init__(
        self,
        metrics_path: Optional[str] = None,
        status_port: Optional[int] = None,
        parallelism: Optional[str] = None,
    ):
        self._lock = threading.Lock()
        self._tail: deque = deque(maxlen=TAIL_EVENTS)
        self._state: Dict[str, Any] = {
            "state": "init",
            "round": None,
            "rounds_completed": 0,
            "aborted_rounds": 0,
            "server_version": 0,
            "clock_s": 0.0,
            "events_observed": 0,
            "counters": {
                "dispatches": 0,
                "merges": 0,
                "evals": 0,
                "merge_evals": 0,
                "checkpoints": 0,
                "agg_aborts": 0,
                "fault_rounds": 0,
                "faults_dropped": 0,
                "threat_rounds": 0,
                "byzantine_clients": 0,
            },
            "cache": None,
            "last_eval": None,
            "last_merge_eval": None,
            "parallelism": parallelism,
        }
        self._file = None
        if metrics_path:
            directory = os.path.dirname(os.path.abspath(metrics_path))
            os.makedirs(directory, exist_ok=True)
            self._file = open(metrics_path, "w", encoding="utf-8")
        self.metrics_path = metrics_path
        self._server: Optional[StatusServer] = None
        if status_port is not None:
            self._server = StatusServer(self, status_port)

    # -- observation (main run thread) ----------------------------------------
    def observe(self, kind: str, payload: Dict[str, Any]) -> None:
        """Fold one journal event into the stream and the snapshot."""
        if self._file is not None and kind in STREAM_KINDS:
            row = {"kind": kind}
            row.update(payload)
            self._file.write(json.dumps(row) + "\n")
            self._file.flush()
        with self._lock:
            s = self._state
            c = s["counters"]
            s["events_observed"] += 1
            self._tail.append({"kind": kind, **payload})
            if s["state"] == "init":
                s["state"] = "running"
            if kind == "run_start":
                for key in (
                    "experiment", "fingerprint", "mode", "population",
                    "cohort", "scheme",
                ):
                    if key in payload:
                        s[key] = payload[key]
                s["rounds_total"] = payload.get("rounds")
            elif kind == "round":
                s["round"] = payload.get("round")
                s["rounds_completed"] += 1
                if payload.get("aborted"):
                    s["aborted_rounds"] += 1
                s["clock_s"] = max(s["clock_s"], payload.get("sim_time_s", 0.0))
            elif kind == "merge":
                c["merges"] += 1
                s["server_version"] = c["merges"]
                s["clock_s"] = max(s["clock_s"], payload.get("sim_time_s", 0.0))
            elif kind == "dispatch":
                c["dispatches"] += 1
            elif kind == "eval":
                c["evals"] += 1
                s["last_eval"] = dict(payload)
            elif kind == "merge_eval":
                c["merge_evals"] += 1
                s["last_merge_eval"] = dict(payload)
            elif kind == "checkpoint":
                c["checkpoints"] += 1
            elif kind == "agg_abort":
                c["agg_aborts"] += 1
            elif kind == "faults":
                c["fault_rounds"] += 1
                c["faults_dropped"] += len(payload.get("dropped", []))
            elif kind == "threats":
                c["threat_rounds"] += 1
                c["byzantine_clients"] += len(payload.get("byzantine", []))
            elif kind == "sample":
                s["cache"] = dict(payload.get("cache") or {})
            elif kind == "run_end":
                s["state"] = "finished"
                s["clock_s"] = max(s["clock_s"], payload.get("clock_s", 0.0))
            elif kind == "run_abort":
                s["state"] = "aborted"

    def update_pipeline(self, stats: Dict[str, int]) -> None:
        """Fold live cross-round pipeline stats into the snapshot."""
        with self._lock:
            self._state["pipeline"] = dict(stats)

    # -- serving (any thread) --------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A deep-enough copy of the current status (JSON-safe)."""
        with self._lock:
            return json.loads(json.dumps(self._state))

    def tail(self) -> List[dict]:
        with self._lock:
            return list(self._tail)

    @property
    def port(self) -> Optional[int]:
        """The bound status-endpoint port (resolves ephemeral port 0)."""
        return self._server.port if self._server is not None else None

    @property
    def address(self) -> Optional[str]:
        return (
            f"http://127.0.0.1:{self._server.port}"
            if self._server is not None
            else None
        )

    def close(self) -> None:
        if self._server is not None:
            self._server.close()
            self._server = None
        if self._file is not None and not self._file.closed:
            self._file.close()


class StatusServer:
    """Read-only JSON status endpoint on a daemon thread (loopback only)."""

    def __init__(self, service: MetricsService, port: int):
        handler = _make_handler(service)
        self._httpd = ThreadingHTTPServer(("127.0.0.1", port), handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="flsim-status",
            daemon=True,
        )
        self._thread.start()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)


def _make_handler(service: MetricsService):
    class Handler(BaseHTTPRequestHandler):
        def log_message(self, *args):  # silence per-request stderr noise
            pass

        def _send(self, payload: Any, status: int = 200) -> None:
            body = json.dumps(payload, indent=2).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self):  # noqa: N802 - http.server API
            path = self.path.split("?", 1)[0].rstrip("/") or "/status"
            if path in ("/status", "/"):
                self._send(service.snapshot())
            elif path == "/events":
                self._send({"events": service.tail()})
            elif path == "/health":
                snap = service.snapshot()
                self._send({"ok": True, "state": snap["state"]})
            else:
                self._send({"error": f"unknown path {self.path!r}"}, status=404)

    return Handler
