"""Pluggable robust aggregation rules (median, trimmed-mean, Krum, clipping).

Defences against the update-space threats in :mod:`repro.flsim.threats`,
selected by ``FLConfig.aggregation_rule`` and applied wherever the engine
averages client states — the sync FedAvg merge, FedProphet's per-module
merges (via the ``average_fn`` hook on
:func:`repro.core.aggregator.aggregate_modules` /
:func:`~repro.core.aggregator.merge_async_partial`), FedRBN's dual-BN
merge, the partial-training masked average
(:func:`masked_robust_average`), and every async/pipelined merge event.

Rules (``f`` Byzantine clients out of ``n``):

* ``fedavg`` — the plain weighted average; **bit-identical** to the
  engine's historical behaviour (it delegates to
  :func:`~repro.flsim.aggregation.weighted_average_states` unchanged).
* ``median`` — coordinate-wise median (unweighted; resists any minority
  of arbitrary coordinates, breakdown point 1/2).
* ``trimmed_mean`` — per coordinate, drop the ``trim_ratio`` fraction of
  largest and smallest values, average the rest (clamped so at least one
  value survives).
* ``krum`` / ``multi_krum`` — Blanchard et al. (2017): score each update
  by the summed squared distance to its ``n - f - 2`` nearest
  neighbours; keep the best-scored one (``krum``) or the best
  ``max(1, n - f)`` averaged by weight (``multi_krum``).  Ties break by
  client position, deterministically.
* ``norm_clip`` — clip each client's update delta ``state - base`` to an
  L2 ball of radius ``clip_norm`` (``None`` = the cohort's median norm,
  recomputed per merge) before averaging; bounds any single client's
  displacement of the server.

Every rule is a deterministic, order-stable function of its inputs (the
client list order is fixed by the sampler), so robust aggregation
preserves the engine's cross-backend bit-identity contract.  Each
``aggregate`` call also returns a JSON-safe stats dict (selected /
rejected clients, clip factors) that the run loops journal per round —
per-rule rejection and clipping observability for replayable runs.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.flsim.aggregation import (
    AggregationError,
    StateDict,
    masked_partial_average,
    weighted_average_states,
)
from repro.nn.dtype import accum_dtype

AGGREGATION_RULES = (
    "fedavg",
    "median",
    "trimmed_mean",
    "krum",
    "multi_krum",
    "norm_clip",
)


def _keys(states: Sequence[StateDict], keys: Optional[Sequence[str]]) -> List[str]:
    return list(states[0] if keys is None else keys)


def _check(states: Sequence[StateDict], weights: Sequence[float]) -> None:
    if not states:
        raise AggregationError(
            "cannot aggregate an empty set of client updates "
            "(did every sampled client drop out?)"
        )
    if len(states) != len(weights):
        raise ValueError("states and weights length mismatch")


def coordinate_median(
    states: Sequence[StateDict],
    keys: Optional[Sequence[str]] = None,
) -> StateDict:
    """Coordinate-wise (unweighted) median of the client states."""
    if not states:
        raise AggregationError("cannot take the median of zero client updates")
    out: StateDict = {}
    for key in _keys(states, keys):
        stack = np.stack([s[key] for s in states]).astype(
            accum_dtype(*(s[key] for s in states)), copy=False
        )
        out[key] = np.median(stack, axis=0)
    return out


def trimmed_mean(
    states: Sequence[StateDict],
    trim_ratio: float,
    keys: Optional[Sequence[str]] = None,
) -> Tuple[StateDict, int]:
    """Coordinate-wise trimmed mean; returns ``(merged, trimmed_per_side)``.

    ``trim_ratio`` of the values are dropped from *each* end per
    coordinate, clamped so at least one value remains.
    """
    if not states:
        raise AggregationError("cannot trim-average zero client updates")
    n = len(states)
    k = min(int(trim_ratio * n), (n - 1) // 2)
    out: StateDict = {}
    for key in _keys(states, keys):
        stack = np.stack([s[key] for s in states]).astype(
            accum_dtype(*(s[key] for s in states)), copy=False
        )
        stack = np.sort(stack, axis=0)
        out[key] = stack[k : n - k].mean(axis=0)
    return out, k


def krum_scores(
    states: Sequence[StateDict],
    byzantine_f: int,
    keys: Optional[Sequence[str]] = None,
) -> np.ndarray:
    """Krum score per client: summed squared distance to nearest neighbours.

    Each client's flattened update is compared to every other; the score
    sums its ``max(1, n - f - 2)`` smallest squared distances (lower is
    better — the honest cluster scores low, outliers high).
    """
    if not states:
        raise AggregationError("cannot Krum-score zero client updates")
    flat = [
        np.concatenate(
            [np.asarray(s[key], dtype=np.float64).ravel() for key in _keys(states, keys)]
        )
        for s in states
    ]
    n = len(flat)
    if n == 1:
        return np.zeros(1)
    dist2 = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = flat[i] - flat[j]
            dist2[i, j] = dist2[j, i] = float(d @ d)
    neighbours = max(1, min(n - 1, n - byzantine_f - 2))
    scores = np.zeros(n)
    for i in range(n):
        others = np.sort(np.delete(dist2[i], i))
        scores[i] = others[:neighbours].sum()
    return scores


def krum_select(
    states: Sequence[StateDict],
    byzantine_f: int,
    keys: Optional[Sequence[str]] = None,
    multi: bool = False,
) -> List[int]:
    """The client positions Krum keeps (ties break by position)."""
    scores = krum_scores(states, byzantine_f, keys)
    n = len(scores)
    m = max(1, n - byzantine_f) if multi else 1
    order = np.argsort(scores, kind="stable")
    return sorted(int(i) for i in order[: min(m, n)])


def clipped_norm_average(
    states: Sequence[StateDict],
    weights: Sequence[float],
    base: StateDict,
    clip_norm: Optional[float],
    keys: Optional[Sequence[str]] = None,
) -> Tuple[StateDict, Dict[str, Any]]:
    """Average of per-client deltas clipped to an L2 ball around ``base``.

    ``clip_norm=None`` uses the cohort's median delta norm as the radius
    (adaptive clipping).  Returns ``(merged, stats)``.
    """
    _check(states, weights)
    key_list = _keys(states, keys)
    deltas: List[StateDict] = []
    norms: List[float] = []
    for s in states:
        delta = {k: np.asarray(s[k], dtype=np.float64) - base[k] for k in key_list}
        deltas.append(delta)
        norms.append(float(np.sqrt(sum(float((d * d).sum()) for d in delta.values()))))
    radius = float(np.median(norms)) if clip_norm is None else float(clip_norm)
    clipped = 0
    adjusted: List[StateDict] = []
    for s, delta, norm in zip(states, deltas, norms):
        if norm > radius and norm > 0.0:
            factor = radius / norm
            clipped += 1
            adjusted.append(
                {
                    k: (base[k] + factor * delta[k]).astype(
                        np.asarray(s[k]).dtype, copy=False
                    )
                    for k in key_list
                }
            )
        else:
            adjusted.append({k: s[k] for k in key_list})
    merged = weighted_average_states(adjusted, weights, keys=key_list)
    stats = {
        "clip_norm": radius,
        "clipped": clipped,
        "max_norm": float(max(norms)),
    }
    return merged, stats


@dataclass(frozen=True)
class RobustAggregator:
    """One configured aggregation rule, applied everywhere states merge.

    ``aggregate`` returns ``(merged_state, stats_or_None)``; the
    ``fedavg`` rule returns ``stats=None`` and delegates byte-for-byte to
    :func:`weighted_average_states`, so a default config reproduces the
    engine's historical output bit for bit.
    """

    rule: str = "fedavg"
    trim_ratio: float = 0.2
    byzantine_f: int = 1
    clip_norm: Optional[float] = None

    def __post_init__(self):
        if self.rule not in AGGREGATION_RULES:
            raise ValueError(
                f"aggregation rule must be one of {AGGREGATION_RULES}, "
                f"got {self.rule!r}"
            )

    @classmethod
    def from_config(cls, config) -> "RobustAggregator":
        return cls(
            rule=config.aggregation_rule,
            trim_ratio=config.trim_ratio,
            byzantine_f=config.krum_byzantine_f,
            clip_norm=config.clip_norm,
        )

    def aggregate(
        self,
        states: Sequence[StateDict],
        weights: Sequence[float],
        keys: Optional[Sequence[str]] = None,
        base: Optional[StateDict] = None,
    ) -> Tuple[StateDict, Optional[Dict[str, Any]]]:
        """Merge one cohort of full (or ``keys``-restricted) states."""
        if self.rule == "fedavg":
            return weighted_average_states(states, weights, keys=keys), None
        _check(states, weights)
        n = len(states)
        if self.rule == "median":
            return coordinate_median(states, keys), {"rule": "median", "n": n}
        if self.rule == "trimmed_mean":
            merged, k = trimmed_mean(states, self.trim_ratio, keys)
            return merged, {"rule": "trimmed_mean", "n": n, "trimmed_per_side": k}
        if self.rule in ("krum", "multi_krum"):
            selected = krum_select(
                states, self.byzantine_f, keys, multi=(self.rule == "multi_krum")
            )
            merged = weighted_average_states(
                [states[i] for i in selected],
                [weights[i] for i in selected],
                keys=keys,
            )
            rejected = [i for i in range(n) if i not in set(selected)]
            return merged, {
                "rule": self.rule,
                "n": n,
                "selected": selected,
                "rejected": rejected,
            }
        # norm_clip
        if base is None:
            raise ValueError(
                "norm_clip aggregation needs the pre-round base state"
            )
        merged, stats = clipped_norm_average(
            states, weights, base, self.clip_norm, keys
        )
        return merged, {"rule": "norm_clip", "n": n, **stats}


def masked_robust_average(
    global_state: StateDict,
    updates: Sequence[Tuple[StateDict, StateDict, float]],
    aggregator: RobustAggregator,
) -> Tuple[StateDict, Optional[Dict[str, Any]]]:
    """Robust variant of :func:`masked_partial_average`.

    Each update is ``(scattered_state, mask, weight)`` with global shapes
    and zeros outside the trained region; a coordinate participates in the
    robust statistic only for the clients whose mask covers it, and
    entries covered by nobody keep their global value.  ``krum`` /
    ``multi_krum`` need geometrically comparable full updates and raise
    :class:`AggregationError` here (heterogeneous masks make the distance
    scores meaningless).
    """
    if not updates:
        raise AggregationError(
            "cannot aggregate an empty set of partial updates "
            "(did every sampled client drop out?)"
        )
    rule = aggregator.rule
    if rule == "fedavg":
        return masked_partial_average(global_state, updates), None
    n = len(updates)
    if rule in ("krum", "multi_krum"):
        raise AggregationError(
            f"aggregation rule {rule!r} requires homogeneous full-model "
            f"updates; the partial-training family ships masked sub-model "
            f"updates (use median, trimmed_mean or norm_clip)"
        )
    if rule == "norm_clip":
        key_list = list(global_state)
        norms: List[float] = []
        deltas: List[StateDict] = []
        for state, mask, _w in updates:
            delta = {}
            total = 0.0
            for key in key_list:
                if key in state:
                    d = np.where(
                        np.asarray(mask[key]) > 0,
                        np.asarray(state[key], dtype=np.float64)
                        - np.asarray(global_state[key], dtype=np.float64),
                        0.0,
                    )
                    delta[key] = d
                    total += float((d * d).sum())
            deltas.append(delta)
            norms.append(float(np.sqrt(total)))
        radius = float(np.median(norms)) if aggregator.clip_norm is None else float(
            aggregator.clip_norm
        )
        clipped = 0
        adjusted = []
        for (state, mask, w), delta, norm in zip(updates, deltas, norms):
            if norm > radius and norm > 0.0:
                factor = radius / norm
                clipped += 1
                new_state = {}
                for key in state:
                    dtype = np.asarray(state[key]).dtype
                    clipped_val = np.asarray(global_state[key], dtype=np.float64) + (
                        factor * delta[key]
                    )
                    new_state[key] = np.where(
                        np.asarray(mask[key]) > 0, clipped_val, state[key]
                    ).astype(dtype, copy=False)
                adjusted.append((new_state, mask, w))
            else:
                adjusted.append((state, mask, w))
        merged = masked_partial_average(global_state, adjusted)
        return merged, {
            "rule": "norm_clip",
            "n": n,
            "clip_norm": radius,
            "clipped": clipped,
            "max_norm": float(max(norms)),
        }
    # median / trimmed_mean: per-coordinate robust statistic over the
    # clients whose mask covers that coordinate.
    out: StateDict = {}
    for key, g in global_state.items():
        dtype = accum_dtype(g, *(s[key] for s, _, _ in updates if key in s))
        vals = np.stack(
            [
                np.where(np.asarray(m[key]) > 0, s[key], np.nan)
                if key in s
                else np.full(g.shape, np.nan)
                for s, m, _w in updates
            ]
        ).astype(np.float64, copy=False)
        counts = (~np.isnan(vals)).sum(axis=0)
        if rule == "median":
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                stat = np.nanmedian(vals, axis=0)
        else:  # trimmed_mean with per-coordinate counts
            srt = np.sort(vals, axis=0)  # NaNs sort last
            sums = np.concatenate(
                [
                    np.zeros((1,) + g.shape),
                    np.cumsum(np.nan_to_num(srt), axis=0),
                ]
            )
            k = np.minimum(
                (aggregator.trim_ratio * counts).astype(np.int64),
                np.maximum(counts - 1, 0) // 2,
            )
            hi = np.take_along_axis(sums, (counts - k)[None], axis=0)[0]
            lo = np.take_along_axis(sums, k[None], axis=0)[0]
            denom = np.maximum(counts - 2 * k, 1)
            stat = (hi - lo) / denom
        merged = np.where(counts > 0, stat, g).astype(dtype, copy=False)
        out[key] = merged
    return out, {"rule": rule, "n": n}
