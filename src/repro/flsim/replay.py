"""Deterministic journal replay: re-execute a run and verify its log.

The engine-wide bit-identity contract says every journalled payload is a
pure function of the config's semantic fields — never of backend, worker
count, or wall clock.  Replay turns that contract into an oracle:
:func:`replay_run` re-executes a journalled run from a freshly built
experiment and asserts that **every event the run loop re-emits matches
the recorded one bit-for-bit** (at the JSON-serialisation level, so float
formatting differences count as divergence too).  A replay may run on a
different backend or worker count than the original — that is the point.

Resumed journals replay too: the canonicaliser folds each
``resume`` segment back onto the checkpoint that anchored it, producing
the event stream an *uninterrupted* run would have written — which is
exactly what re-execution emits.

The verifier is installed through the journalling seam: a
:class:`ReplayJournal` takes the place of the experiment's
:class:`~repro.flsim.journal.RunJournal`, so the run loops need no replay
mode — they just log, and every ``append`` becomes an assertion.  On
mismatch a :class:`ReplayDivergence` names the first divergent ``seq``,
its kind, and the differing fields.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.flsim.journal import JournalError, RunJournal


class ReplayDivergence(JournalError):
    """Re-execution emitted an event that differs from the journal.

    ``seq`` is the recorded event's sequence number in the *original*
    journal file (not the canonicalised stream), so the report points at
    the exact line that diverged.
    """

    def __init__(
        self,
        message: str,
        seq: Optional[int] = None,
        kind: Optional[str] = None,
        recorded: Optional[dict] = None,
        replayed: Optional[dict] = None,
    ):
        super().__init__(message)
        self.seq = seq
        self.kind = kind
        self.recorded = recorded
        self.replayed = replayed


@dataclass
class ReplayReport:
    """What a successful :func:`replay_run` verified."""

    path: str
    fingerprint: str
    events_verified: int
    rounds: int
    merges: int
    evals: int
    skipped_checkpoints: int
    resumes_folded: int

    def summary(self) -> str:
        parts = [
            f"{self.events_verified} events bit-identical",
            f"{self.rounds} rounds",
            f"{self.merges} merges",
            f"{self.evals} evals",
        ]
        if self.resumes_folded:
            parts.append(f"{self.resumes_folded} resume(s) folded")
        if self.skipped_checkpoints:
            parts.append(f"{self.skipped_checkpoints} checkpoint event(s) skipped")
        return f"replay ok [{self.fingerprint}]: " + ", ".join(parts)


def _normalise(kind: str, payload: Dict[str, Any]) -> dict:
    """An event as the journal writer would serialise it (minus ``seq``).

    Round-tripping through ``json.dumps``/``loads`` puts the replayed
    payload in exactly the recorded events' representation (tuples become
    lists, floats take their JSON round-trip form), so dict equality *is*
    serialisation-level bit-identity.
    """
    record: Dict[str, Any] = {"kind": kind}
    record.update(payload)
    return json.loads(json.dumps(record))


def canonical_events(events: List[dict], path: str = "journal") -> Tuple[List[dict], int]:
    """Fold resume segments into the uninterrupted-run event stream.

    A crashed-and-resumed journal contains the dying process's tail
    (events after its last checkpoint, possibly a ``run_abort``) followed
    by a ``resume`` event and the resumed process's re-emission of the
    same rounds.  Re-execution produces the *uninterrupted* stream, so
    each ``resume`` is folded: truncate back to the checkpoint that
    anchored it (matched by ``next_round``) and drop the ``resume`` event
    itself.  Returns the canonical stream and the number of folds.

    Refuses journals that are not a completed run: no ``run_start``, no
    final ``run_end``, or a ``run_abort`` surviving the folds (a Python-
    level failure, not a crash — there is nothing bit-identical to
    verify).

    When folds occurred, the ``cache`` counters are stripped from
    ``sample`` events: the client LRU's hit/miss counters are
    process-local observability (a resumed process restarts them at its
    restore's touches), so they are the one payload field an
    uninterrupted re-execution legitimately cannot reproduce.  Journals
    of uninterrupted runs keep them and verify them bit-for-bit.
    """
    if not events or events[0].get("kind") != "run_start":
        raise JournalError(f"{path}: journal does not start with run_start")
    canonical: List[dict] = []
    folds = 0
    for event in events:
        if event.get("kind") != "resume":
            canonical.append(event)
            continue
        folds += 1
        anchor = None
        for i in range(len(canonical) - 1, -1, -1):
            e = canonical[i]
            if (
                e.get("kind") == "checkpoint"
                and e.get("next_round") == event.get("next_round")
            ):
                anchor = i
                break
        if anchor is None:
            raise JournalError(
                f"{path}: resume event (seq {event.get('seq')}) has no "
                f"matching checkpoint for next_round="
                f"{event.get('next_round')!r}"
            )
        del canonical[anchor + 1 :]
    for event in canonical:
        if event.get("kind") == "run_abort":
            raise JournalError(
                f"{path}: journal records a run_abort (seq "
                f"{event.get('seq')}) that no resume recovered — an "
                f"aborted run cannot be replayed"
            )
    if canonical[-1].get("kind") != "run_end":
        raise JournalError(
            f"{path}: journal has no run_end — the run is still in flight "
            f"or crashed; resume it before replaying"
        )
    if folds:
        canonical = [
            {k: v for k, v in e.items() if k != "cache"}
            if e.get("kind") == "sample"
            else e
            for e in canonical
        ]
    return canonical, folds


class ReplayJournal:
    """A journal stand-in that verifies appends against a recorded stream.

    Installed as ``experiment._journal`` before ``run()``:
    :meth:`~repro.flsim.base.FederatedExperiment._open_journal` sees a
    journal already present and leaves it alone, so every ``_jlog`` in the
    run loops lands here and is compared — in strict order — against the
    canonical recorded events.  ``path`` keeps checkpoint writes working
    (``_checkpoint_path`` derives from it); when the replay experiment
    has checkpointing off, recorded ``checkpoint`` events are skipped
    (and counted) instead of compared.
    """

    def __init__(self, events: List[dict], path: str, verify_checkpoints: bool):
        self.path = path
        self._events = events
        self._cursor = 0
        self._verify_checkpoints = verify_checkpoints
        self._failed = False
        self.verified = 0
        self.skipped_checkpoints = 0

    def _fail(self, message: str, **kw) -> None:
        self._failed = True
        raise ReplayDivergence(message, **kw)

    def append(self, kind: str, **payload) -> None:
        if self._failed:
            # The run loop's abort cleanup journals a run_abort after the
            # divergence already raised; swallow it so the original
            # report propagates.
            return
        replayed = _normalise(kind, payload)
        while True:
            if self._cursor >= len(self._events):
                self._fail(
                    f"replay divergence: re-execution emitted an extra "
                    f"{kind!r} event after the journal's last recorded "
                    f"event — {json.dumps(replayed)}",
                    kind=kind,
                    replayed=replayed,
                )
            recorded = self._events[self._cursor]
            if (
                not self._verify_checkpoints
                and recorded.get("kind") == "checkpoint"
                and kind != "checkpoint"
            ):
                self._cursor += 1
                self.skipped_checkpoints += 1
                continue
            break
        seq = recorded.get("seq")
        body = {k: v for k, v in recorded.items() if k != "seq"}
        if kind == "sample" and "cache" not in body:
            # Canonicalisation stripped the process-local cache counters
            # (resume folded); strip ours symmetrically.
            replayed.pop("cache", None)
        if body != replayed:
            diffs = []
            for key in sorted(set(body) | set(replayed)):
                a, b = body.get(key, "<absent>"), replayed.get(key, "<absent>")
                if a != b:
                    diffs.append(f"  {key}: recorded {a!r} != replayed {b!r}")
            self._fail(
                f"replay divergence at seq {seq} (kind "
                f"{recorded.get('kind')!r}):\n" + "\n".join(diffs),
                seq=seq,
                kind=recorded.get("kind"),
                recorded=body,
                replayed=replayed,
            )
        self._cursor += 1
        self.verified += 1

    def finish(self) -> None:
        """Assert the recorded stream is fully consumed."""
        while (
            not self._verify_checkpoints
            and self._cursor < len(self._events)
            and self._events[self._cursor].get("kind") == "checkpoint"
        ):
            self._cursor += 1
            self.skipped_checkpoints += 1
        if self._cursor < len(self._events):
            nxt = self._events[self._cursor]
            self._fail(
                f"replay divergence: journal records "
                f"{len(self._events) - self._cursor} event(s) the "
                f"re-execution never emitted, starting at seq "
                f"{nxt.get('seq')} (kind {nxt.get('kind')!r})",
                seq=nxt.get("seq"),
                kind=nxt.get("kind"),
                recorded={k: v for k, v in nxt.items() if k != "seq"},
            )

    def close(self) -> None:
        pass


def replay_run(
    journal_path: str,
    factory: Callable[[], Any],
    verbose: bool = False,
) -> ReplayReport:
    """Re-execute a journalled run and verify every event bit-for-bit.

    ``factory`` builds a **fresh** experiment with the same semantic
    config the journal records (the journal stores only the config
    fingerprint, which is checked before execution) — non-semantic fields
    (backend, worker counts) may differ freely; the client
    materialisation/cache knobs must match the original because the
    ``run_start`` and ``sample`` events record live cache counters.

    Checkpoint events are verified bit-for-bit when the factory's config
    sets the original's ``checkpoint_every`` (checkpoints are then
    re-written under the replay experiment's ``journal_path``, whose
    basename must match the original journal's — the event payload names
    it); with ``checkpoint_every=0`` recorded checkpoint events are
    skipped and counted instead, and replay touches no files at all.

    Raises :class:`ReplayDivergence` on the first mismatching event,
    :class:`~repro.flsim.journal.JournalError` on an unreadable /
    incomplete journal or a fingerprint mismatch.  Returns a
    :class:`ReplayReport` on success.
    """
    events = RunJournal.read(journal_path)
    canonical, folds = canonical_events(events, journal_path)
    run_start, run_end = canonical[0], canonical[-1]
    exp = factory()
    try:
        if exp.history:
            raise RuntimeError("replay_run needs a freshly built experiment")
        fingerprint = exp._fingerprint()
        if run_start.get("fingerprint") != fingerprint:
            raise JournalError(
                f"{journal_path}: journal fingerprint "
                f"{run_start.get('fingerprint')} does not match the replay "
                f"experiment's config ({fingerprint}); only non-semantic "
                f"fields (backends, worker counts, paths) may differ"
            )
        verify_checkpoints = bool(exp.config.checkpoint_every)
        if verify_checkpoints:
            recorded_names = {
                e["path"] for e in canonical if e.get("kind") == "checkpoint"
            }
            replay_name = os.path.basename(exp._checkpoint_path())
            if recorded_names and recorded_names != {replay_name}:
                raise JournalError(
                    f"{journal_path}: recorded checkpoint events name "
                    f"{sorted(recorded_names)} but the replay would write "
                    f"{replay_name!r}; give the replay journal_path the "
                    f"same basename as the original (or set "
                    f"checkpoint_every=0 to skip checkpoint verification)"
                )
        verifier = ReplayJournal(
            canonical, path=exp.config.journal_path or journal_path,
            verify_checkpoints=verify_checkpoints,
        )
        exp._journal = verifier
        exp._jlog("run_start", **exp._run_start_payload())
        exp.run(rounds=run_end.get("rounds"), verbose=verbose)
        verifier.finish()
        report = ReplayReport(
            path=journal_path,
            fingerprint=fingerprint,
            events_verified=verifier.verified,
            rounds=sum(1 for e in canonical if e.get("kind") == "round"),
            merges=sum(1 for e in canonical if e.get("kind") == "merge"),
            evals=sum(
                1 for e in canonical if e.get("kind") in ("eval", "merge_eval")
            ),
            skipped_checkpoints=verifier.skipped_checkpoints,
            resumes_folded=folds,
        )
        if verbose:  # pragma: no cover - console reporting
            print(report.summary())
        return report
    finally:
        exp.close()
