"""Round execution engine: parallel client training with serial semantics.

Clients within a federated round are embarrassingly parallel — each one's
local training is a pure function of (round-start global state, its local
shard, its own counter-derived RNG) — yet the seed ran them strictly
sequentially.  :class:`RoundExecutor` turns the per-client loop of every
``run_round`` into independent work units executed by one of three
backends:

* ``serial``  — the reference path: a plain loop in the caller's thread;
* ``thread``  — a **persistent** pool of worker threads, spun up lazily on
  first use and reused across every round and evaluation (pool
  construction is pure overhead on short rounds).  NumPy's BLAS releases
  the GIL inside the matmuls that dominate this workload (im2col
  convolutions, batched attacks), so threads yield real speedups without
  any pickling;
* ``process`` — ``fork()``-based workers.  Each child inherits a
  copy-on-write snapshot of the experiment (global model, shards, prefix
  cache) at round start, trains its stripe of clients, and ships the
  resulting segment states back through a pipe.  Sidesteps the GIL
  entirely; POSIX only;
* ``batched`` — client fusion: homogeneous clients are grouped into
  **fusion cohorts** of width ``fusion_width`` and each cohort runs as
  *one* stacked forward/backward (per-client weight slabs against a
  ``(K·B, ...)`` activation layout — see :mod:`repro.nn.cohort`).  Work
  functions opt in by being a :class:`CohortFn` (plain functions fall
  back to the thread path); cohorts only form among items with equal
  ``group_key`` (same architecture/segment/mask *and* the same local
  batch schedule), everything else stays a singleton.  Cohorts are still
  spread over the persistent thread pool, so fusion composes with
  thread-level parallelism.

Determinism contract: **parallel output is bit-identical to serial**.
Work items are striped over workers deterministically, results are
returned in the order of the input list (which fixes the aggregation
order), and per-client RNGs are derived from ``(seed, round, cid)`` — so
neither scheduling nor worker identity can leak into the result.  The
experiments guarantee the remaining piece (no shared mutable model) by
giving each worker *slot* its own model workspace: the work function
receives ``(item, slot)`` and slot ``s`` is never used by two concurrent
units.  The process backend always passes slot 0 because each forked
child's "global" model is already a private copy.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple

BACKENDS = ("serial", "thread", "process", "batched")

#: Default fusion-cohort width for the ``batched`` backend.
DEFAULT_FUSION_WIDTH = 4


class CohortFn:
    """A slot-aware work function that also knows how to run fused cohorts.

    The ``batched`` backend needs three things from a round's work
    function; everything else treats a ``CohortFn`` as the plain per-item
    callable, so experiments can hand the same object to any backend:

    * ``fn(item, slot)`` — the serial per-item path (also the fallback for
      singleton cohorts and non-batched backends);
    * ``cohort_fn(items, slot)`` — run K homogeneous items as one fused
      cohort, returning their results in item order, bit-identical to K
      ``fn`` calls;
    * ``group_key(item)`` — hashable fusion key.  Items may be fused only
      when their keys are equal; ``None`` pins an item to the serial path
      (heterogeneous segment/mask shapes, ragged batch schedules).
    """

    def __init__(
        self,
        fn: Callable[[Any, int], Any],
        cohort_fn: Callable[[List[Any], int], List[Any]],
        group_key: Optional[Callable[[Any], Any]] = None,
    ):
        self.fn = fn
        self.cohort_fn = cohort_fn
        self._group_key = group_key

    def __call__(self, item: Any, slot: int) -> Any:
        return self.fn(item, slot)

    def run_cohort(self, items: List[Any], slot: int) -> List[Any]:
        return self.cohort_fn(items, slot)

    def group_key(self, item: Any) -> Any:
        return self._group_key(item) if self._group_key is not None else None

# Fork-inherited work description for the process backend.  Set immediately
# before the worker pool is forked and cleared after the round; children
# read it from their copy-on-write memory image, so the work function never
# has to be picklable.
_FORK_TASK: Optional[Tuple[Callable[[Any, int], Any], List[Any]]] = None


def _run_fork_stripe(args: Tuple[int, int]) -> List[Tuple[int, Any]]:
    """Child-side trampoline: run stripe ``w`` of the inherited work list."""
    w, num_workers = args
    fn, items = _FORK_TASK
    return [(i, fn(items[i], 0)) for i in range(w, len(items), num_workers)]


class RoundExecutor:
    """Maps a slot-aware work function over a round's client work items.

    Parameters
    ----------
    backend:
        One of ``"serial"``, ``"thread"``, ``"process"``, ``"batched"``.
    max_workers:
        Parallelism cap; defaults to ``os.cpu_count()``.  The effective
        worker count for a round is ``min(max_workers, len(items))``.
    fusion_width:
        Maximum fusion-cohort width K for the ``batched`` backend
        (default :data:`DEFAULT_FUSION_WIDTH`); ignored elsewhere.
    """

    def __init__(
        self,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        fusion_width: Optional[int] = None,
    ):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown executor backend {backend!r}; expected one of {BACKENDS}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if fusion_width is not None and fusion_width < 1:
            raise ValueError("fusion_width must be >= 1")
        if backend == "process" and "fork" not in multiprocessing.get_all_start_methods():
            raise ValueError(
                "the process backend requires fork(); use backend='thread' on "
                "this platform"
            )
        self.backend = backend
        self.max_workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        self.fusion_width = (
            fusion_width if fusion_width is not None else DEFAULT_FUSION_WIDTH
        )
        self._thread_pool: Optional[ThreadPoolExecutor] = None

    @property
    def thread_pool(self) -> ThreadPoolExecutor:
        """The persistent worker-thread pool, created lazily on first use.

        One pool per executor, shared by every ``map`` call and by the
        :class:`~repro.flsim.scheduler.FLScheduler` riding on top, so
        rounds and eval phases stop paying pool spin-up/tear-down.  The
        process backend still forks per parallel region — the fork *is*
        the copy-on-write snapshot of round-start state, so a persistent
        child pool would read stale memory.
        """
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-exec"
            )
        return self._thread_pool

    def close(self) -> None:
        """Shut down the persistent thread pool (idempotent)."""
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None

    def __enter__(self) -> "RoundExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def workers_for(self, num_items: int) -> int:
        """Effective worker count for a round of ``num_items`` work units.

        A pure function of ``(max_workers, num_items)`` — never of load
        or scheduling — so stripe assignments derived from it are
        reproducible.
        """
        return max(1, min(self.max_workers, num_items))

    def forks_for(self, num_items: int) -> bool:
        """Whether :meth:`map` will actually fork for this many items.

        The process backend falls back to the caller's thread when a
        single worker suffices; callers merging child-side state (cache
        entries, counter deltas) must mirror that dispatch exactly or they
        would double-count in-process work.
        """
        return self.backend == "process" and self.workers_for(num_items) > 1

    @property
    def pooled(self) -> bool:
        """Whether this backend runs work through the persistent thread pool.

        The scheduler, the async pipeline, and eval overlap all key their
        concurrency structure on this (the ``batched`` backend is the
        thread backend plus client fusion — same pool, same slot model).
        """
        return self.backend in ("thread", "batched") and self.max_workers > 1

    def slots_for(self, num_items: int) -> List[int]:
        """The worker-slot ids :meth:`map` will hand to the work function.

        Experiments pre-sync one model workspace per slot before launching
        the round, so this must exactly cover what ``map`` uses: all stripe
        ids for the pooled backends (``batched`` cohorts occupy a subset of
        the thread backend's stripes), slot 0 otherwise (the serial loop
        runs in the caller's workspace; forked children own private
        copies).
        """
        if self.backend in ("thread", "batched"):
            return list(range(self.workers_for(num_items)))
        return [0]

    def plan_cohorts(self, fn: CohortFn, items: Sequence[Any]) -> List[List[int]]:
        """Deterministic fusion plan: item indices grouped into cohorts.

        Items sharing a non-``None`` ``group_key`` coalesce (in input
        order) into chunks of at most ``fusion_width``; everything else is
        a singleton.  A pure function of ``(keys, fusion_width)`` — load,
        scheduling, and worker count cannot leak into cohort composition.
        """
        groups: dict = {}
        singletons: List[List[int]] = []
        order: List[Any] = []
        for i, item in enumerate(items):
            key = fn.group_key(item)
            if key is None:
                singletons.append([i])
                continue
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(i)
        cohorts: List[List[int]] = list(singletons)
        for key in order:
            idxs = groups[key]
            for start in range(0, len(idxs), self.fusion_width):
                cohorts.append(idxs[start : start + self.fusion_width])
        cohorts.sort(key=lambda c: c[0])
        return cohorts

    def map(self, fn: Callable[[Any, int], Any], items: Sequence[Any]) -> List[Any]:
        """Run ``fn(item, slot)`` for every item; results in input order.

        Items are striped over workers (worker ``w`` handles items
        ``w, w + W, ...``), so the assignment of items to slots is a pure
        function of the item index and the worker count.  Any work-unit
        exception propagates to the caller.
        """
        items = list(items)
        if not items:
            return []
        if self.backend == "batched" and isinstance(fn, CohortFn):
            return self._map_batched(fn, items)
        if self.backend == "serial" or self.workers_for(len(items)) == 1:
            return [fn(item, 0) for item in items]
        if self.backend in ("thread", "batched"):
            return self._map_thread(fn, items)
        return self._map_process(fn, items)

    # -- backends ----------------------------------------------------------
    def _map_thread(self, fn, items: List[Any]) -> List[Any]:
        num_workers = self.workers_for(len(items))
        results: List[Any] = [None] * len(items)

        def run_stripe(w: int) -> None:
            for i in range(w, len(items), num_workers):
                results[i] = fn(items[i], w)

        futures = [self.thread_pool.submit(run_stripe, w) for w in range(num_workers)]
        for future in futures:
            future.result()
        return results

    def _map_batched(self, fn: CohortFn, items: List[Any]) -> List[Any]:
        cohorts = self.plan_cohorts(fn, items)
        results: List[Any] = [None] * len(items)

        def run_cohort(idxs: List[int], slot: int) -> None:
            if len(idxs) == 1:
                results[idxs[0]] = fn(items[idxs[0]], slot)
                return
            for i, result in zip(idxs, fn.run_cohort([items[i] for i in idxs], slot)):
                results[i] = result

        num_workers = self.workers_for(len(cohorts))
        if num_workers == 1:
            for idxs in cohorts:
                run_cohort(idxs, 0)
            return results

        def run_stripe(w: int) -> None:
            for j in range(w, len(cohorts), num_workers):
                run_cohort(cohorts[j], w)

        futures = [self.thread_pool.submit(run_stripe, w) for w in range(num_workers)]
        for future in futures:
            future.result()
        return results

    def _map_process(self, fn, items: List[Any]) -> List[Any]:
        global _FORK_TASK
        num_workers = self.workers_for(len(items))
        ctx = multiprocessing.get_context("fork")
        _FORK_TASK = (fn, items)
        try:
            with ctx.Pool(processes=num_workers) as pool:
                stripes = pool.map(
                    _run_fork_stripe,
                    [(w, num_workers) for w in range(num_workers)],
                    chunksize=1,
                )
        finally:
            _FORK_TASK = None
        results: List[Any] = [None] * len(items)
        for stripe in stripes:
            for i, result in stripe:
                results[i] = result
        return results
