"""Round execution engine: parallel client training with serial semantics.

Clients within a federated round are embarrassingly parallel — each one's
local training is a pure function of (round-start global state, its local
shard, its own counter-derived RNG) — yet the seed ran them strictly
sequentially.  :class:`RoundExecutor` turns the per-client loop of every
``run_round`` into independent work units executed by one of three
backends:

* ``serial``  — the reference path: a plain loop in the caller's thread;
* ``thread``  — a **persistent** pool of worker threads, spun up lazily on
  first use and reused across every round and evaluation (pool
  construction is pure overhead on short rounds).  NumPy's BLAS releases
  the GIL inside the matmuls that dominate this workload (im2col
  convolutions, batched attacks), so threads yield real speedups without
  any pickling;
* ``process`` — ``fork()``-based workers.  Each child inherits a
  copy-on-write snapshot of the experiment (global model, shards, prefix
  cache) at round start, trains its stripe of clients, and ships the
  resulting segment states back through a pipe.  Sidesteps the GIL
  entirely; POSIX only.

Determinism contract: **parallel output is bit-identical to serial**.
Work items are striped over workers deterministically, results are
returned in the order of the input list (which fixes the aggregation
order), and per-client RNGs are derived from ``(seed, round, cid)`` — so
neither scheduling nor worker identity can leak into the result.  The
experiments guarantee the remaining piece (no shared mutable model) by
giving each worker *slot* its own model workspace: the work function
receives ``(item, slot)`` and slot ``s`` is never used by two concurrent
units.  The process backend always passes slot 0 because each forked
child's "global" model is already a private copy.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple

BACKENDS = ("serial", "thread", "process")

# Fork-inherited work description for the process backend.  Set immediately
# before the worker pool is forked and cleared after the round; children
# read it from their copy-on-write memory image, so the work function never
# has to be picklable.
_FORK_TASK: Optional[Tuple[Callable[[Any, int], Any], List[Any]]] = None


def _run_fork_stripe(args: Tuple[int, int]) -> List[Tuple[int, Any]]:
    """Child-side trampoline: run stripe ``w`` of the inherited work list."""
    w, num_workers = args
    fn, items = _FORK_TASK
    return [(i, fn(items[i], 0)) for i in range(w, len(items), num_workers)]


class RoundExecutor:
    """Maps a slot-aware work function over a round's client work items.

    Parameters
    ----------
    backend:
        One of ``"serial"``, ``"thread"``, ``"process"``.
    max_workers:
        Parallelism cap; defaults to ``os.cpu_count()``.  The effective
        worker count for a round is ``min(max_workers, len(items))``.
    """

    def __init__(self, backend: str = "serial", max_workers: Optional[int] = None):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown executor backend {backend!r}; expected one of {BACKENDS}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if backend == "process" and "fork" not in multiprocessing.get_all_start_methods():
            raise ValueError(
                "the process backend requires fork(); use backend='thread' on "
                "this platform"
            )
        self.backend = backend
        self.max_workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        self._thread_pool: Optional[ThreadPoolExecutor] = None

    @property
    def thread_pool(self) -> ThreadPoolExecutor:
        """The persistent worker-thread pool, created lazily on first use.

        One pool per executor, shared by every ``map`` call and by the
        :class:`~repro.flsim.scheduler.FLScheduler` riding on top, so
        rounds and eval phases stop paying pool spin-up/tear-down.  The
        process backend still forks per parallel region — the fork *is*
        the copy-on-write snapshot of round-start state, so a persistent
        child pool would read stale memory.
        """
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-exec"
            )
        return self._thread_pool

    def close(self) -> None:
        """Shut down the persistent thread pool (idempotent)."""
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None

    def __enter__(self) -> "RoundExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def workers_for(self, num_items: int) -> int:
        """Effective worker count for a round of ``num_items`` work units.

        A pure function of ``(max_workers, num_items)`` — never of load
        or scheduling — so stripe assignments derived from it are
        reproducible.
        """
        return max(1, min(self.max_workers, num_items))

    def forks_for(self, num_items: int) -> bool:
        """Whether :meth:`map` will actually fork for this many items.

        The process backend falls back to the caller's thread when a
        single worker suffices; callers merging child-side state (cache
        entries, counter deltas) must mirror that dispatch exactly or they
        would double-count in-process work.
        """
        return self.backend == "process" and self.workers_for(num_items) > 1

    def slots_for(self, num_items: int) -> List[int]:
        """The worker-slot ids :meth:`map` will hand to the work function.

        Experiments pre-sync one model workspace per slot before launching
        the round, so this must exactly cover what ``map`` uses: all stripe
        ids for the thread backend, slot 0 otherwise (the serial loop runs
        in the caller's workspace; forked children own private copies).
        """
        if self.backend == "thread":
            return list(range(self.workers_for(num_items)))
        return [0]

    def map(self, fn: Callable[[Any, int], Any], items: Sequence[Any]) -> List[Any]:
        """Run ``fn(item, slot)`` for every item; results in input order.

        Items are striped over workers (worker ``w`` handles items
        ``w, w + W, ...``), so the assignment of items to slots is a pure
        function of the item index and the worker count.  Any work-unit
        exception propagates to the caller.
        """
        items = list(items)
        if not items:
            return []
        if self.backend == "serial" or self.workers_for(len(items)) == 1:
            return [fn(item, 0) for item in items]
        if self.backend == "thread":
            return self._map_thread(fn, items)
        return self._map_process(fn, items)

    # -- backends ----------------------------------------------------------
    def _map_thread(self, fn, items: List[Any]) -> List[Any]:
        num_workers = self.workers_for(len(items))
        results: List[Any] = [None] * len(items)

        def run_stripe(w: int) -> None:
            for i in range(w, len(items), num_workers):
                results[i] = fn(items[i], w)

        futures = [self.thread_pool.submit(run_stripe, w) for w in range(num_workers)]
        for future in futures:
            future.result()
        return results

    def _map_process(self, fn, items: List[Any]) -> List[Any]:
        global _FORK_TASK
        num_workers = self.workers_for(len(items))
        ctx = multiprocessing.get_context("fork")
        _FORK_TASK = (fn, items)
        try:
            with ctx.Pool(processes=num_workers) as pool:
                stripes = pool.map(
                    _run_fork_stripe,
                    [(w, num_workers) for w in range(num_workers)],
                    chunksize=1,
                )
        finally:
            _FORK_TASK = None
        results: List[Any] = [None] * len(items)
        for stripe in stripes:
            for i, result in stripe:
                results[i] = result
        return results
