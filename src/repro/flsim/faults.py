"""Seeded fault injection: dropouts, stragglers, flaky clients with retry.

Production FL coordinators treat partial failure as the common case:
clients drop out mid-round, straggle past any useful deadline, or fail
transiently and need retrying.  :class:`FaultPlan` injects exactly those
scenarios into the simulation — **deterministically**.  Every decision is
a pure function of ``(plan seed, round, client id)`` via a dedicated
counter-derived RNG (``np.random.default_rng([seed, round, cid])``), so
the same plan produces the same faults on every backend at any worker
count, and the experiment's own RNG stream is never touched: a plan with
all probabilities zero (or ``fault_plan=None``) reproduces the fault-free
engine bit for bit.

All fault latency is *simulated* time (the retry backoff, the straggler
slowdown, the server-side ``client_timeout`` wait) — never wall clock —
which keeps the engine-wide determinism contract intact.

Faults compose with the population engine's *availability windows*
(:meth:`repro.flsim.population.ClientPopulation.available`) by layering:
availability restricts which clients can be **sampled** at all (a
deterministic per-client duty cycle, drawn from its own
``[AVAIL_STREAM, population seed, cid]`` stream), while the fault plan
then drops, slows, or retries clients that *were* sampled — modelling
the difference between a phone that is offline tonight and one that
crashes mid-round.  The streams are disjoint, so either layer can be
switched off without perturbing the other.

The per-round product is a :class:`RoundFaults`: which sampled clients
survive, how the survivors' latency costs are scaled, and whether the
round aborts because the surviving cohort fell below
``min_clients_per_round``.  The run loops filter the cohort *before*
training, so every baseline's existing aggregation rule (FedAvg, masked
partial averages, FedRBN's dual-BN merge, FedProphet's per-module
merges) reweights over the survivors with no fault-specific code.
"""

from __future__ import annotations

import dataclasses
import json
import os
import typing
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.hardware.latency import LocalTrainingCost


# -- shared plan-JSON schema validation ------------------------------------
# Used by FaultPlan and ThreatPlan alike: a malformed plan file must fail
# at load time with an error naming the offending field, not deep inside
# the run loop.

def _hint_name(hint: Any) -> str:
    origin = typing.get_origin(hint)
    if origin is typing.Union:
        return " or ".join(_hint_name(a) for a in typing.get_args(hint))
    if hint is type(None):
        return "null"
    return getattr(hint, "__name__", str(hint))


def _type_ok(value: Any, hint: Any) -> bool:
    origin = typing.get_origin(hint)
    if origin is typing.Union:
        return any(_type_ok(value, a) for a in typing.get_args(hint))
    if hint is type(None):
        return value is None
    if hint is bool:
        return isinstance(value, bool)
    if hint is float:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if hint is int:
        return isinstance(value, int) and not isinstance(value, bool)
    if hint is str:
        return isinstance(value, str)
    return isinstance(value, hint)


def validate_plan_dict(data: Any, cls: type, label: str) -> Dict[str, Any]:
    """Schema-check a decoded plan JSON object against a plan dataclass.

    Unknown keys and type mismatches raise :class:`ValueError` naming the
    offending field; range checks stay in the dataclass ``__post_init__``.
    """
    if not isinstance(data, dict):
        raise ValueError(
            f"{label} JSON must be an object, got {type(data).__name__}"
        )
    hints = typing.get_type_hints(cls)
    fields = sorted(f.name for f in dataclasses.fields(cls))
    for key, value in data.items():
        if key not in fields:
            raise ValueError(
                f"{label}: unknown field {key!r} "
                f"(valid fields: {', '.join(fields)})"
            )
        if not _type_ok(value, hints[key]):
            raise ValueError(
                f"{label}: field {key!r} expects {_hint_name(hints[key])}, "
                f"got {type(value).__name__} ({value!r})"
            )
    return data


def load_plan_spec(cls: type, spec: str, label: str):
    """Parse a CLI plan spec: inline JSON (``{...}``) or a JSON file path."""
    spec = spec.strip()
    if spec.startswith("{"):
        return cls.from_json(spec)
    if not os.path.exists(spec):
        raise ValueError(
            f"{label} spec {spec!r} is neither inline JSON nor an "
            f"existing file"
        )
    with open(spec, encoding="utf-8") as f:
        return cls.from_json(f.read())


@dataclass(frozen=True)
class FaultOutcome:
    """What happened to one sampled client this round.

    ``kind`` is one of ``"ok"``, ``"dropout"``, ``"straggler"``,
    ``"flaky"``.  ``latency_scale`` multiplies the client's training cost
    (the straggler slowdown, or the repeated attempts of a flaky client);
    ``extra_delay_s`` adds the flaky client's exponential-backoff waits.
    ``timed_out`` marks a client excluded because its (scaled) latency
    exceeded ``client_timeout``.
    """

    kind: str
    survived: bool
    attempts: int = 1
    latency_scale: float = 1.0
    extra_delay_s: float = 0.0
    timed_out: bool = False


@dataclass
class RoundFaults:
    """The fault plan's verdict for one sampled cohort.

    ``outcomes`` aligns with the *sampled* cohort; ``survivors`` indexes
    into it.  ``timeout_floor_s`` is the simulated time a synchronous
    server waits before giving up on the round's non-survivors
    (``client_timeout``, when set and anybody dropped); the async server
    never waits, so only the synchronous clock applies it.
    """

    round_idx: int
    outcomes: List[FaultOutcome]
    survivors: List[int]
    dropped_cids: List[int]
    aborted: bool
    timeout_floor_s: Optional[float] = None

    @property
    def retries(self) -> Dict[int, int]:
        """Retry count per surviving flaky client position (observability)."""
        return {
            i: oc.attempts - 1
            for i, oc in enumerate(self.outcomes)
            if oc.kind == "flaky" and oc.attempts > 1
        }

    def scale_costs(
        self, costs: Sequence[LocalTrainingCost]
    ) -> List[LocalTrainingCost]:
        """Apply fault latency to the *survivors'* costs (input-aligned).

        Straggler slowdown and flaky re-attempts scale both components
        (retraining repeats the memory swapping too); the backoff waits
        are pure data-access time.
        """
        out: List[LocalTrainingCost] = []
        for idx, cost in zip(self.survivors, costs):
            oc = self.outcomes[idx]
            if oc.latency_scale != 1.0 or oc.extra_delay_s:
                cost = LocalTrainingCost(
                    cost.compute_s * oc.latency_scale,
                    cost.access_s * oc.latency_scale + oc.extra_delay_s,
                )
            out.append(cost)
        return out


@dataclass(frozen=True)
class FaultPlan:
    """Per-client fault scenarios, drawn from a dedicated seeded stream.

    Each sampled client suffers at most one fault per round, drawn by a
    single uniform variate against the (mutually exclusive) probability
    bands in order: dropout, straggler, flaky.

    * **dropout** — the client vanishes mid-round and never reports back;
    * **straggler** — the client completes, ``straggler_slowdown`` times
      slower (and is dropped instead if that exceeds ``client_timeout``);
    * **flaky** — the first attempt fails; up to ``max_client_retries``
      retries follow, each preceded by an exponential backoff of
      ``backoff_base_s * 2**attempt`` simulated seconds and succeeding
      with probability ``retry_success_prob``.  Exhausted retries drop
      the client.
    """

    seed: int = 0
    dropout_prob: float = 0.0
    straggler_prob: float = 0.0
    straggler_slowdown: float = 4.0
    flaky_prob: float = 0.0
    retry_success_prob: float = 0.5
    backoff_base_s: float = 1.0

    def __post_init__(self):
        for name in ("dropout_prob", "straggler_prob", "flaky_prob",
                     "retry_success_prob"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.dropout_prob + self.straggler_prob + self.flaky_prob > 1.0:
            raise ValueError(
                "dropout_prob + straggler_prob + flaky_prob cannot exceed 1 "
                "(faults are mutually exclusive per client per round)"
            )
        if self.straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be >= 1")
        if self.backoff_base_s < 0.0:
            raise ValueError("backoff_base_s must be >= 0")

    @property
    def active(self) -> bool:
        """Whether any fault can ever fire (inactive plans cost nothing)."""
        return (self.dropout_prob + self.straggler_prob + self.flaky_prob) > 0.0

    # -- the deterministic decision function --------------------------------
    def outcome(self, round_idx: int, cid: int, max_retries: int) -> FaultOutcome:
        """This client's fate this round: a pure function of (seed, round, cid)."""
        rng = np.random.default_rng([self.seed, round_idx, cid])
        u = rng.random()
        if u < self.dropout_prob:
            return FaultOutcome("dropout", survived=False)
        if u < self.dropout_prob + self.straggler_prob:
            return FaultOutcome(
                "straggler", survived=True, latency_scale=self.straggler_slowdown
            )
        if u < self.dropout_prob + self.straggler_prob + self.flaky_prob:
            attempts, delay, survived = 1, 0.0, False
            for retry in range(max_retries):
                delay += self.backoff_base_s * (2.0**retry)
                attempts += 1
                if rng.random() < self.retry_success_prob:
                    survived = True
                    break
            return FaultOutcome(
                "flaky",
                survived=survived,
                attempts=attempts,
                latency_scale=float(attempts),
                extra_delay_s=delay,
            )
        return FaultOutcome("ok", survived=True)

    def plan_round(
        self,
        round_idx: int,
        cids: Sequence[int],
        cost_estimates_s: Optional[Sequence[Optional[float]]],
        *,
        client_timeout: Optional[float],
        max_retries: int,
        min_clients: int,
    ) -> RoundFaults:
        """Decide the whole sampled cohort's fate for one round.

        ``cost_estimates_s`` (per-client total seconds, pre-fault) enables
        the ``client_timeout`` check — a surviving straggler/flaky client
        whose scaled latency exceeds the timeout is excluded like a
        dropout.  ``None`` estimates skip the timeout check (the decision
        must stay a pure function of known inputs).
        """
        outcomes = [self.outcome(round_idx, cid, max_retries) for cid in cids]
        survivors: List[int] = []
        dropped: List[int] = []
        for i, (cid, oc) in enumerate(zip(cids, outcomes)):
            alive = oc.survived
            if (
                alive
                and client_timeout is not None
                and cost_estimates_s is not None
                and cost_estimates_s[i] is not None
            ):
                scaled = cost_estimates_s[i] * oc.latency_scale + oc.extra_delay_s
                if scaled > client_timeout:
                    oc = dataclasses.replace(oc, survived=False, timed_out=True)
                    outcomes[i] = oc
                    alive = False
            if alive:
                survivors.append(i)
            else:
                dropped.append(int(cid))
        return RoundFaults(
            round_idx=round_idx,
            outcomes=outcomes,
            survivors=survivors,
            dropped_cids=dropped,
            aborted=len(survivors) < min_clients,
            timeout_floor_s=(
                client_timeout if (dropped and client_timeout is not None) else None
            ),
        )

    # -- (de)serialization ---------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = validate_plan_dict(json.loads(text), cls, "fault plan")
        return cls(**data)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a CLI spec: inline JSON (``{...}``) or a JSON file path."""
        return load_plan_spec(cls, spec, "fault plan")
