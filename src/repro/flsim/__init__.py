"""Federated-learning simulation engine.

In-process FL (the paper's own evaluation style): a server state dict, a
population of clients holding non-IID shards, per-round uniform client
sampling, local SGD, and aggregation — plus a simulated wall clock driven
by the :mod:`repro.hardware` latency model, which is what the training-time
figures (Fig. 7, Table 4) measure.
"""

from repro.flsim.base import (
    AsyncMergeEvent,
    AsyncRoundContext,
    FLConfig,
    MergeEvalRecord,
    RoundRecord,
    FederatedExperiment,
)
from repro.flsim.population import (
    AVAIL_STREAM,
    MATERIALISATIONS,
    POPULATION_SCHEMES,
    SHARD_STREAM,
    SMALL_POPULATION_COMPAT,
    ClientPopulation,
    FLClient,
    sample_cohort_ids,
)
from repro.flsim.aggregation import (
    AggregationError,
    fedavg,
    weighted_average_states,
    masked_partial_average,
)
from repro.flsim.robust_agg import (
    AGGREGATION_RULES,
    RobustAggregator,
    clipped_norm_average,
    coordinate_median,
    krum_scores,
    krum_select,
    masked_robust_average,
    trimmed_mean,
)
from repro.flsim.threats import (
    ATTACKS,
    DATA_ATTACKS,
    UPDATE_ATTACKS,
    RoundThreats,
    ThreatPlan,
)
from repro.flsim.executor import BACKENDS, RoundExecutor
from repro.flsim.scheduler import (
    AsyncRoundTicket,
    CrossRoundPipeline,
    FLScheduler,
    SlotPool,
    TaskGroup,
)
from repro.flsim.eval_executor import EvalExecutor, EvalShard, EvalTarget, PendingEval
from repro.flsim.local import adversarial_local_train, standard_local_train
from repro.flsim.history import (
    RunHistory,
    history_rows,
    export_csv,
    merge_eval_rows,
    round_record_from_dict,
    round_record_to_dict,
    time_to_accuracy,
    best_round,
)
from repro.flsim.faults import FaultOutcome, FaultPlan, RoundFaults
from repro.flsim.journal import KNOWN_KINDS, JournalError, RunJournal
from repro.flsim.replay import (
    ReplayDivergence,
    ReplayJournal,
    ReplayReport,
    canonical_events,
    replay_run,
)
from repro.flsim.service import MetricsService, StatusServer
from repro.flsim.checkpoint import (
    CheckpointError,
    config_fingerprint,
    read_checkpoint,
    write_checkpoint,
)

__all__ = [
    "BACKENDS",
    "RoundExecutor",
    "FLScheduler",
    "TaskGroup",
    "SlotPool",
    "AsyncRoundTicket",
    "CrossRoundPipeline",
    "AsyncMergeEvent",
    "AsyncRoundContext",
    "EvalExecutor",
    "EvalShard",
    "EvalTarget",
    "PendingEval",
    "FLConfig",
    "FLClient",
    "ClientPopulation",
    "sample_cohort_ids",
    "POPULATION_SCHEMES",
    "MATERIALISATIONS",
    "SMALL_POPULATION_COMPAT",
    "SHARD_STREAM",
    "AVAIL_STREAM",
    "RoundRecord",
    "FederatedExperiment",
    "fedavg",
    "weighted_average_states",
    "masked_partial_average",
    "adversarial_local_train",
    "standard_local_train",
    "history_rows",
    "export_csv",
    "time_to_accuracy",
    "best_round",
    "RunHistory",
    "round_record_to_dict",
    "round_record_from_dict",
    "FaultOutcome",
    "FaultPlan",
    "RoundFaults",
    "RunJournal",
    "JournalError",
    "KNOWN_KINDS",
    "MergeEvalRecord",
    "merge_eval_rows",
    "ReplayDivergence",
    "ReplayJournal",
    "ReplayReport",
    "canonical_events",
    "replay_run",
    "MetricsService",
    "StatusServer",
    "CheckpointError",
    "config_fingerprint",
    "read_checkpoint",
    "write_checkpoint",
    "AggregationError",
    "AGGREGATION_RULES",
    "RobustAggregator",
    "coordinate_median",
    "trimmed_mean",
    "krum_scores",
    "krum_select",
    "clipped_norm_average",
    "masked_robust_average",
    "ATTACKS",
    "DATA_ATTACKS",
    "UPDATE_ATTACKS",
    "ThreatPlan",
    "RoundThreats",
]
