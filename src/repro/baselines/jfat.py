"""Joint Federated Adversarial Training (Zizzo et al., 2020).

FedAvg where every client adversarially trains the *whole* model
end-to-end.  Clients whose available memory is below the model's training
requirement fall back to memory swapping, whose data-access latency the
hardware model charges (this is the slow-but-accurate upper-bound method
in Table 2 / Fig. 7).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.attacks.pgd import PGDConfig
from repro.core.aggregator import restore_segment, snapshot_segment
from repro.flsim.aggregation import fedavg
from repro.flsim.base import FederatedExperiment, FLClient, FLConfig
from repro.flsim.local import adversarial_local_train
from repro.hardware.devices import DeviceSampler, DeviceState
from repro.hardware.flops import training_flops_per_iteration
from repro.hardware.latency import LatencyModel, LocalTrainingCost
from repro.hardware.memory import MemoryModel
from repro.models.atoms import CascadeModel


class JointFAT(FederatedExperiment):
    """End-to-end FAT with FedAvg aggregation."""

    name = "jfat"

    def __init__(
        self,
        task,
        model_builder: Callable[[np.random.Generator], CascadeModel],
        config: FLConfig,
        device_sampler: Optional[DeviceSampler] = None,
        latency_model: Optional[LatencyModel] = None,
    ):
        super().__init__(task, model_builder, config, device_sampler, latency_model)
        mem = MemoryModel(batch_size=config.batch_size)
        self.mem_req = mem.bytes_for(self.global_model, self.global_model.in_shape)
        self.flops_per_iter = training_flops_per_iteration(
            self.global_model,
            self.global_model.in_shape,
            batch_size=config.batch_size,
            pgd_steps=config.train_pgd_steps,
        )

    def run_round(
        self,
        round_idx: int,
        clients: List[FLClient],
        states: List[Optional[DeviceState]],
    ) -> List[LocalTrainingCost]:
        cfg = self.config
        num_atoms = len(self.global_model.atoms)
        # jFAT trains the whole model, so the "segment" snapshot spans every
        # atom; each work unit restores it in place on its slot's workspace.
        global_snap = snapshot_segment(self.global_model, 0, num_atoms)
        pgd = PGDConfig(eps=cfg.eps0, steps=cfg.train_pgd_steps, norm="linf")
        lr_t = self.lr_at(round_idx)

        def train_client(item, slot):
            client, dev = item
            model = self._slot_model(slot)
            restore_segment(model, global_snap, 0, num_atoms)
            adversarial_local_train(
                model,
                client.dataset,
                iterations=cfg.local_iters,
                batch_size=cfg.batch_size,
                lr=lr_t,
                pgd=pgd,
                momentum=cfg.momentum,
                weight_decay=cfg.weight_decay,
                rng=np.random.default_rng(
                    cfg.seed * 1_000_003 + round_idx * 1009 + client.cid
                ),
            )
            return snapshot_segment(model, 0, num_atoms), self._cost(dev)

        results = self.executor.map(train_client, list(zip(clients, states)))
        local_states = [r[0] for r in results]
        costs = [r[1] for r in results]
        sizes = [client.num_samples for client in clients]
        # fedavg covers every key, so no restore of the round snapshot needed
        self.global_model.load_state_dict(fedavg(local_states, sizes))
        return costs

    def _cost(self, state: Optional[DeviceState]) -> LocalTrainingCost:
        if state is None:
            return LocalTrainingCost(0.0, 0.0)
        return self.latency_model.local_training_cost(
            state,
            training_flops=self.flops_per_iter,
            mem_req_bytes=self.mem_req,
            iterations=self.config.local_iters,
            pgd_steps=self.config.train_pgd_steps,
        )
