"""Joint Federated Adversarial Training (Zizzo et al., 2020).

FedAvg where every client adversarially trains the *whole* model
end-to-end.  Clients whose available memory is below the model's training
requirement fall back to memory swapping, whose data-access latency the
hardware model charges (this is the slow-but-accurate upper-bound method
in Table 2 / Fig. 7).

jFAT is also the reference algorithm for **staleness-bounded
asynchronous aggregation** (``aggregation_mode="async"``): because its
aggregation is plain full-model FedAvg, client updates can merge into a
separate server state as they land — in *simulated*-arrival order (the
latency model's per-device cost, not wall-clock scheduling), so the
result is deterministic and seed-reproducible at any worker count.  The
merge schedule coalesces each round's tail so no update ever merges with
staleness above ``max_staleness``; ``max_staleness=0`` degenerates to
exactly synchronous FedAvg.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.attacks.pgd import PGDConfig
from repro.core.aggregator import (
    async_merge_schedule,
    merge_async_update,
    restore_segment,
    snapshot_segment,
)
from repro.flsim.aggregation import fedavg
from repro.flsim.base import FederatedExperiment, FLClient, FLConfig
from repro.flsim.local import adversarial_local_train
from repro.hardware.devices import DeviceSampler, DeviceState
from repro.hardware.flops import training_flops_per_iteration
from repro.hardware.latency import LatencyModel, LocalTrainingCost
from repro.hardware.memory import MemoryModel
from repro.models.atoms import CascadeModel


@dataclass(frozen=True)
class AsyncMergeEvent:
    """One applied merge event of an asynchronous round (observability)."""

    round: int
    event: int
    staleness: int
    client_ids: Tuple[int, ...]
    alpha: float


class JointFAT(FederatedExperiment):
    """End-to-end FAT with FedAvg aggregation."""

    name = "jfat"
    supports_async_aggregation = True

    def __init__(
        self,
        task,
        model_builder: Callable[[np.random.Generator], CascadeModel],
        config: FLConfig,
        device_sampler: Optional[DeviceSampler] = None,
        latency_model: Optional[LatencyModel] = None,
    ):
        super().__init__(task, model_builder, config, device_sampler, latency_model)
        mem = MemoryModel(batch_size=config.batch_size)
        self.mem_req = mem.bytes_for(self.global_model, self.global_model.in_shape)
        self.flops_per_iter = training_flops_per_iteration(
            self.global_model,
            self.global_model.in_shape,
            batch_size=config.batch_size,
            pgd_steps=config.train_pgd_steps,
        )
        self.async_log: List[AsyncMergeEvent] = []

    def _train_client_fn(self, round_idx: int, global_snap) -> Callable:
        """The slot-aware work unit shared by the sync and async rounds.

        The per-client latency cost is pure arithmetic over the device
        state, so both rounds compute it once up front (the async round
        needs it *before* training to order arrivals) and the work unit
        returns the trained state only.
        """
        cfg = self.config
        num_atoms = len(self.global_model.atoms)
        pgd = PGDConfig(eps=cfg.eps0, steps=cfg.train_pgd_steps, norm="linf")
        lr_t = self.lr_at(round_idx)

        def train_client(item, slot):
            client, _dev = item
            model = self._slot_model(slot)
            restore_segment(model, global_snap, 0, num_atoms)
            adversarial_local_train(
                model,
                client.dataset,
                iterations=cfg.local_iters,
                batch_size=cfg.batch_size,
                lr=lr_t,
                pgd=pgd,
                momentum=cfg.momentum,
                weight_decay=cfg.weight_decay,
                rng=np.random.default_rng(
                    cfg.seed * 1_000_003 + round_idx * 1009 + client.cid
                ),
            )
            return snapshot_segment(model, 0, num_atoms)

        return train_client

    def run_round(
        self,
        round_idx: int,
        clients: List[FLClient],
        states: List[Optional[DeviceState]],
    ) -> List[LocalTrainingCost]:
        if self.config.aggregation_mode == "async":
            return self._run_round_async(round_idx, clients, states)
        num_atoms = len(self.global_model.atoms)
        # jFAT trains the whole model, so the "segment" snapshot spans every
        # atom; each work unit restores it in place on its slot's workspace.
        global_snap = snapshot_segment(self.global_model, 0, num_atoms)
        local_states = self.scheduler.run_group(
            "train",
            self._train_client_fn(round_idx, global_snap),
            list(zip(clients, states)),
        )
        sizes = [client.num_samples for client in clients]
        # fedavg covers every key, so no restore of the round snapshot needed
        self.global_model.load_state_dict(fedavg(local_states, sizes))
        return [self._cost(dev) for dev in states]

    def _run_round_async(
        self,
        round_idx: int,
        clients: List[FLClient],
        states: List[Optional[DeviceState]],
    ) -> List[LocalTrainingCost]:
        """Staleness-bounded asynchronous round.

        Every client still trains from the round-start weights (its
        simulated download), but updates merge into a *server state dict*
        one event at a time in simulated-arrival order, streamed through
        the scheduler: an update merges as soon as (a) its training has
        actually landed and (b) every simulated-earlier event has merged.
        The schedule bounds staleness by coalescing the round's tail (see
        :func:`repro.core.aggregator.async_merge_schedule`); within an
        event, members average in client order so the single-event
        ``max_staleness=0`` schedule is bit-identical to sync FedAvg.
        """
        cfg = self.config
        num_atoms = len(self.global_model.atoms)
        global_snap = snapshot_segment(self.global_model, 0, num_atoms)
        costs = [self._cost(dev) for dev in states]
        # Simulated-arrival order: device latency decides who lands first;
        # ties break by position so the order is total and reproducible.
        order = sorted(range(len(clients)), key=lambda i: (costs[i].total_s, i))
        events = [
            sorted(order[pos] for pos in event)
            for event in async_merge_schedule(len(clients), cfg.max_staleness)
        ]
        weights = [float(c.num_samples) for c in clients]
        round_weight = float(sum(weights))
        server = {k: v.copy() for k, v in global_snap.items()}

        group = self.scheduler.submit_group(
            "train",
            self._train_client_fn(round_idx, global_snap),
            list(zip(clients, states)),
        )
        landed = [False] * len(clients)
        local_states: List[Optional[dict]] = [None] * len(clients)
        next_event = 0
        for idx, state in group.stream():
            local_states[idx] = state
            landed[idx] = True
            while next_event < len(events) and all(
                landed[i] for i in events[next_event]
            ):
                members = events[next_event]
                alpha = merge_async_update(
                    server,
                    [local_states[i] for i in members],
                    [weights[i] for i in members],
                    round_weight,
                    staleness=next_event,
                )
                self.async_log.append(
                    AsyncMergeEvent(
                        round=round_idx,
                        event=next_event,
                        staleness=next_event,
                        client_ids=tuple(clients[i].cid for i in members),
                        alpha=alpha,
                    )
                )
                next_event += 1
        assert next_event == len(events), "async merge schedule did not drain"
        self.global_model.load_state_dict(server)
        return costs

    def _cost(self, state: Optional[DeviceState]) -> LocalTrainingCost:
        if state is None:
            return LocalTrainingCost(0.0, 0.0)
        return self.latency_model.local_training_cost(
            state,
            training_flops=self.flops_per_iter,
            mem_req_bytes=self.mem_req,
            iterations=self.config.local_iters,
            pgd_steps=self.config.train_pgd_steps,
        )
