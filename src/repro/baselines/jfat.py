"""Joint Federated Adversarial Training (Zizzo et al., 2020).

FedAvg where every client adversarially trains the *whole* model
end-to-end.  Clients whose available memory is below the model's training
requirement fall back to memory swapping, whose data-access latency the
hardware model charges (this is the slow-but-accurate upper-bound method
in Table 2 / Fig. 7).

jFAT is also the reference algorithm for **staleness-bounded
asynchronous aggregation** (``aggregation_mode="async"``): because its
aggregation is plain full-model FedAvg, client updates can merge into a
separate server state as they land — in *simulated*-arrival order (the
latency model's per-device cost, not wall-clock scheduling), so the
result is deterministic and seed-reproducible at any worker count.  The
merge schedule coalesces each round's tail so no update ever merges with
an intra-round lag above ``max_staleness``; ``max_staleness=0`` with
``pipeline_depth=1`` degenerates to exactly synchronous FedAvg.  With
``pipeline_depth>1`` the generic cross-round pipeline
(:meth:`repro.flsim.base.FederatedExperiment._run_async`) additionally
dispatches the next round's fast clients against the latest merged
server state while this round's stragglers are still training.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.attacks.pgd import PGDConfig
from repro.core.aggregator import restore_segment, snapshot_segment
from repro.flsim.base import (
    AsyncMergeEvent,
    FederatedExperiment,
    FLClient,
    FLConfig,
)
from repro.flsim.executor import CohortFn
from repro.flsim.local import adversarial_local_train, cohort_adversarial_local_train
from repro.nn.cohort import clear_cohort, extract_cohort, install_cohort
from repro.hardware.devices import DeviceSampler, DeviceState
from repro.hardware.flops import training_flops_per_iteration
from repro.hardware.latency import LatencyModel, LocalTrainingCost
from repro.hardware.memory import MemoryModel
from repro.models.atoms import CascadeModel

__all__ = ["JointFAT", "AsyncMergeEvent"]


class JointFAT(FederatedExperiment):
    """End-to-end FAT with FedAvg aggregation."""

    name = "jfat"
    supports_async_aggregation = True

    def __init__(
        self,
        task,
        model_builder: Callable[[np.random.Generator], CascadeModel],
        config: FLConfig,
        device_sampler: Optional[DeviceSampler] = None,
        latency_model: Optional[LatencyModel] = None,
    ):
        super().__init__(task, model_builder, config, device_sampler, latency_model)
        mem = MemoryModel(batch_size=config.batch_size)
        self.mem_req = mem.bytes_for(self.global_model, self.global_model.in_shape)
        self.flops_per_iter = training_flops_per_iteration(
            self.global_model,
            self.global_model.in_shape,
            batch_size=config.batch_size,
            pgd_steps=config.train_pgd_steps,
        )

    def _train_client_fn(
        self,
        round_idx: int,
        global_snap: Dict[str, np.ndarray],
        slot_model: Optional[Callable[[int], CascadeModel]] = None,
    ) -> Callable:
        """The slot-aware work unit shared by the sync and async rounds.

        The per-client latency cost is pure arithmetic over the device
        state, so both modes compute it once up front (async needs it
        *before* training to order arrivals) and the work unit returns
        the trained state only.  ``slot_model`` maps a slot to its model
        workspace: the sync round trains on the regular slot models (slot
        0 is the global model); the async pipeline passes
        ``_async_slot_model`` so concurrent rounds never touch the live
        model.  Training is a pure function of (``global_snap``, the
        client's shard, a counter-derived RNG) — bit-identical on every
        backend.
        """
        cfg = self.config
        get_model = slot_model if slot_model is not None else self._slot_model
        num_atoms = len(self.global_model.atoms)
        pgd = PGDConfig(eps=cfg.eps0, steps=cfg.train_pgd_steps, norm="linf")
        lr_t = self.lr_at(round_idx)

        def train_client(item, slot):
            client, _dev = item
            model = get_model(slot)
            restore_segment(model, global_snap, 0, num_atoms)
            adversarial_local_train(
                model,
                client.dataset,
                iterations=cfg.local_iters,
                batch_size=cfg.batch_size,
                lr=lr_t,
                pgd=pgd,
                momentum=cfg.momentum,
                weight_decay=cfg.weight_decay,
                rng=self._client_rng(round_idx, client.cid),
            )
            return snapshot_segment(model, 0, num_atoms)

        def train_cohort(items, slot):
            # K fused clients: stack K copies of the round base into
            # per-parameter slabs and run one stacked trainer pass.  Each
            # client keeps its own RNG/loader stream, and the kernels
            # reduce per client slice — bit-identical to K train_client
            # calls (see repro.nn.cohort).
            model = get_model(slot)
            try:
                install_cohort(model, [global_snap] * len(items))
                cohort_adversarial_local_train(
                    model,
                    [client.dataset for client, _dev in items],
                    iterations=cfg.local_iters,
                    batch_size=cfg.batch_size,
                    lr=lr_t,
                    pgd=pgd,
                    momentum=cfg.momentum,
                    weight_decay=cfg.weight_decay,
                    rngs=[
                        self._client_rng(round_idx, client.cid)
                        for client, _dev in items
                    ],
                )
                return extract_cohort(model)
            finally:
                clear_cohort(model)

        def fuse_key(item):
            # Fusion needs aligned batch schedules: the loader's epoch
            # permutation and per-iteration batch sizes are a pure function
            # of (shard size, effective batch size), so equal keys mean
            # every fused iteration concatenates K equal-size batches.
            client, _dev = item
            n = client.num_samples
            return (n, min(cfg.batch_size, n))

        return CohortFn(train_client, train_cohort, group_key=fuse_key)

    def run_round(
        self,
        round_idx: int,
        clients: List[FLClient],
        states: List[Optional[DeviceState]],
    ) -> List[LocalTrainingCost]:
        self._assert_sync_round()
        num_atoms = len(self.global_model.atoms)
        # jFAT trains the whole model, so the "segment" snapshot spans every
        # atom; each work unit restores it in place on its slot's workspace.
        global_snap = snapshot_segment(self.global_model, 0, num_atoms)
        local_states = self.scheduler.run_group(
            "train",
            self._threat_wrap(
                round_idx, self._train_client_fn(round_idx, global_snap), global_snap
            ),
            list(zip(clients, states)),
        )
        weights = [float(client.num_samples) for client in clients]
        # the merge covers every key, so no restore of the round snapshot needed
        self.global_model.load_state_dict(
            self.robust_aggregate(local_states, weights, base=global_snap)
        )
        return [self._cost(dev) for dev in states]

    # -- asynchronous aggregation hooks ------------------------------------
    def async_client_fn(self, round_idx: int, base_state) -> Callable:
        return self._train_client_fn(
            round_idx, base_state, slot_model=self._async_slot_model
        )

    def async_client_costs(self, round_idx, clients, states):
        return [self._cost(dev) for dev in states]

    def _cost(self, state: Optional[DeviceState]) -> LocalTrainingCost:
        if state is None:
            return LocalTrainingCost(0.0, 0.0)
        return self.latency_model.local_training_cost(
            state,
            training_flops=self.flops_per_iter,
            mem_req_bytes=self.mem_req,
            iterations=self.config.local_iters,
            pgd_steps=self.config.train_pgd_steps,
        )
