"""Baseline FAT algorithms the paper compares against (§7.1, App. B.2).

* :mod:`repro.baselines.jfat` — joint federated adversarial training
  (end-to-end PGD-AT + FedAvg; memory swapping when the model exceeds a
  client's memory),
* :mod:`repro.baselines.heterofl`, :mod:`repro.baselines.feddrop`,
  :mod:`repro.baselines.fedrolex` — partial-training FL with static /
  random / rolling channel-slice sub-model extraction,
* :mod:`repro.baselines.feddf`, :mod:`repro.baselines.fedet` —
  knowledge-distillation FL with heterogeneous client model families,
* :mod:`repro.baselines.fedrbn` — federated robustness propagation via
  dual batch-norm statistics.
"""

from repro.baselines.jfat import JointFAT
from repro.baselines.subnet import extract_submodel, scatter_submodel_state, SubmodelSlice
from repro.baselines.heterofl import HeteroFLAT
from repro.baselines.feddrop import FedDropAT
from repro.baselines.fedrolex import FedRolexAT
from repro.baselines.feddf import FedDFAT
from repro.baselines.fedet import FedETAT
from repro.baselines.fedrbn import FedRBN

__all__ = [
    "JointFAT",
    "extract_submodel",
    "scatter_submodel_state",
    "SubmodelSlice",
    "HeteroFLAT",
    "FedDropAT",
    "FedRolexAT",
    "FedDFAT",
    "FedETAT",
    "FedRBN",
]
