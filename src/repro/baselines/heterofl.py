"""HeteroFL-AT (Diao et al., 2020): static prefix-channel sub-models."""

from repro.baselines.partial import PartialTrainingFAT


class HeteroFLAT(PartialTrainingFAT):
    """Every client always trains the first k channels of each layer,
    so small-client updates concentrate on a fixed nested core."""

    name = "heterofl-at"
    strategy = "static"
