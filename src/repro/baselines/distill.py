"""Ensemble knowledge distillation on a public dataset (FedDF/FedET core).

The server holds one "prototype" model per architecture in the family;
client updates FedAvg into their architecture's prototype, and the global
(largest) model is then trained to match the ensemble's soft predictions
on a small public dataset (paper App. B.2: ~10 % of the data, 128
distillation iterations per round).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.dataset import ArrayDataset, DataLoader
from repro.nn.losses import log_softmax, softmax
from repro.nn.module import Module
from repro.optim.sgd import SGD


def soft_cross_entropy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Mean soft-target cross-entropy: −Σ p_teacher · log_softmax(student)."""
    return float(-(targets * log_softmax(logits)).sum(axis=1).mean())


def soft_cross_entropy_grad(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Gradient of the mean soft CE w.r.t. the student logits."""
    n = logits.shape[0]
    return (softmax(logits) - targets) / n


def ensemble_soft_targets(
    teachers: Sequence[Module],
    x: np.ndarray,
    weights: Optional[Sequence[float]] = None,
    confidence_weighted: bool = False,
) -> np.ndarray:
    """Average (optionally confidence-weighted) teacher softmax outputs.

    Confidence weighting is FedET's transfer rule: teachers that are more
    certain on a sample contribute more to its soft target.
    """
    if not teachers:
        raise ValueError("need at least one teacher")
    probs = []
    for t in teachers:
        t.eval()
        probs.append(softmax(t(x)))
    probs = np.stack(probs)  # (T, N, K)
    if confidence_weighted:
        conf = probs.max(axis=2, keepdims=True)  # (T, N, 1)
        w = conf / conf.sum(axis=0, keepdims=True)
        return (w * probs).sum(axis=0)
    if weights is None:
        return probs.mean(axis=0)
    w = np.asarray(weights, dtype=probs.dtype)
    w = w / w.sum()
    return np.einsum("t,tnk->nk", w, probs)


def distill(
    student: Module,
    teachers: Sequence[Module],
    public: ArrayDataset,
    iterations: int = 128,
    batch_size: int = 64,
    lr: float = 0.005,
    momentum: float = 0.9,
    confidence_weighted: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Train the student on the ensemble's soft targets; returns mean loss."""
    rng = rng if rng is not None else np.random.default_rng(0)
    student.train()
    opt = SGD(student.parameters(), lr=lr, momentum=momentum)
    loader = DataLoader(
        public, batch_size=min(batch_size, len(public)), shuffle=True, rng=rng
    )
    batches = loader.infinite()
    losses: List[float] = []
    for _ in range(iterations):
        x, _ = next(batches)
        targets = ensemble_soft_targets(
            teachers, x, confidence_weighted=confidence_weighted
        )
        student.train()
        opt.zero_grad()
        logits = student(x)
        losses.append(soft_cross_entropy(logits, targets))
        student.backward(soft_cross_entropy_grad(logits, targets))
        opt.step()
    return float(np.mean(losses)) if losses else 0.0
