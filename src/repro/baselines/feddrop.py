"""FedDrop-AT (Wen et al., 2022): random per-round channel dropout."""

from repro.baselines.partial import PartialTrainingFAT


class FedDropAT(PartialTrainingFAT):
    """Each client each round trains a fresh uniformly random channel
    subset, spreading coverage across the whole model over time."""

    name = "feddrop-at"
    strategy = "random"
