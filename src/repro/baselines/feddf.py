"""FedDF-AT (Lin et al., 2020): heterogeneous clients + ensemble distillation.

Each client adversarially trains the largest model in the dataset's family
that fits its available memory; the server FedAvgs updates per
architecture and distills the prototype ensemble into the global large
model on a public split.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.attacks.pgd import PGDConfig
from repro.baselines.distill import distill
from repro.data.partition import public_private_split
from repro.flsim.base import FederatedExperiment, FLClient, FLConfig
from repro.flsim.local import adversarial_local_train
from repro.hardware.devices import DeviceSampler, DeviceState
from repro.hardware.flops import training_flops_per_iteration
from repro.hardware.latency import LatencyModel, LocalTrainingCost
from repro.hardware.memory import MemoryModel
from repro.models.atoms import CascadeModel


class FedDFAT(FederatedExperiment):
    """Knowledge-distillation FAT with a mean-softmax ensemble teacher."""

    name = "feddf-at"
    confidence_weighted = False
    # The server-side distillation step consumes *all* of a round's
    # per-architecture averages at once and then runs sequential SGD on
    # the public split — there is no per-update merge to stream, so the
    # staleness-bounded async engine does not apply (requesting
    # ``aggregation_mode="async"`` raises in the base constructor).
    supports_async_aggregation = False

    def __init__(
        self,
        task,
        model_builders: Dict[str, Callable[[np.random.Generator], CascadeModel]],
        config: FLConfig,
        device_sampler: Optional[DeviceSampler] = None,
        latency_model: Optional[LatencyModel] = None,
        distill_iters: int = 128,
        public_frac: float = 0.1,
    ):
        """``model_builders`` maps architecture name -> builder, ordered
        smallest to largest; the last entry is the global model."""
        if not model_builders:
            raise ValueError("need a non-empty model family")
        self.family = list(model_builders)
        global_builder = model_builders[self.family[-1]]
        super().__init__(task, global_builder, config, device_sampler, latency_model)
        self.mem = MemoryModel(batch_size=config.batch_size)
        rng = np.random.default_rng(config.seed + 3)
        self.prototypes: Dict[str, CascadeModel] = {
            name: builder(rng) for name, builder in model_builders.items()
        }
        # The largest prototype shares weights with the global model.
        self.prototypes[self.family[-1]] = self.global_model
        self.mem_req = {
            n: self.mem.bytes_for(m, m.in_shape) for n, m in self.prototypes.items()
        }
        self.flops_iter = {
            n: training_flops_per_iteration(
                m, m.in_shape, config.batch_size, config.train_pgd_steps
            )
            for n, m in self.prototypes.items()
        }
        pub_idx, _ = public_private_split(
            task.train.y, public_frac, rng=np.random.default_rng(config.seed + 5)
        )
        self.public = task.train.subset(pub_idx)
        self.distill_iters = distill_iters

    def pick_architecture(self, state: Optional[DeviceState]) -> str:
        """Largest family member that trains within the client's memory."""
        if state is None:
            return self.family[-1]
        chosen = self.family[0]
        for name in self.family:
            if self.mem_req[name] <= state.avail_mem_bytes:
                chosen = name
        return chosen

    def run_round(
        self,
        round_idx: int,
        clients: List[FLClient],
        states: List[Optional[DeviceState]],
    ) -> List[LocalTrainingCost]:
        cfg = self.config
        snapshots = {n: m.state_dict() for n, m in self.prototypes.items()}
        per_arch: Dict[str, List] = {n: [] for n in self.family}
        costs = []
        pgd = PGDConfig(eps=cfg.eps0, steps=cfg.train_pgd_steps, norm="linf")
        for client, dev in zip(clients, states):
            arch = self.pick_architecture(dev)
            model = self.prototypes[arch]
            model.load_state_dict(snapshots[arch])
            adversarial_local_train(
                model,
                client.dataset,
                iterations=cfg.local_iters,
                batch_size=cfg.batch_size,
                lr=self.lr_at(round_idx),
                pgd=pgd,
                momentum=cfg.momentum,
                weight_decay=cfg.weight_decay,
                rng=self._client_rng(round_idx, client.cid),
            )
            update = self._maybe_poison_update(
                round_idx, client.cid, model.state_dict(), snapshots[arch]
            )
            per_arch[arch].append((update, client.num_samples))
            costs.append(self._cost(dev, arch))

        for arch, updates in per_arch.items():
            if updates:
                self.prototypes[arch].load_state_dict(
                    self.robust_aggregate(
                        [s for s, _ in updates],
                        [float(n) for _, n in updates],
                        base=snapshots[arch],
                    )
                )
            else:
                self.prototypes[arch].load_state_dict(snapshots[arch])

        teachers = [m for n, m in self.prototypes.items() if n != self.family[-1]]
        teachers.append(self.global_model)
        distill(
            self.global_model,
            teachers,
            self.public,
            iterations=self.distill_iters,
            batch_size=cfg.batch_size,
            lr=self.lr_at(round_idx),
            confidence_weighted=self.confidence_weighted,
            rng=np.random.default_rng(cfg.seed + 17 + round_idx),
        )
        return costs

    def _cost(self, state: Optional[DeviceState], arch: str) -> LocalTrainingCost:
        if state is None:
            return LocalTrainingCost(0.0, 0.0)
        return self.latency_model.local_training_cost(
            state,
            training_flops=self.flops_iter[arch],
            mem_req_bytes=self.mem_req[arch],
            iterations=self.config.local_iters,
            pgd_steps=self.config.train_pgd_steps,
        )
