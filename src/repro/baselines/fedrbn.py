"""FedRBN (Hong et al., 2023): federated robustness propagation.

All clients train the *same* full model (no objective inconsistency), but
only memory-sufficient clients can afford adversarial training; the rest
do standard training.  Robustness is "propagated" by sharing the
adversarial batch-norm statistics of the AT clients with everyone, via
:class:`~repro.nn.normalization.DualBatchNorm2d`.

The paper finds FedRBN keeps high clean accuracy (homogeneous models) but
weak robustness under high systematic heterogeneity, because few clients
ever run AT — our reproduction preserves exactly that mechanism.

Asynchronous aggregation (``aggregation_mode="async"``) uses a
**staleness-aware dual-BN propagation rule**: a merge event at staleness
*s* attenuates its running-statistics updates by the same ``1/(1+s)``
FedAsync factor as the weights, but clean and adversarial batch-norm
statistics blend *separately* — clean stats toward the event average of
every member, adversarial stats toward the event average of the members
that actually ran adversarial training (weighted against the round's
total AT data).  At ``s=0`` with a single event both rates are exactly 1
and the rule collapses to the synchronous propagation bit for bit.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.attacks import ModelWithLoss, PGDConfig, pgd_attack
from repro.attacks.base import CohortModelWithLoss
from repro.attacks.pgd import cohort_pgd_attack
from repro.core.aggregator import (
    blend_into,
    restore_segment,
    snapshot_segment,
)
from repro.data.dataset import DataLoader
from repro.flsim.aggregation import AggregationError, weighted_average_states
from repro.flsim.base import FederatedExperiment, FLClient, FLConfig
from repro.flsim.executor import CohortFn
from repro.flsim.local import cohort_standard_local_train, standard_local_train
from repro.nn.cohort import (
    CohortCrossEntropyLoss,
    clear_cohort,
    extract_cohort,
    install_cohort,
)
from repro.hardware.devices import DeviceSampler, DeviceState
from repro.hardware.flops import training_flops_per_iteration
from repro.hardware.latency import LatencyModel, LocalTrainingCost
from repro.hardware.memory import MemoryModel
from repro.models.atoms import CascadeModel
from repro.nn.losses import CrossEntropyLoss
from repro.nn.normalization import DualBatchNorm2d, set_dual_bn_mode
from repro.optim.sgd import SGD


class FedRBN(FederatedExperiment):
    """Robustness propagation via dual BN statistics.

    The ``model_builder`` must produce models whose batch-norm layers are
    :class:`DualBatchNorm2d` (pass ``bn_cls=DualBatchNorm2d`` to the zoo
    builders); the constructor verifies this.
    """

    name = "fedrbn"
    supports_async_aggregation = True

    def __init__(
        self,
        task,
        model_builder: Callable[[np.random.Generator], CascadeModel],
        config: FLConfig,
        device_sampler: Optional[DeviceSampler] = None,
        latency_model: Optional[LatencyModel] = None,
    ):
        super().__init__(task, model_builder, config, device_sampler, latency_model)
        if not any(isinstance(m, DualBatchNorm2d) for m in self.global_model.modules()):
            raise ValueError(
                "FedRBN requires a model with DualBatchNorm2d layers; build it "
                "with bn_cls=DualBatchNorm2d"
            )
        mem = MemoryModel(batch_size=config.batch_size)
        self.mem_req = mem.bytes_for(self.global_model, self.global_model.in_shape)
        self.at_flops_iter = training_flops_per_iteration(
            self.global_model, self.global_model.in_shape,
            config.batch_size, config.train_pgd_steps,
        )
        self.st_flops_iter = training_flops_per_iteration(
            self.global_model, self.global_model.in_shape, config.batch_size, 0
        )
        self._adv_stat_keys = [
            name
            for name, _ in self.global_model.named_buffers()
            if name.endswith("_adv")
        ]

    def can_afford_at(self, state: Optional[DeviceState]) -> bool:
        if state is None:
            return True
        return state.avail_mem_bytes >= self.mem_req

    def _dual_adversarial_train(
        self, model, client: FLClient, lr: float, rng: np.random.Generator
    ) -> None:
        """AT client: clean pass updates clean BN stats, adversarial pass
        updates adversarial BN stats; both contribute to the SGD step."""
        cfg = self.config
        model.train()
        opt = SGD(
            model.parameters(), lr=lr, momentum=cfg.momentum, weight_decay=cfg.weight_decay
        )
        ce = CrossEntropyLoss()
        mwl = ModelWithLoss(model)
        pgd = PGDConfig(eps=cfg.eps0, steps=cfg.train_pgd_steps, norm="linf")
        loader = DataLoader(
            client.dataset,
            batch_size=min(cfg.batch_size, client.num_samples),
            shuffle=True,
            rng=rng,
        )
        batches = loader.infinite()
        for _ in range(cfg.local_iters):
            x, y = next(batches)
            set_dual_bn_mode(model, adversarial=True)
            x_adv = pgd_attack(mwl, x, y, pgd, rng=rng)
            opt.zero_grad()
            ce(model(x_adv), y)
            model.backward(ce.backward())
            adv_grads = [p.grad.copy() for p in model.parameters()]
            set_dual_bn_mode(model, adversarial=False)
            opt.zero_grad()
            ce(model(x), y)
            model.backward(ce.backward())
            for p, g in zip(model.parameters(), adv_grads):
                p.grad += g
                p.grad *= 0.5
            opt.step()

    def _cohort_dual_adversarial_train(
        self,
        model,
        clients: List[FLClient],
        lr: float,
        rngs: List[np.random.Generator],
    ) -> None:
        """K fused AT clients' :meth:`_dual_adversarial_train`, stacked.

        The adversarial/clean gradient halving operates on the per-client
        ``slab_grad`` (elementwise over the K slices), and the dual-BN
        mode switch routes running-statistic updates to the matching slab
        buffers — each client's slice is bit-identical to its serial dual
        pass.
        """
        cfg = self.config
        k = len(clients)
        model.train()
        opt = SGD(
            model.parameters(), lr=lr, momentum=cfg.momentum, weight_decay=cfg.weight_decay
        )
        ce = CohortCrossEntropyLoss(k)
        mwl = CohortModelWithLoss(model, k)
        pgd = PGDConfig(eps=cfg.eps0, steps=cfg.train_pgd_steps, norm="linf")
        loaders = [
            DataLoader(
                client.dataset,
                batch_size=min(cfg.batch_size, client.num_samples),
                shuffle=True,
                rng=rng,
            ).infinite()
            for client, rng in zip(clients, rngs)
        ]
        for _ in range(cfg.local_iters):
            batches = [next(it) for it in loaders]
            x = np.concatenate([b[0] for b in batches])
            y = np.concatenate([b[1] for b in batches])
            set_dual_bn_mode(model, adversarial=True)
            x_adv = cohort_pgd_attack(mwl, x, y, pgd, rngs)
            opt.zero_grad()
            ce(model(x_adv), y)
            model.backward(ce.backward())
            adv_grads = [p.slab_grad.copy() for p in model.parameters()]
            set_dual_bn_mode(model, adversarial=False)
            opt.zero_grad()
            ce(model(x), y)
            model.backward(ce.backward())
            for p, g in zip(model.parameters(), adv_grads):
                p.slab_grad += g
                p.slab_grad *= 0.5
            opt.step()

    def _cohort_train_many(
        self,
        model,
        items: List,
        base_state: Dict[str, np.ndarray],
        lr_t: float,
        round_idx: int,
    ) -> List[Dict[str, np.ndarray]]:
        """Train a fused cohort on ``model``; returns per-client states.

        The fusion key guarantees every member shares the AT/standard
        branch (and the batch schedule), so one branch decision covers
        the cohort.
        """
        cfg = self.config
        clients = [client for client, _dev in items]
        rngs = [self._client_rng(round_idx, client.cid) for client in clients]
        is_at = self.can_afford_at(items[0][1])
        try:
            install_cohort(model, [base_state] * len(items))
            if is_at:
                self._cohort_dual_adversarial_train(model, clients, lr_t, rngs)
            else:
                set_dual_bn_mode(model, adversarial=False)
                cohort_standard_local_train(
                    model,
                    [client.dataset for client in clients],
                    iterations=cfg.local_iters,
                    batch_size=cfg.batch_size,
                    lr=lr_t,
                    momentum=cfg.momentum,
                    weight_decay=cfg.weight_decay,
                    rngs=rngs,
                )
            return extract_cohort(model)
        finally:
            clear_cohort(model)

    def _fuse_key(self, item):
        """Fusion key: aligned batch schedule + the same AT/standard branch."""
        client, dev = item
        n = client.num_samples
        return (n, min(self.config.batch_size, n), self.can_afford_at(dev))

    def _train_one(
        self,
        model,
        client: FLClient,
        dev: Optional[DeviceState],
        lr_t: float,
        rng: np.random.Generator,
    ) -> bool:
        """Train one client on ``model`` in place; returns whether it ran AT.

        Pure function of (model state, client shard, device state, rng):
        shared verbatim by the sync round and the async pipeline so both
        modes train bit-identically from the same base weights.
        """
        is_at = self.can_afford_at(dev)
        if is_at:
            self._dual_adversarial_train(model, client, lr_t, rng)
        else:
            cfg = self.config
            set_dual_bn_mode(model, adversarial=False)
            standard_local_train(
                model,
                client.dataset,
                iterations=cfg.local_iters,
                batch_size=cfg.batch_size,
                lr=lr_t,
                momentum=cfg.momentum,
                weight_decay=cfg.weight_decay,
                rng=rng,
            )
        return is_at

    def run_round(
        self,
        round_idx: int,
        clients: List[FLClient],
        states: List[Optional[DeviceState]],
    ) -> List[LocalTrainingCost]:
        self._assert_sync_round()
        num_atoms = len(self.global_model.atoms)
        # Every client trains the full model: the round snapshot spans all
        # atoms and each work unit restores it in place on its slot model.
        global_snap = snapshot_segment(self.global_model, 0, num_atoms)
        lr_t = self.lr_at(round_idx)

        def train_client(item, slot):
            client, dev = item
            model = self._slot_model(slot)
            restore_segment(model, global_snap, 0, num_atoms)
            rng = self._client_rng(round_idx, client.cid)
            is_at = self._train_one(model, client, dev, lr_t, rng)
            return snapshot_segment(model, 0, num_atoms), is_at, self._cost(dev, is_at)

        def train_cohort(items, slot):
            model = self._slot_model(slot)
            trained = self._cohort_train_many(
                model, items, global_snap, lr_t, round_idx
            )
            out = []
            for state, (_client, dev) in zip(trained, items):
                is_at = self.can_afford_at(dev)
                out.append((state, is_at, self._cost(dev, is_at)))
            return out

        results = self.scheduler.run_group(
            "train",
            self._threat_wrap(
                round_idx,
                CohortFn(train_client, train_cohort, group_key=self._fuse_key),
                global_snap,
            ),
            list(zip(clients, states)),
        )
        all_states = [r[0] for r in results]
        sizes = [client.num_samples for client in clients]
        costs = [r[2] for r in results]
        at_states = [state for state, is_at, _ in results if is_at]
        at_sizes = [
            client.num_samples
            for client, (_, is_at, _) in zip(clients, results)
            if is_at
        ]

        # The robust rule covers weights + clean statistics (the same key
        # set the async merge rule robustifies, so ms=0 stays bit-equal);
        # adversarial BN statistics follow the propagation rule below.
        adv_keys = set(self._adv_stat_keys)
        plain_keys = [k for k in global_snap if k not in adv_keys]
        merged = self.robust_aggregate(
            all_states, [float(n) for n in sizes], keys=plain_keys, base=global_snap
        )
        # Robustness propagation: adversarial BN statistics come only from
        # the clients that actually ran adversarial training.
        if at_states:
            adv_merged = weighted_average_states(
                at_states, [float(n) for n in at_sizes], keys=self._adv_stat_keys
            )
            for key in self._adv_stat_keys:
                merged[key] = adv_merged[key]
        else:
            for key in self._adv_stat_keys:
                merged[key] = global_snap[key]
        self.global_model.load_state_dict(merged)
        return costs

    # -- asynchronous aggregation hooks ------------------------------------
    def async_client_fn(self, round_idx: int, base_state) -> Callable:
        num_atoms = len(self.global_model.atoms)
        lr_t = self.lr_at(round_idx)

        def train_client(item, slot):
            client, dev = item
            model = self._async_slot_model(slot)
            restore_segment(model, base_state, 0, num_atoms)
            rng = self._client_rng(round_idx, client.cid)
            self._train_one(model, client, dev, lr_t, rng)
            return snapshot_segment(model, 0, num_atoms)

        def train_cohort(items, slot):
            model = self._async_slot_model(slot)
            return self._cohort_train_many(
                model, items, base_state, lr_t, round_idx
            )

        return CohortFn(train_client, train_cohort, group_key=self._fuse_key)

    def async_client_costs(self, round_idx, clients, states):
        return [self._cost(dev, self.can_afford_at(dev)) for dev in states]

    def async_round_extra(self, round_idx, clients, states) -> Dict[str, Any]:
        """Which sampled clients can afford AT, and their total data weight.

        Pure functions of the device states, computed before training so
        the dual-BN merge rule can weight adversarial statistics without
        peeking at training output.
        """
        at = [self.can_afford_at(dev) for dev in states]
        at_weight = float(
            sum(float(c.num_samples) for c, is_at in zip(clients, at) if is_at)
        )
        return {"at": at, "at_weight": at_weight}

    def async_merge_event(self, server, ctx, members, updates, staleness) -> float:
        """Staleness-aware dual-BN propagation (the async FedRBN rule).

        Weights and *clean* running statistics blend exactly like
        FedAsync — the event average of every member, attenuated by
        ``1/(1+s)``.  *Adversarial* running statistics blend separately,
        toward the event average of the members that actually ran AT,
        with their own rate ``(event AT weight / round AT weight) /
        (1+s)`` — robustness still propagates only from AT clients, and a
        stale event moves the shared adversarial statistics no faster
        than it moves the weights.  Events without AT members leave the
        adversarial statistics untouched.  A single staleness-0 event
        reproduces the synchronous propagation bit for bit.
        """
        weights = [ctx.weights[i] for i in members]
        adv_keys = set(self._adv_stat_keys)
        plain_keys = [k for k in server if k not in adv_keys]
        if ctx.round_weight <= 0:
            raise AggregationError("round weight must be positive")
        merged = self.robust_aggregate(
            updates, weights, keys=plain_keys, base=server
        )
        alpha = blend_into(
            server, merged, (float(sum(weights)) / ctx.round_weight) / (1.0 + staleness)
        )
        at_flags = ctx.extra["at"]
        at_round_weight = ctx.extra["at_weight"]
        position = {i: j for j, i in enumerate(members)}
        at_members = [i for i in members if at_flags[i]]
        if at_members and at_round_weight > 0:
            at_states = [updates[position[i]] for i in at_members]
            at_weights = [ctx.weights[i] for i in at_members]
            merged = weighted_average_states(
                at_states, at_weights, keys=self._adv_stat_keys
            )
            alpha_adv = (float(sum(at_weights)) / at_round_weight) / (
                1.0 + staleness
            )
            blend_into(server, merged, alpha_adv)
        return alpha

    def _cost(self, state: Optional[DeviceState], is_at: bool) -> LocalTrainingCost:
        if state is None:
            return LocalTrainingCost(0.0, 0.0)
        return self.latency_model.local_training_cost(
            state,
            training_flops=self.at_flops_iter if is_at else self.st_flops_iter,
            mem_req_bytes=self.mem_req,
            iterations=self.config.local_iters,
            pgd_steps=self.config.train_pgd_steps if is_at else 0,
        )

    # Test-time robustness uses the propagated adversarial statistics.  The
    # dual-BN switch is a module *attribute*, not part of the state dict, so
    # it must travel with every eval plan as the per-slot setup hook — a
    # state-dict sync alone would leave thread replicas evaluating with
    # clean statistics.  ``evaluate``/``final_eval`` are inherited.
    @staticmethod
    def _eval_slot_setup(model) -> None:
        set_dual_bn_mode(model, adversarial=True)
