"""FedRBN (Hong et al., 2023): federated robustness propagation.

All clients train the *same* full model (no objective inconsistency), but
only memory-sufficient clients can afford adversarial training; the rest
do standard training.  Robustness is "propagated" by sharing the
adversarial batch-norm statistics of the AT clients with everyone, via
:class:`~repro.nn.normalization.DualBatchNorm2d`.

The paper finds FedRBN keeps high clean accuracy (homogeneous models) but
weak robustness under high systematic heterogeneity, because few clients
ever run AT — our reproduction preserves exactly that mechanism.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.attacks import ModelWithLoss, PGDConfig, pgd_attack
from repro.core.aggregator import restore_segment, snapshot_segment
from repro.data.dataset import DataLoader
from repro.flsim.aggregation import weighted_average_states
from repro.flsim.base import FederatedExperiment, FLClient, FLConfig
from repro.flsim.local import standard_local_train
from repro.hardware.devices import DeviceSampler, DeviceState
from repro.hardware.flops import training_flops_per_iteration
from repro.hardware.latency import LatencyModel, LocalTrainingCost
from repro.hardware.memory import MemoryModel
from repro.models.atoms import CascadeModel
from repro.nn.losses import CrossEntropyLoss
from repro.nn.normalization import DualBatchNorm2d, set_dual_bn_mode
from repro.optim.sgd import SGD


class FedRBN(FederatedExperiment):
    """Robustness propagation via dual BN statistics.

    The ``model_builder`` must produce models whose batch-norm layers are
    :class:`DualBatchNorm2d` (pass ``bn_cls=DualBatchNorm2d`` to the zoo
    builders); the constructor verifies this.
    """

    name = "fedrbn"

    def __init__(
        self,
        task,
        model_builder: Callable[[np.random.Generator], CascadeModel],
        config: FLConfig,
        device_sampler: Optional[DeviceSampler] = None,
        latency_model: Optional[LatencyModel] = None,
    ):
        super().__init__(task, model_builder, config, device_sampler, latency_model)
        if not any(isinstance(m, DualBatchNorm2d) for m in self.global_model.modules()):
            raise ValueError(
                "FedRBN requires a model with DualBatchNorm2d layers; build it "
                "with bn_cls=DualBatchNorm2d"
            )
        mem = MemoryModel(batch_size=config.batch_size)
        self.mem_req = mem.bytes_for(self.global_model, self.global_model.in_shape)
        self.at_flops_iter = training_flops_per_iteration(
            self.global_model, self.global_model.in_shape,
            config.batch_size, config.train_pgd_steps,
        )
        self.st_flops_iter = training_flops_per_iteration(
            self.global_model, self.global_model.in_shape, config.batch_size, 0
        )
        self._adv_stat_keys = [
            name
            for name, _ in self.global_model.named_buffers()
            if name.endswith("_adv")
        ]

    def can_afford_at(self, state: Optional[DeviceState]) -> bool:
        if state is None:
            return True
        return state.avail_mem_bytes >= self.mem_req

    def _dual_adversarial_train(
        self, model, client: FLClient, lr: float, rng: np.random.Generator
    ) -> None:
        """AT client: clean pass updates clean BN stats, adversarial pass
        updates adversarial BN stats; both contribute to the SGD step."""
        cfg = self.config
        model.train()
        opt = SGD(
            model.parameters(), lr=lr, momentum=cfg.momentum, weight_decay=cfg.weight_decay
        )
        ce = CrossEntropyLoss()
        mwl = ModelWithLoss(model)
        pgd = PGDConfig(eps=cfg.eps0, steps=cfg.train_pgd_steps, norm="linf")
        loader = DataLoader(
            client.dataset,
            batch_size=min(cfg.batch_size, client.num_samples),
            shuffle=True,
            rng=rng,
        )
        batches = loader.infinite()
        for _ in range(cfg.local_iters):
            x, y = next(batches)
            set_dual_bn_mode(model, adversarial=True)
            x_adv = pgd_attack(mwl, x, y, pgd, rng=rng)
            opt.zero_grad()
            ce(model(x_adv), y)
            model.backward(ce.backward())
            adv_grads = [p.grad.copy() for p in model.parameters()]
            set_dual_bn_mode(model, adversarial=False)
            opt.zero_grad()
            ce(model(x), y)
            model.backward(ce.backward())
            for p, g in zip(model.parameters(), adv_grads):
                p.grad += g
                p.grad *= 0.5
            opt.step()

    def run_round(
        self,
        round_idx: int,
        clients: List[FLClient],
        states: List[Optional[DeviceState]],
    ) -> List[LocalTrainingCost]:
        cfg = self.config
        num_atoms = len(self.global_model.atoms)
        # Every client trains the full model: the round snapshot spans all
        # atoms and each work unit restores it in place on its slot model.
        global_snap = snapshot_segment(self.global_model, 0, num_atoms)
        lr_t = self.lr_at(round_idx)

        def train_client(item, slot):
            client, dev = item
            model = self._slot_model(slot)
            restore_segment(model, global_snap, 0, num_atoms)
            rng = np.random.default_rng(
                cfg.seed * 1_000_003 + round_idx * 1009 + client.cid
            )
            is_at = self.can_afford_at(dev)
            if is_at:
                self._dual_adversarial_train(model, client, lr_t, rng)
            else:
                set_dual_bn_mode(model, adversarial=False)
                standard_local_train(
                    model,
                    client.dataset,
                    iterations=cfg.local_iters,
                    batch_size=cfg.batch_size,
                    lr=lr_t,
                    momentum=cfg.momentum,
                    weight_decay=cfg.weight_decay,
                    rng=rng,
                )
            return snapshot_segment(model, 0, num_atoms), is_at, self._cost(dev, is_at)

        results = self.scheduler.run_group("train", train_client, list(zip(clients, states)))
        all_states = [r[0] for r in results]
        sizes = [client.num_samples for client in clients]
        costs = [r[2] for r in results]
        at_states = [state for state, is_at, _ in results if is_at]
        at_sizes = [
            client.num_samples
            for client, (_, is_at, _) in zip(clients, results)
            if is_at
        ]

        merged = weighted_average_states(all_states, [float(n) for n in sizes])
        # Robustness propagation: adversarial BN statistics come only from
        # the clients that actually ran adversarial training.
        if at_states:
            adv_merged = weighted_average_states(at_states, [float(n) for n in at_sizes])
            for key in self._adv_stat_keys:
                merged[key] = adv_merged[key]
        else:
            for key in self._adv_stat_keys:
                merged[key] = global_snap[key]
        self.global_model.load_state_dict(merged)
        return costs

    def _cost(self, state: Optional[DeviceState], is_at: bool) -> LocalTrainingCost:
        if state is None:
            return LocalTrainingCost(0.0, 0.0)
        return self.latency_model.local_training_cost(
            state,
            training_flops=self.at_flops_iter if is_at else self.st_flops_iter,
            mem_req_bytes=self.mem_req,
            iterations=self.config.local_iters,
            pgd_steps=self.config.train_pgd_steps if is_at else 0,
        )

    # Test-time robustness uses the propagated adversarial statistics.  The
    # dual-BN switch is a module *attribute*, not part of the state dict, so
    # it must travel with every eval plan as the per-slot setup hook — a
    # state-dict sync alone would leave thread replicas evaluating with
    # clean statistics.  ``evaluate``/``final_eval`` are inherited.
    @staticmethod
    def _eval_slot_setup(model) -> None:
        set_dual_bn_mode(model, adversarial=True)
