"""FedET-AT (Cho et al., 2022): confidence-weighted ensemble transfer.

Same heterogeneous-family setup as FedDF, but the ensemble's soft targets
weight each teacher by its per-sample confidence (the core of FedET's
"ensemble knowledge transfer"), which amplifies confidently-wrong teachers
under non-IID shards — one reason the paper finds it weakest under FAT.
"""

from repro.baselines.feddf import FedDFAT


class FedETAT(FedDFAT):
    name = "fedet-at"
    confidence_weighted = True
