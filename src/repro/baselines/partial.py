"""Shared experiment loop for partial-training FAT baselines.

Each client trains a width-sliced sub-model sized to its available memory
(drop percentage ``1 − R_k/R_max``, paper App. B.2), adversarially, and the
server partial-averages the slices back into the global model.  Concrete
baselines differ only in the channel-selection strategy.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.attacks.pgd import PGDConfig
from repro.baselines.subnet import extract_submodel, scatter_submodel_state
from repro.flsim.aggregation import masked_partial_average
from repro.flsim.base import FederatedExperiment, FLClient, FLConfig
from repro.flsim.local import adversarial_local_train
from repro.hardware.devices import DeviceSampler, DeviceState
from repro.hardware.flops import training_flops_per_iteration
from repro.hardware.latency import LatencyModel, LocalTrainingCost
from repro.hardware.memory import MemoryModel
from repro.models.atoms import CascadeModel


class PartialTrainingFAT(FederatedExperiment):
    """Base class; subclasses set ``strategy`` (static/random/rolling)."""

    strategy = "static"
    min_ratio = 0.125

    def __init__(
        self,
        task,
        model_builder: Callable[[np.random.Generator], CascadeModel],
        config: FLConfig,
        device_sampler: Optional[DeviceSampler] = None,
        latency_model: Optional[LatencyModel] = None,
    ):
        super().__init__(task, model_builder, config, device_sampler, latency_model)
        self.mem = MemoryModel(batch_size=config.batch_size)
        self.r_max = self.mem.bytes_for(self.global_model, self.global_model.in_shape)

    def client_ratio(self, state: Optional[DeviceState]) -> float:
        """Sub-model width from available memory: clip(R_k / R_max, ...)."""
        if state is None:
            return 1.0
        return float(np.clip(state.avail_mem_bytes / self.r_max, self.min_ratio, 1.0))

    def run_round(
        self,
        round_idx: int,
        clients: List[FLClient],
        states: List[Optional[DeviceState]],
    ) -> List[LocalTrainingCost]:
        cfg = self.config
        global_state = self.global_model.state_dict()
        pgd = PGDConfig(eps=cfg.eps0, steps=cfg.train_pgd_steps, norm="linf")
        lr_t = self.lr_at(round_idx)

        # Work units never touch the shared global model: each extracts its
        # own width-sliced copy (a read of the global parameters) and trains
        # that, so every backend runs them without replica syncing.
        def train_client(item, _slot):
            client, dev = item
            ratio = self.client_ratio(dev)
            rng = np.random.default_rng(
                cfg.seed * 1_000_003 + round_idx * 1009 + client.cid
            )
            piece = extract_submodel(
                self.global_model, ratio, self.strategy, round_idx=round_idx, rng=rng
            )
            adversarial_local_train(
                piece.model,
                client.dataset,
                iterations=cfg.local_iters,
                batch_size=cfg.batch_size,
                lr=lr_t,
                pgd=pgd,
                momentum=cfg.momentum,
                weight_decay=cfg.weight_decay,
                rng=rng,
            )
            scattered, mask = scatter_submodel_state(
                piece.model.state_dict(), piece.index_map, global_state
            )
            update = (scattered, mask, float(client.num_samples))
            return update, self._cost(dev, piece.model)

        results = self.scheduler.run_group("train", train_client, list(zip(clients, states)))
        updates = [r[0] for r in results]
        costs = [r[1] for r in results]
        self.global_model.load_state_dict(
            masked_partial_average(global_state, updates)
        )
        return costs

    def _cost(self, state: Optional[DeviceState], submodel: CascadeModel) -> LocalTrainingCost:
        if state is None:
            return LocalTrainingCost(0.0, 0.0)
        cfg = self.config
        flops = training_flops_per_iteration(
            submodel, submodel.in_shape, batch_size=cfg.batch_size, pgd_steps=cfg.train_pgd_steps
        )
        mem_req = self.mem.bytes_for(submodel, submodel.in_shape)
        return self.latency_model.local_training_cost(
            state,
            training_flops=flops,
            mem_req_bytes=mem_req,
            iterations=cfg.local_iters,
            pgd_steps=cfg.train_pgd_steps,
        )
