"""Shared experiment loop for partial-training FAT baselines.

Each client trains a width-sliced sub-model sized to its available memory
(drop percentage ``1 − R_k/R_max``, paper App. B.2), adversarially, and the
server partial-averages the slices back into the global model.  Concrete
baselines differ only in the channel-selection strategy.

Asynchronous aggregation (``aggregation_mode="async"``): each merge
event masked-partial-averages its members' scattered slices against the
current server state and blends the result in with the FedAsync
``(event weight / round weight) / (1 + staleness)`` rate — entries no
event member trained keep their server values, exactly as in the
synchronous rule, and a single staleness-0 event reproduces it bit for
bit.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.attacks.pgd import PGDConfig
from repro.baselines.subnet import extract_submodel, scatter_submodel_state
from repro.core.aggregator import blend_into, restore_segment
from repro.flsim.base import FederatedExperiment, FLClient, FLConfig
from repro.flsim.executor import CohortFn
from repro.flsim.local import adversarial_local_train, cohort_adversarial_local_train
from repro.nn.cohort import clear_cohort, extract_cohort, install_cohort
from repro.hardware.devices import DeviceSampler, DeviceState
from repro.hardware.flops import training_flops_per_iteration
from repro.hardware.latency import LatencyModel, LocalTrainingCost
from repro.hardware.memory import MemoryModel
from repro.models.atoms import CascadeModel


class PartialTrainingFAT(FederatedExperiment):
    """Base class; subclasses set ``strategy`` (static/random/rolling)."""

    strategy = "static"
    min_ratio = 0.125
    supports_async_aggregation = True

    def __init__(
        self,
        task,
        model_builder: Callable[[np.random.Generator], CascadeModel],
        config: FLConfig,
        device_sampler: Optional[DeviceSampler] = None,
        latency_model: Optional[LatencyModel] = None,
    ):
        if config.aggregation_rule in ("krum", "multi_krum"):
            raise ValueError(
                f"{type(self).__name__} ships masked sub-model updates; "
                f"Krum's distance scores need homogeneous full-model "
                f"updates (use median, trimmed_mean or norm_clip)"
            )
        super().__init__(task, model_builder, config, device_sampler, latency_model)
        self.mem = MemoryModel(batch_size=config.batch_size)
        self.r_max = self.mem.bytes_for(self.global_model, self.global_model.in_shape)

    def client_ratio(self, state: Optional[DeviceState]) -> float:
        """Sub-model width from available memory: clip(R_k / R_max, ...)."""
        if state is None:
            return 1.0
        return float(np.clip(state.avail_mem_bytes / self.r_max, self.min_ratio, 1.0))

    #: Channel-selection strategies whose index maps are pure functions of
    #: (ratio, round_idx) — ``select`` never draws from the client RNG —
    #: so equal-ratio clients share identical sub-architectures *and*
    #: identical masks, and may fuse into one stacked cohort.  ``random``
    #: draws a fresh per-client subset and stays on the per-item path.
    _FUSABLE_STRATEGIES = ("static", "rolling")

    def _fuse_key(self, item):
        """Fusion key: identical sub-architecture/mask + batch schedule."""
        if self.strategy not in self._FUSABLE_STRATEGIES:
            return None
        client, dev = item
        n = client.num_samples
        return (self.client_ratio(dev), n, min(self.config.batch_size, n))

    def _train_cohort_piece(
        self, piece, items: List, lr_t: float, round_idx: int, pgd: PGDConfig
    ) -> List:
        """Adversarially train K fused clients on one extracted sub-model.

        Every member's serial work unit would extract a bit-identical
        sub-model (the fusion key guarantees an RNG-free strategy and an
        equal ratio), so one extraction serves the whole cohort; the
        trained per-client states come back from the slab slices.
        """
        cfg = self.config
        piece_state = piece.model.state_dict()
        try:
            install_cohort(piece.model, [piece_state] * len(items))
            cohort_adversarial_local_train(
                piece.model,
                [client.dataset for client, _dev in items],
                iterations=cfg.local_iters,
                batch_size=cfg.batch_size,
                lr=lr_t,
                pgd=pgd,
                momentum=cfg.momentum,
                weight_decay=cfg.weight_decay,
                rngs=[
                    self._client_rng(round_idx, client.cid)
                    for client, _dev in items
                ],
            )
            return extract_cohort(piece.model)
        finally:
            clear_cohort(piece.model)

    def run_round(
        self,
        round_idx: int,
        clients: List[FLClient],
        states: List[Optional[DeviceState]],
    ) -> List[LocalTrainingCost]:
        self._assert_sync_round()
        cfg = self.config
        global_state = self.global_model.state_dict()
        pgd = PGDConfig(eps=cfg.eps0, steps=cfg.train_pgd_steps, norm="linf")
        lr_t = self.lr_at(round_idx)

        # Work units never touch the shared global model: each extracts its
        # own width-sliced copy (a read of the global parameters) and trains
        # that, so every backend runs them without replica syncing.
        def train_client(item, _slot):
            client, dev = item
            ratio = self.client_ratio(dev)
            rng = self._client_rng(round_idx, client.cid)
            piece = extract_submodel(
                self.global_model, ratio, self.strategy, round_idx=round_idx, rng=rng
            )
            adversarial_local_train(
                piece.model,
                client.dataset,
                iterations=cfg.local_iters,
                batch_size=cfg.batch_size,
                lr=lr_t,
                pgd=pgd,
                momentum=cfg.momentum,
                weight_decay=cfg.weight_decay,
                rng=rng,
            )
            scattered, mask = scatter_submodel_state(
                piece.model.state_dict(), piece.index_map, global_state
            )
            update = (scattered, mask, float(client.num_samples))
            return update, self._cost(dev, piece.model)

        def train_cohort(items, slot):
            first_client, first_dev = items[0]
            piece = extract_submodel(
                self.global_model,
                self.client_ratio(first_dev),
                self.strategy,
                round_idx=round_idx,
                rng=self._client_rng(round_idx, first_client.cid),
            )
            trained = self._train_cohort_piece(piece, items, lr_t, round_idx, pgd)
            out = []
            for state, (client, dev) in zip(trained, items):
                scattered, mask = scatter_submodel_state(
                    state, piece.index_map, global_state
                )
                update = (scattered, mask, float(client.num_samples))
                out.append((update, self._cost(dev, piece.model)))
            return out

        results = self.scheduler.run_group(
            "train",
            self._threat_wrap(
                round_idx,
                CohortFn(train_client, train_cohort, group_key=self._fuse_key),
                global_state,
            ),
            list(zip(clients, states)),
        )
        updates = [r[0] for r in results]
        costs = [r[1] for r in results]
        self.global_model.load_state_dict(
            self.robust_masked_average(global_state, updates)
        )
        return costs

    # -- asynchronous aggregation hooks ------------------------------------
    def async_client_fn(self, round_idx: int, base_state) -> Callable:
        cfg = self.config
        pgd = PGDConfig(eps=cfg.eps0, steps=cfg.train_pgd_steps, norm="linf")
        lr_t = self.lr_at(round_idx)
        num_atoms = len(self.global_model.atoms)

        def train_client(item, slot):
            client, dev = item
            model = self._async_slot_model(slot)
            restore_segment(model, base_state, 0, num_atoms)
            rng = self._client_rng(round_idx, client.cid)
            piece = extract_submodel(
                model, self.client_ratio(dev), self.strategy,
                round_idx=round_idx, rng=rng,
            )
            adversarial_local_train(
                piece.model,
                client.dataset,
                iterations=cfg.local_iters,
                batch_size=cfg.batch_size,
                lr=lr_t,
                pgd=pgd,
                momentum=cfg.momentum,
                weight_decay=cfg.weight_decay,
                rng=rng,
            )
            scattered, mask = scatter_submodel_state(
                piece.model.state_dict(), piece.index_map, base_state
            )
            return (scattered, mask, float(client.num_samples))

        def train_cohort(items, slot):
            first_client, first_dev = items[0]
            model = self._async_slot_model(slot)
            restore_segment(model, base_state, 0, num_atoms)
            piece = extract_submodel(
                model,
                self.client_ratio(first_dev),
                self.strategy,
                round_idx=round_idx,
                rng=self._client_rng(round_idx, first_client.cid),
            )
            trained = self._train_cohort_piece(piece, items, lr_t, round_idx, pgd)
            return [
                scatter_submodel_state(state, piece.index_map, base_state)
                + (float(client.num_samples),)
                for state, (client, _dev) in zip(trained, items)
            ]

        return CohortFn(train_client, train_cohort, group_key=self._fuse_key)

    def async_client_costs(self, round_idx, clients, states):
        """Pre-training latency: slice each client's architecture and cost it.

        The extraction here is structural — the sliced weights are
        discarded; only shapes feed the FLOP/memory model — and consumes
        the same counter-derived RNG draws the work unit will make, so
        the sliced channels (and therefore the costs) match the training
        exactly on every backend.
        """
        costs = []
        for client, dev in zip(clients, states):
            rng = self._client_rng(round_idx, client.cid)
            piece = extract_submodel(
                self.global_model, self.client_ratio(dev), self.strategy,
                round_idx=round_idx, rng=rng,
            )
            costs.append(self._cost(dev, piece.model))
        return costs

    def async_merge_event(self, server, ctx, members, updates, staleness) -> float:
        """Masked partial average of the event, FedAsync-attenuated.

        ``updates`` are ``(scattered_state, mask, weight)`` triples with
        global shapes; the event's masked average against the current
        server keeps untrained entries at their server values, then
        blends in at ``(event weight / round weight) / (1 + staleness)``.
        """
        event_weight = float(sum(ctx.weights[i] for i in members))
        alpha = (event_weight / ctx.round_weight) / (1.0 + staleness)
        merged = self.robust_masked_average(server, updates)
        return blend_into(server, merged, alpha)

    def _cost(self, state: Optional[DeviceState], submodel: CascadeModel) -> LocalTrainingCost:
        if state is None:
            return LocalTrainingCost(0.0, 0.0)
        cfg = self.config
        flops = training_flops_per_iteration(
            submodel, submodel.in_shape, batch_size=cfg.batch_size, pgd_steps=cfg.train_pgd_steps
        )
        mem_req = self.mem.bytes_for(submodel, submodel.in_shape)
        return self.latency_model.local_training_cost(
            state,
            training_flops=flops,
            mem_req_bytes=mem_req,
            iterations=cfg.local_iters,
            pgd_steps=cfg.train_pgd_steps,
        )
