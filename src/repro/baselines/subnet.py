"""Width-sliced sub-model extraction for partial-training FL baselines.

HeteroFL (Diao et al., 2020), FedDropout (Wen et al., 2022) and FedRolex
(Alam et al., 2022) all let a memory-poor client train a *narrow* copy of
the global model: every conv/linear layer keeps a subset of its channels,
chosen by a per-method strategy:

* ``static``  — always the first k channels (HeteroFL),
* ``random``  — a fresh uniform subset per client per round (FedDropout),
* ``rolling`` — a window advancing with the round index (FedRolex).

``extract_submodel`` returns a sliced copy plus an index map;
``scatter_submodel_state`` maps trained sub-parameters back into
global-shaped arrays with a coverage mask for partial averaging (Eq. 16 of
the paper generalises the same rule).

Residual blocks with identity skips constrain the block's output channel
set to equal its input set (the addition must stay aligned), which all
three published methods also require.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.models.atoms import Atom, CascadeModel
from repro.nn.activations import LeakyReLU, ReLU, Tanh
from repro.nn.dtype import accum_dtype
from repro.nn.blocks import BasicBlock, ConvBNReLU
from repro.nn.conv import Conv2d
from repro.nn.functional import conv_output_size
from repro.nn.linear import Flatten, Linear
from repro.nn.module import Identity, Module, Sequential
from repro.nn.normalization import BatchNorm2d
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d

IndexMap = Dict[str, Tuple[np.ndarray, ...]]


@dataclass
class SubmodelSlice:
    """A sliced sub-model plus the bookkeeping to scatter it back."""

    model: CascadeModel
    index_map: IndexMap  # state-dict key -> per-axis global indices
    ratio: float


class _SliceContext:
    def __init__(
        self,
        strategy: str,
        ratio: float,
        rng: np.random.Generator,
        round_idx: int,
        output_linear_id: int,
    ):
        if strategy not in ("static", "random", "rolling"):
            raise ValueError(f"unknown slicing strategy {strategy!r}")
        if not (0.0 < ratio <= 1.0):
            raise ValueError("ratio must be in (0, 1]")
        self.strategy = strategy
        self.ratio = ratio
        self.rng = rng
        self.round_idx = round_idx
        self.output_linear_id = output_linear_id
        self.index_map: IndexMap = {}

    def select(self, total: int) -> np.ndarray:
        keep = max(1, int(round(self.ratio * total)))
        if keep >= total:
            return np.arange(total)
        if self.strategy == "static":
            return np.arange(keep)
        if self.strategy == "random":
            return np.sort(self.rng.choice(total, size=keep, replace=False))
        start = self.round_idx % total
        return np.sort(np.arange(start, start + keep) % total)


def _find_output_linear(model: CascadeModel) -> int:
    """id() of the final classifier Linear (its outputs are never sliced)."""
    last = None
    for m in model.modules():
        if isinstance(m, Linear):
            last = m
    if last is None:
        raise ValueError("model has no Linear layer")
    return id(last)


def _slice_conv(
    conv: Conv2d, in_idx: np.ndarray, out_idx: np.ndarray, name: str, ctx: _SliceContext
) -> Conv2d:
    new = Conv2d(
        len(in_idx),
        len(out_idx),
        conv.kernel_size,
        stride=conv.stride,
        padding=conv.padding,
        bias=conv.use_bias,
    )
    new.weight.data[...] = conv.weight.data[np.ix_(out_idx, in_idx)]
    ctx.index_map[name + ".weight"] = (out_idx, in_idx)
    if conv.use_bias:
        new.bias.data[...] = conv.bias.data[out_idx]
        ctx.index_map[name + ".bias"] = (out_idx,)
    return new


def _slice_bn(bn: BatchNorm2d, idx: np.ndarray, name: str, ctx: _SliceContext) -> BatchNorm2d:
    new = type(bn)(len(idx), momentum=bn.momentum, eps=bn.eps)
    new.weight.data[...] = bn.weight.data[idx]
    new.bias.data[...] = bn.bias.data[idx]
    ctx.index_map[name + ".weight"] = (idx,)
    ctx.index_map[name + ".bias"] = (idx,)
    for buf_name, buf in bn._buffers.items():
        new.set_buffer(buf_name, buf[idx].copy())
        ctx.index_map[f"{name}.{buf_name}"] = (idx,)
    return new


def _slice_linear(
    linear: Linear, in_idx: np.ndarray, name: str, ctx: _SliceContext
) -> Tuple[Linear, np.ndarray]:
    if id(linear) == ctx.output_linear_id:
        out_idx = np.arange(linear.out_features)
    else:
        out_idx = ctx.select(linear.out_features)
    new = Linear(len(in_idx), len(out_idx), bias=linear.use_bias)
    new.weight.data[...] = linear.weight.data[np.ix_(out_idx, in_idx)]
    ctx.index_map[name + ".weight"] = (out_idx, in_idx)
    if linear.use_bias:
        new.bias.data[...] = linear.bias.data[out_idx]
        ctx.index_map[name + ".bias"] = (out_idx,)
    return new, out_idx


def _slice(
    module: Module,
    in_shape: Tuple[int, ...],
    in_idx: np.ndarray,
    name: str,
    ctx: _SliceContext,
) -> Tuple[Module, Tuple[int, ...], np.ndarray]:
    """Recursively slice ``module``; returns (sub, global_out_shape, out_idx).

    ``in_shape`` tracks the *global* tensor shape (spatial dims are shared
    between global and sub model); ``in_idx`` are the kept global channel
    (or feature) indices of the module's input.
    """
    if isinstance(module, Conv2d):
        out_idx = ctx.select(module.out_channels)
        new = _slice_conv(module, in_idx, out_idx, name, ctx)
        _, h, w = in_shape
        k, s, p = module.kernel_size, module.stride, module.padding
        out_shape = (module.out_channels, conv_output_size(h, k, s, p), conv_output_size(w, k, s, p))
        return new, out_shape, out_idx
    if isinstance(module, BatchNorm2d):
        return _slice_bn(module, in_idx, name, ctx), in_shape, in_idx
    if isinstance(module, (ReLU, LeakyReLU, Tanh, Identity)):
        return type(module)(), in_shape, in_idx
    if isinstance(module, (MaxPool2d, AvgPool2d)):
        new = type(module)(module.kernel_size, stride=module.stride, padding=module.padding)
        c, h, w = in_shape
        k, s, p = module.kernel_size, module.stride, module.padding
        out_shape = (c, conv_output_size(h, k, s, p), conv_output_size(w, k, s, p))
        return new, out_shape, in_idx
    if isinstance(module, GlobalAvgPool2d):
        return GlobalAvgPool2d(), (in_shape[0],), in_idx
    if isinstance(module, Flatten):
        c, h, w = in_shape
        spatial = h * w
        expanded = (in_idx[:, None] * spatial + np.arange(spatial)[None, :]).reshape(-1)
        return Flatten(), (c * spatial,), expanded
    if isinstance(module, Linear):
        new, out_idx = _slice_linear(module, in_idx, name, ctx)
        return new, (module.out_features,), out_idx
    if isinstance(module, Sequential):
        subs: List[Module] = []
        shape, idx = in_shape, in_idx
        for i, layer in enumerate(module.layers):
            sub, shape, idx = _slice(layer, shape, idx, f"{name}.layer{i}", ctx)
            subs.append(sub)
        return Sequential(*subs), shape, idx
    if isinstance(module, ConvBNReLU):
        new = ConvBNReLU(1, 1, batch_norm=not isinstance(module.bn, Identity))
        conv_out_idx = ctx.select(module.conv.out_channels)
        new.conv = _slice_conv(module.conv, in_idx, conv_out_idx, f"{name}.conv", ctx)
        _, h, w = in_shape
        k, s, p = module.conv.kernel_size, module.conv.stride, module.conv.padding
        out_shape = (
            module.conv.out_channels,
            conv_output_size(h, k, s, p),
            conv_output_size(w, k, s, p),
        )
        if isinstance(module.bn, BatchNorm2d):
            new.bn = _slice_bn(module.bn, conv_out_idx, f"{name}.bn", ctx)
        return new, out_shape, conv_out_idx
    if isinstance(module, BasicBlock):
        identity_skip = isinstance(module.downsample, Identity)
        if identity_skip:
            out_idx = in_idx  # the addition forces matching channel sets
        else:
            out_idx = ctx.select(module.conv2.out_channels)
        mid_idx = ctx.select(module.conv1.out_channels)
        new = BasicBlock(len(in_idx), len(out_idx), stride=1)  # rebuilt below
        new.conv1 = _slice_conv(module.conv1, in_idx, mid_idx, f"{name}.conv1", ctx)
        new.bn1 = _slice_bn(module.bn1, mid_idx, f"{name}.bn1", ctx)
        new.conv2 = _slice_conv(module.conv2, mid_idx, out_idx, f"{name}.conv2", ctx)
        new.bn2 = _slice_bn(module.bn2, out_idx, f"{name}.bn2", ctx)
        if identity_skip:
            new.downsample = Identity()
        else:
            ds_conv = module.downsample.layers[0]
            ds_bn = module.downsample.layers[1]
            new.downsample = Sequential(
                _slice_conv(ds_conv, in_idx, out_idx, f"{name}.downsample.layer0", ctx),
                _slice_bn(ds_bn, out_idx, f"{name}.downsample.layer1", ctx),
            )
        _, h, w = in_shape
        s = module.conv1.stride
        out_shape = (
            module.conv2.out_channels,
            conv_output_size(h, 3, s, 1),
            conv_output_size(w, 3, s, 1),
        )
        return new, out_shape, out_idx
    raise TypeError(f"cannot slice module of type {type(module).__name__}")


def extract_submodel(
    model: CascadeModel,
    ratio: float,
    strategy: str,
    round_idx: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> SubmodelSlice:
    """Extract a width-``ratio`` sub-model of ``model``.

    The sub-model is a fully functional :class:`CascadeModel` whose
    parameters are *copies* of the selected global slices; training it does
    not touch the global model.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    ctx = _SliceContext(
        strategy=strategy,
        ratio=ratio,
        rng=rng,
        round_idx=round_idx,
        output_linear_id=_find_output_linear(model),
    )
    atoms: List[Atom] = []
    shape: Tuple[int, ...] = model.in_shape
    idx = np.arange(model.in_shape[0])
    for i, atom in enumerate(model.atoms):
        sub, shape, idx = _slice(atom.module, shape, idx, f"atom{i}", ctx)
        atoms.append(Atom(name=atom.name, module=sub))
    sub_model = CascadeModel(
        atoms,
        in_shape=model.in_shape,
        num_classes=model.num_classes,
        name=f"{model.name}@{ratio:.2f}",
    )
    return SubmodelSlice(model=sub_model, index_map=ctx.index_map, ratio=ratio)


def scatter_submodel_state(
    sub_state: Dict[str, np.ndarray],
    index_map: IndexMap,
    global_template: Dict[str, np.ndarray],
) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """Map a trained sub-state back to global shapes with a coverage mask."""
    scattered: Dict[str, np.ndarray] = {}
    mask: Dict[str, np.ndarray] = {}
    for key, template in global_template.items():
        contributed = (
            (sub_state[key],) if key in index_map and key in sub_state else ()
        )
        dtype = accum_dtype(template, *contributed)
        out = np.zeros_like(template, dtype=dtype)
        cover = np.zeros_like(template, dtype=dtype)
        if key in index_map and key in sub_state:
            axes = index_map[key]
            if len(axes) < template.ndim:
                axes = axes + tuple(
                    np.arange(template.shape[d]) for d in range(len(axes), template.ndim)
                )
            ix = np.ix_(*axes)
            out[ix] = sub_state[key]
            cover[ix] = 1.0
        scattered[key] = out
        mask[key] = cover
    return scattered, mask
