"""FedRolex-AT (Alam et al., 2022): rolling-window sub-model extraction."""

from repro.baselines.partial import PartialTrainingFAT


class FedRolexAT(PartialTrainingFAT):
    """The kept-channel window advances deterministically with the round
    index, guaranteeing uniform coverage of all channels over a cycle."""

    name = "fedrolex-at"
    strategy = "rolling"
