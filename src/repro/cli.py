"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``partition``  — run Algorithm 1 on a named architecture and print the
                 module table (paper Tables 7–8 style).
``devices``    — print a device pool and sampled real-time resources.
``train``      — run a federated experiment (FedProphet or a baseline)
                 on a synthetic workload and print the final metrics.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np

MB = 1024**2


def _cmd_partition(args: argparse.Namespace) -> int:
    from repro.core.partitioner import (
        full_model_mem_bytes,
        partition_model,
        partition_summary,
    )
    from repro.hardware import MemoryModel
    from repro.models import build_model
    from repro.utils import format_table

    shape = (3, args.image_size, args.image_size)
    model = build_model(args.model, args.classes, shape, width_mult=args.width_mult)
    mem = MemoryModel(batch_size=args.batch_size, bytes_per_scalar=args.bytes_per_scalar)
    r_max = full_model_mem_bytes(model, mem)
    r_min = args.r_min_mb * MB if args.r_min_mb else args.r_min_fraction * r_max
    partition = partition_model(model, r_min, mem)
    rows = [
        (
            r["module"],
            ", ".join(r["atoms"]),
            f"{r['mem_bytes'] / MB:.1f} MB",
            f"{r['flops_fwd'] / 1e9:.3f} G",
        )
        for r in partition_summary(model, partition, mem)
    ]
    print(
        format_table(
            ["module", "layers", "MemReq", "FLOPs (fwd)"],
            rows,
            title=(
                f"{args.model} @ {shape}, R_max = {r_max / MB:.1f} MB, "
                f"R_min = {r_min / MB:.1f} MB -> {partition.num_modules} modules"
            ),
        )
    )
    return 0


def _cmd_devices(args: argparse.Namespace) -> int:
    from repro.hardware import DeviceSampler, device_pool
    from repro.utils import format_table

    pool = device_pool(args.pool)
    rows = [(d.name, f"{d.perf_tflops} TF", f"{d.mem_gb} GB", f"{d.io_gbps} GB/s") for d in pool]
    print(format_table(["device", "perf", "memory", "I/O bw"], rows,
                       title=f"device pool: {args.pool}"))
    sampler = DeviceSampler(pool, args.heterogeneity)
    rng = np.random.default_rng(args.seed)
    states = sampler.sample_many(args.samples, rng)
    mems = np.array([s.avail_mem_bytes / 1024**3 for s in states])
    perfs = np.array([s.avail_perf_flops / 1e12 for s in states])
    print(
        f"\n{args.samples} samples ({args.heterogeneity}): "
        f"avail mem {mems.mean():.2f}±{mems.std():.2f} GB, "
        f"avail perf {perfs.mean():.2f}±{perfs.std():.2f} TFLOPS"
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.baselines import (
        FedDropAT,
        FedRBN,
        FedRolexAT,
        HeteroFLAT,
        JointFAT,
    )
    from repro.core import FedProphet, FedProphetConfig
    from repro.data import make_cifar10_like
    from repro.flsim import FaultPlan, FLConfig, ThreatPlan
    from repro.hardware import DeviceSampler, device_pool
    from repro.models import build_vgg
    from repro.nn.normalization import DualBatchNorm2d

    shape = (3, args.image_size, args.image_size)
    task = make_cifar10_like(
        image_size=args.image_size, train_per_class=args.train_per_class,
        test_per_class=max(10, args.train_per_class // 5), seed=args.seed,
    )
    # FedRBN propagates robustness through dual batch-norm statistics, so
    # its backbone swaps every BN layer for DualBatchNorm2d.
    bn_cls = DualBatchNorm2d if args.method == "fedrbn" else None
    builder = lambda rng: build_vgg(
        "vgg11", 10, shape, width_mult=args.width_mult, rng=rng,
        **({"bn_cls": bn_cls} if bn_cls is not None else {}),
    )
    sampler = DeviceSampler(device_pool("cifar10"), args.heterogeneity)
    # --overlap-eval pipelines *periodic* evaluation, so it implies one
    # unless --eval-every says otherwise (the historical default skips
    # periodic eval entirely and only measures at the end).
    eval_every = args.eval_every
    if eval_every is None:
        eval_every = max(1, args.rounds // 4) if args.overlap_eval else 0
    if args.resume and not args.journal:
        print("error: --resume requires --journal", file=sys.stderr)
        return 2
    if args.replay and not args.journal:
        print("error: --replay requires --journal", file=sys.stderr)
        return 2
    if args.replay and args.resume:
        print("error: --replay and --resume are mutually exclusive", file=sys.stderr)
        return 2
    fault_plan = FaultPlan.parse(args.fault_plan) if args.fault_plan else None
    threat_plan = ThreatPlan.parse(args.threat_plan) if args.threat_plan else None
    common = dict(
        num_clients=args.clients, clients_per_round=args.clients_per_round,
        local_iters=args.local_iters, batch_size=args.batch_size, lr=args.lr,
        train_pgd_steps=args.pgd_steps, eval_pgd_steps=5, eval_every=eval_every,
        eval_max_samples=150, seed=args.seed,
        executor_backend=args.executor, round_parallelism=args.round_parallelism,
        fusion_width=args.fusion_width,
        eval_parallelism=args.eval_parallelism,
        aggregation_mode=args.aggregation_mode, max_staleness=args.max_staleness,
        pipeline_depth=args.pipeline_depth,
        overlap_eval=args.overlap_eval, split_autoattack=args.split_autoattack,
        journal_path=args.journal, checkpoint_every=args.checkpoint_every,
        metrics_path=args.metrics, status_port=args.status_port,
        eval_every_merge=args.eval_every_merge,
        fault_plan=fault_plan, client_timeout=args.client_timeout,
        max_client_retries=args.max_client_retries,
        min_clients_per_round=args.min_clients_per_round,
        threat_plan=threat_plan, aggregation_rule=args.aggregation_rule,
        trim_ratio=args.trim_ratio, krum_byzantine_f=args.krum_byzantine_f,
        clip_norm=args.clip_norm,
        population_scheme=args.population_scheme,
        client_materialisation=args.client_materialisation,
        client_cache_size=args.client_cache_size,
        samples_per_client=args.samples_per_client,
        availability_fraction=args.availability_fraction,
        availability_period=args.availability_period,
    )
    def build(**overrides):
        fields = dict(common, **overrides)
        if args.method == "fedprophet":
            return FedProphet(
                task, builder,
                FedProphetConfig(rounds=args.rounds,
                                 rounds_per_module=max(4, args.rounds // 4),
                                 patience=max(3, args.rounds // 8),
                                 r_min_fraction=0.35,
                                 val_samples=80, val_pgd_steps=3, **fields),
                device_sampler=sampler,
            )
        cls = {
            "jfat": JointFAT, "heterofl": HeteroFLAT,
            "feddrop": FedDropAT, "fedrolex": FedRolexAT,
            "fedrbn": FedRBN,
        }[args.method]
        return cls(task, builder, FLConfig(rounds=args.rounds, **fields),
                   device_sampler=sampler)

    if args.replay:
        # Re-execute the journalled run in a scratch directory (same
        # journal basename, so re-emitted checkpoint events match
        # bit-for-bit) and verify every event against the recorded log.
        import tempfile

        from repro.flsim.replay import ReplayDivergence, replay_run

        scratch = tempfile.mkdtemp(prefix="repro-replay-")
        replay_journal = os.path.join(scratch, os.path.basename(args.journal))
        try:
            report = replay_run(
                os.path.abspath(args.journal),
                lambda: build(journal_path=replay_journal),
                verbose=args.verbose,
            )
        except ReplayDivergence as err:
            print(f"replay FAILED: {err}", file=sys.stderr)
            return 1
        print(report.summary())
        return 0

    exp = build()
    if exp.status_address:
        print(f"status endpoint: {exp.status_address}/status")
    if args.verbose:
        # Resolved worker counts for both engines (the CLI flags are caps;
        # None resolves to the CPU count / the round engine's settings).
        print(exp.describe_parallelism())
    if args.resume:
        exp.resume(args.journal, verbose=args.verbose)
    else:
        exp.run(verbose=args.verbose)
    res = exp.final_eval(max_samples=150)
    print(
        f"\n{args.method}: clean {res.clean_acc:.2%}, PGD {res.pgd_acc:.2%}, "
        f"AA {res.aa_acc:.2%}; simulated time {exp.clock_s:.3g}s "
        f"(compute {exp.total_compute_s:.3g}s, access {exp.total_access_s:.3g}s)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("partition", help="run Algorithm 1 and print the module table")
    p.add_argument("--model", default="vgg16")
    p.add_argument("--classes", type=int, default=10)
    p.add_argument("--image-size", type=int, default=32)
    p.add_argument("--width-mult", type=float, default=1.0)
    p.add_argument("--batch-size", type=int, default=64)
    p.add_argument("--bytes-per-scalar", type=int, default=4,
                   help="4=fp32 (paper), 2=fp16, 1=int8 low-bit training")
    p.add_argument("--r-min-mb", type=float, default=None)
    p.add_argument("--r-min-fraction", type=float, default=0.2)
    p.set_defaults(func=_cmd_partition)

    p = sub.add_parser("devices", help="inspect a device pool")
    p.add_argument("--pool", default="cifar10", choices=["cifar10", "caltech256"])
    p.add_argument("--heterogeneity", default="balanced", choices=["balanced", "unbalanced"])
    p.add_argument("--samples", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_devices)

    p = sub.add_parser("train", help="run a federated experiment")
    p.add_argument("--method", default="fedprophet",
                   choices=["fedprophet", "jfat", "heterofl", "feddrop",
                            "fedrolex", "fedrbn"])
    p.add_argument("--heterogeneity", default="balanced", choices=["balanced", "unbalanced"])
    p.add_argument("--rounds", type=int, default=40)
    p.add_argument("--clients", type=int, default=20)
    p.add_argument("--clients-per-round", type=int, default=4)
    p.add_argument("--local-iters", type=int, default=5)
    p.add_argument("--batch-size", type=int, default=32)
    p.add_argument("--lr", type=float, default=0.08)
    p.add_argument("--pgd-steps", type=int, default=2)
    p.add_argument("--image-size", type=int, default=8)
    p.add_argument("--width-mult", type=float, default=0.25)
    p.add_argument("--train-per-class", type=int, default=80)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--executor", default="serial",
                   choices=["serial", "thread", "process", "batched"],
                   help="round execution backend (bit-identical results); "
                        "batched additionally fuses homogeneous clients "
                        "into stacked cohorts (see --fusion-width)")
    p.add_argument("--fusion-width", type=int, default=4,
                   help="batched executor: max clients fused into one "
                        "stacked cohort (default 4; 1 disables fusion)")
    p.add_argument("--round-parallelism", "--parallelism", dest="round_parallelism",
                   type=int, default=None,
                   help="worker cap for the round execution engine "
                        "(default: CPU count; --parallelism is a legacy alias)")
    p.add_argument("--eval-parallelism", type=int, default=None,
                   help="worker cap for the sharded evaluation engine "
                        "(default: follow --round-parallelism)")
    p.add_argument("--aggregation-mode", default="sync", choices=["sync", "async"],
                   help="sync: round-barrier aggregation (bit-identical "
                        "reference); async: staleness-bounded merge in "
                        "simulated-arrival order (every method except the "
                        "distillation baselines)")
    p.add_argument("--max-staleness", type=int, default=4,
                   help="intra-round merge-event staleness bound for "
                        "--aggregation-mode async")
    p.add_argument("--pipeline-depth", type=int, default=1,
                   help="async mode: rounds allowed in flight at once; >1 "
                        "dispatches the next round's fast clients against "
                        "the latest merged server state while stragglers "
                        "finish (deterministic; 1 = classic round-drain)")
    p.add_argument("--eval-every", type=int, default=None,
                   help="evaluate every K rounds during training (default: 0 "
                        "= final eval only; --overlap-eval implies rounds/4)")
    p.add_argument("--overlap-eval", action="store_true",
                   help="pipeline periodic evaluation with the next round's "
                        "training (thread backend; eval reads a published "
                        "weight snapshot, bit-identical to the barrier path)")
    p.add_argument("--split-autoattack", action="store_true",
                   help="shard AutoAttack into FGSM/PGD/APGD ensemble members "
                        "to shorten the eval critical path")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="write an append-only JSONL run journal to PATH "
                        "(config fingerprint, rounds, merges, evals, "
                        "checkpoints)")
    p.add_argument("--resume", action="store_true",
                   help="resume an interrupted run from --journal's last "
                        "checkpoint (bit-identical to the uninterrupted run)")
    p.add_argument("--replay", action="store_true",
                   help="deterministically re-execute the run recorded in "
                        "--journal and verify every journal event "
                        "bit-for-bit (exit 1 + a divergence report naming "
                        "the first mismatching seq on failure; pass the "
                        "original --checkpoint-every to verify checkpoint "
                        "events too, otherwise they are skipped)")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   help="atomically checkpoint run state every K rounds "
                        "(0 = off; requires --journal)")
    p.add_argument("--metrics", default=None, metavar="PATH",
                   help="stream per-round / per-merge-event / per-eval "
                        "JSONL metrics rows to PATH live during the run "
                        "(flushed per event — tail it mid-run)")
    p.add_argument("--status-port", type=int, default=None,
                   help="serve a read-only JSON status endpoint on "
                        "127.0.0.1:PORT (0 = ephemeral; GET /status, "
                        "/events, /health) for the duration of the run")
    p.add_argument("--eval-every-merge", type=int, default=0,
                   help="async mode: evaluate the merged server state "
                        "every K merge events (accuracy-vs-server-version "
                        "staleness curves; 0 = off)")
    p.add_argument("--fault-plan", default=None, metavar="SPEC",
                   help="seeded fault injection: inline JSON ('{...}') or a "
                        "path to a JSON file with FaultPlan fields "
                        "(dropout_prob, straggler_prob, flaky_prob, ...)")
    p.add_argument("--threat-plan", default=None, metavar="SPEC",
                   help="seeded adversarial clients: inline JSON ('{...}') or "
                        "a path to a JSON file with ThreatPlan fields (seed, "
                        "byzantine_prob, attack ∈ {label_flip, backdoor, "
                        "sign_flip, gaussian, model_replacement}, ...)")
    p.add_argument("--aggregation-rule", default="fedavg",
                   choices=["fedavg", "median", "trimmed_mean", "krum",
                            "multi_krum", "norm_clip"],
                   help="server aggregation rule; fedavg is the historical "
                        "weighted average, the rest are Byzantine-robust "
                        "(see docs/threat-model.md)")
    p.add_argument("--trim-ratio", type=float, default=0.2,
                   help="fraction trimmed from each tail per coordinate for "
                        "--aggregation-rule trimmed_mean")
    p.add_argument("--krum-byzantine-f", type=int, default=1,
                   help="assumed Byzantine count f for krum/multi_krum "
                        "neighbourhood scoring")
    p.add_argument("--clip-norm", type=float, default=None,
                   help="update-delta L2 clipping radius for "
                        "--aggregation-rule norm_clip (default: adaptive "
                        "median of the round's delta norms)")
    p.add_argument("--client-timeout", type=float, default=None,
                   help="simulated seconds before the server gives up on a "
                        "sampled client (faulty clients exceeding it are "
                        "dropped)")
    p.add_argument("--max-client-retries", type=int, default=2,
                   help="bounded retries for flaky clients (exponential "
                        "backoff in simulated time)")
    p.add_argument("--min-clients-per-round", type=int, default=1,
                   help="abort a round (deterministically) when the fault "
                        "plan leaves fewer survivors")
    p.add_argument("--population-scheme", default="auto",
                   choices=["auto", "partition", "virtual"],
                   help="client shard derivation: partition = legacy global "
                        "pass (bit-identical to historical runs), virtual = "
                        "per-client counter-derived shards with no global "
                        "pass (any population size), auto = partition while "
                        "the population fits the dataset")
    p.add_argument("--client-materialisation", default="eager",
                   choices=["eager", "lazy"],
                   help="eager: build every client at init (legacy); lazy: "
                        "materialise on first touch into a bounded LRU — "
                        "bit-identical results either way")
    p.add_argument("--client-cache-size", type=int, default=None,
                   help="LRU capacity for --client-materialisation lazy "
                        "(default: O(cohort); eviction cannot affect "
                        "results)")
    p.add_argument("--samples-per-client", type=int, default=None,
                   help="virtual-scheme shard size (default: derived from "
                        "the dataset and population size)")
    p.add_argument("--availability-fraction", type=float, default=None,
                   help="fraction of rounds each client is available "
                        "(deterministic per-client duty cycle; default: "
                        "always available)")
    p.add_argument("--availability-period", type=int, default=8,
                   help="length in rounds of the availability duty cycle "
                        "for --availability-fraction")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(func=_cmd_train)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
