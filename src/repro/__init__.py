"""FedProphet reproduction (MLSys 2025, Tang et al.).

Memory-efficient federated adversarial training via robust and consistent
cascade learning — rebuilt from scratch on a NumPy deep-learning substrate
plus an analytic edge-hardware simulator.  See DESIGN.md for the system
inventory and EXPERIMENTS.md for the paper-vs-measured record.

Public entry points:

* :class:`repro.core.FedProphet` / :class:`repro.core.FedProphetConfig`
* baselines in :mod:`repro.baselines` (jFAT, HeteroFL-AT, FedDrop-AT,
  FedRolex-AT, FedDF-AT, FedET-AT, FedRBN)
* datasets in :mod:`repro.data`, models in :mod:`repro.models`,
  hardware simulation in :mod:`repro.hardware`.
"""

__version__ = "1.0.0"

from repro.core import FedProphet, FedProphetConfig
from repro.flsim import FLConfig

__all__ = ["FedProphet", "FedProphetConfig", "FLConfig", "__version__"]
