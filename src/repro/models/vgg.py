"""VGG-family builders (VGG11/13/16), cascade-decomposed.

The configs follow Simonyan & Zisserman (2014); ``width_mult`` scales every
channel count so the same topology runs at paper scale (for memory/FLOPs
analytics) and at NumPy-trainable scale (for accuracy experiments).  Each
"atom" is one conv layer together with any max-pool that immediately follows
it — matching the per-layer granularity of paper Table 7.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.models.atoms import Atom, CascadeModel
from repro.nn.activations import ReLU
from repro.nn.blocks import ConvBNReLU
from repro.nn.linear import Flatten, Linear
from repro.nn.module import Module, Sequential
from repro.nn.normalization import BatchNorm2d
from repro.nn.pooling import MaxPool2d

# 'M' denotes a 2x2 max-pool attached to the preceding conv atom.
VGG_CONFIGS: Dict[str, List[Union[int, str]]] = {
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg13": [64, 64, "M", 128, 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg16": [
        64, 64, "M",
        128, 128, "M",
        256, 256, 256, "M",
        512, 512, 512, "M",
        512, 512, 512, "M",
    ],
}


def _scaled(channels: int, width_mult: float) -> int:
    return max(1, int(round(channels * width_mult)))


def build_vgg(
    arch: str = "vgg16",
    num_classes: int = 10,
    in_shape: Tuple[int, int, int] = (3, 32, 32),
    width_mult: float = 1.0,
    classifier_width: int = 512,
    batch_norm: bool = True,
    rng: np.random.Generator | None = None,
    bn_cls=BatchNorm2d,
) -> CascadeModel:
    """Build a VGG variant as a :class:`CascadeModel`.

    The classifier is the paper's three-linear-layer tail; its hidden width
    is scaled by ``width_mult`` as well so narrow variants stay balanced.
    """
    if arch not in VGG_CONFIGS:
        raise ValueError(f"unknown VGG arch {arch!r}; options: {sorted(VGG_CONFIGS)}")
    rng = rng if rng is not None else np.random.default_rng(0)
    cfg = VGG_CONFIGS[arch]

    atoms: List[Atom] = []
    in_ch, h, w = in_shape
    conv_idx = 0
    i = 0
    while i < len(cfg):
        item = cfg[i]
        assert isinstance(item, int), "config must not start a group with 'M'"
        out_ch = _scaled(item, width_mult)
        conv_idx += 1
        layers: List[Module] = [
            ConvBNReLU(in_ch, out_ch, batch_norm=batch_norm, rng=rng, bn_cls=bn_cls)
        ]
        in_ch = out_ch
        i += 1
        if i < len(cfg) and cfg[i] == "M":
            # Skip the pool once the spatial size cannot halve (lets the
            # same topology run on sub-32px inputs for NumPy-scale tests).
            if h >= 2 and w >= 2:
                layers.append(MaxPool2d(2))
                h, w = h // 2, w // 2
            i += 1
        module = layers[0] if len(layers) == 1 else Sequential(*layers)
        atoms.append(Atom(name=f"conv{conv_idx}", module=module))

    hidden = _scaled(classifier_width, width_mult)
    feat = in_ch * h * w
    atoms.append(
        Atom(
            name="linear1",
            module=Sequential(Flatten(), Linear(feat, hidden, rng=rng), ReLU()),
        )
    )
    atoms.append(
        Atom(name="linear2", module=Sequential(Linear(hidden, hidden, rng=rng), ReLU()))
    )
    atoms.append(Atom(name="linear3", module=Linear(hidden, num_classes, rng=rng)))
    return CascadeModel(atoms, in_shape=in_shape, num_classes=num_classes, name=arch)
