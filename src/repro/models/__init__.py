"""Model zoo: cascade-decomposable VGG / ResNet / plain-CNN families.

Every architecture is expressed as a :class:`~repro.models.atoms.CascadeModel`
— an ordered list of "atoms" (the indivisible units of the paper's model
partitioner, Algorithm 1).  A VGG atom is a conv layer (with any directly
following pool); a ResNet atom is a whole residual block; classifier atoms
hold the flatten + linear tail.
"""

from repro.models.atoms import Atom, CascadeModel
from repro.models.vgg import build_vgg, VGG_CONFIGS
from repro.models.resnet import build_resnet, RESNET_CONFIGS
from repro.models.cnn import build_cnn
from repro.models.zoo import build_model, model_family, MODEL_FAMILIES

__all__ = [
    "Atom",
    "CascadeModel",
    "build_vgg",
    "build_resnet",
    "build_cnn",
    "build_model",
    "model_family",
    "VGG_CONFIGS",
    "RESNET_CONFIGS",
    "MODEL_FAMILIES",
]
