"""Small plain CNNs (CNN3/CNN4) — the paper's "small model" baselines.

Used in Table 1 (small vs. large model under FAT) and as the smallest
members of the knowledge-distillation model family (Appendix B.2).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.models.atoms import Atom, CascadeModel
from repro.nn.blocks import ConvBNReLU
from repro.nn.linear import Flatten, Linear
from repro.nn.module import Sequential
from repro.nn.normalization import BatchNorm2d
from repro.nn.pooling import MaxPool2d


def build_cnn(
    num_conv: int = 3,
    num_classes: int = 10,
    in_shape: Tuple[int, int, int] = (3, 32, 32),
    width_mult: float = 1.0,
    base_channels: int = 32,
    rng: np.random.Generator | None = None,
    bn_cls=BatchNorm2d,
) -> CascadeModel:
    """Build CNN-``num_conv``: stacked conv+pool atoms and a linear head.

    Channel counts double each conv layer starting from ``base_channels``,
    and each conv is followed by a 2x2 max-pool while spatial size permits.
    """
    if num_conv < 1:
        raise ValueError("num_conv must be >= 1")
    rng = rng if rng is not None else np.random.default_rng(0)
    atoms: List[Atom] = []
    in_ch, h, w = in_shape
    ch = max(1, int(round(base_channels * width_mult)))
    for i in range(num_conv):
        layers = [ConvBNReLU(in_ch, ch, rng=rng, bn_cls=bn_cls)]
        if h >= 2 and w >= 2:
            layers.append(MaxPool2d(2))
            h, w = h // 2, w // 2
        atoms.append(
            Atom(name=f"conv{i + 1}", module=Sequential(*layers) if len(layers) > 1 else layers[0])
        )
        in_ch = ch
        ch = ch * 2
    atoms.append(
        Atom(
            name="linear",
            module=Sequential(Flatten(), Linear(in_ch * h * w, num_classes, rng=rng)),
        )
    )
    return CascadeModel(
        atoms, in_shape=in_shape, num_classes=num_classes, name=f"cnn{num_conv}"
    )
