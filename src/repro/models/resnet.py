"""ResNet-family builders (ResNet10/18/34), cascade-decomposed.

The "atom" of a ResNet is a whole :class:`BasicBlock` (the skip connection
cannot be severed), plus a stem conv atom and a classifier atom — exactly
the granularity of paper Table 8.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.models.atoms import Atom, CascadeModel
from repro.nn.blocks import BasicBlock, ConvBNReLU
from repro.nn.linear import Flatten, Linear
from repro.nn.module import Sequential
from repro.nn.normalization import BatchNorm2d
from repro.nn.pooling import GlobalAvgPool2d, MaxPool2d

# Blocks per stage for each variant (BasicBlock only).
RESNET_CONFIGS: Dict[str, List[int]] = {
    "resnet10": [1, 1, 1, 1],
    "resnet18": [2, 2, 2, 2],
    "resnet34": [3, 4, 6, 3],
}

_STAGE_CHANNELS = [64, 128, 256, 512]


def _scaled(channels: int, width_mult: float) -> int:
    return max(1, int(round(channels * width_mult)))


def build_resnet(
    arch: str = "resnet34",
    num_classes: int = 256,
    in_shape: Tuple[int, int, int] = (3, 224, 224),
    width_mult: float = 1.0,
    rng: np.random.Generator | None = None,
    bn_cls=BatchNorm2d,
) -> CascadeModel:
    """Build a ResNet variant as a :class:`CascadeModel`.

    For large inputs (ImageNet-style, >= 64 px) the stem uses a 7x7 stride-2
    conv followed by a 3x3 stride-2 max-pool; for small inputs (CIFAR-style)
    it degrades to a 3x3 stride-1 conv, the standard CIFAR-ResNet stem.
    """
    if arch not in RESNET_CONFIGS:
        raise ValueError(f"unknown ResNet arch {arch!r}; options: {sorted(RESNET_CONFIGS)}")
    rng = rng if rng is not None else np.random.default_rng(0)
    blocks_per_stage = RESNET_CONFIGS[arch]

    atoms: List[Atom] = []
    stem_ch = _scaled(64, width_mult)
    _, h, _ = in_shape
    if h >= 64:
        stem = Sequential(
            ConvBNReLU(
                in_shape[0], stem_ch, kernel_size=7, stride=2, padding=3,
                rng=rng, bn_cls=bn_cls,
            ),
            MaxPool2d(3, stride=2, padding=1),
        )
    else:
        stem = ConvBNReLU(in_shape[0], stem_ch, kernel_size=3, stride=1, padding=1,
                          rng=rng, bn_cls=bn_cls)
    atoms.append(Atom(name="conv1", module=stem))

    in_ch = stem_ch
    block_idx = 0
    for stage, num_blocks in enumerate(blocks_per_stage):
        out_ch = _scaled(_STAGE_CHANNELS[stage], width_mult)
        for b in range(num_blocks):
            stride = 2 if (stage > 0 and b == 0) else 1
            block_idx += 1
            atoms.append(
                Atom(
                    name=f"block{block_idx}",
                    module=BasicBlock(in_ch, out_ch, stride=stride, rng=rng, bn_cls=bn_cls),
                )
            )
            in_ch = out_ch

    atoms.append(
        Atom(
            name="linear",
            module=Sequential(GlobalAvgPool2d(), Linear(in_ch, num_classes, rng=rng)),
        )
    )
    return CascadeModel(atoms, in_shape=in_shape, num_classes=num_classes, name=arch)
