"""Atoms and cascade models.

The paper partitions a backbone into cascaded modules whose unit of
granularity is the "atom": *"a layer or a block such that the backbone model
is constructed as a plain cascade of multiple atoms"* (§6.1).  This module
defines that abstraction and the full-model container built from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.module import Module, Sequential


@dataclass
class Atom:
    """One indivisible unit of the backbone cascade.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"conv3"`` or ``"block2"``);
        appears in partition tables (paper Tables 7–8).
    module:
        The computation, as a single :class:`Module`.
    out_shape:
        Per-sample output shape, e.g. ``(C, H, W)`` for feature maps or
        ``(F,)`` after the classifier head; filled in by
        :meth:`CascadeModel.infer_shapes`.
    """

    name: str
    module: Module
    out_shape: Tuple[int, ...] = field(default_factory=tuple)

    @property
    def feature_size(self) -> int:
        return int(np.prod(self.out_shape)) if self.out_shape else 0


class CascadeModel(Module):
    """A backbone expressed as a plain cascade of atoms.

    Behaves as a regular model (forward/backward over the whole chain) while
    exposing the structure FedProphet needs: slicing atom ranges into
    trainable :class:`Sequential` segments, and per-atom output shapes for
    sizing auxiliary heads and estimating memory.
    """

    def __init__(
        self,
        atoms: Sequence[Atom],
        in_shape: Tuple[int, ...],
        num_classes: int,
        name: str = "model",
    ):
        super().__init__()
        if not atoms:
            raise ValueError("a cascade model needs at least one atom")
        self.atoms: List[Atom] = list(atoms)
        self.in_shape = tuple(in_shape)
        self.num_classes = num_classes
        self.name = name
        for i, atom in enumerate(self.atoms):
            setattr(self, f"atom{i}", atom.module)
        self.infer_shapes()

    # -- structure ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.atoms)

    def infer_shapes(self) -> None:
        """Dry-run a single zero sample to record each atom's output shape."""
        from repro.nn.dtype import compute_dtype

        x = np.zeros((1,) + self.in_shape, dtype=compute_dtype())
        was_training = self.training
        self.eval()
        for atom in self.atoms:
            x = atom.module(x)
            atom.out_shape = tuple(x.shape[1:])
        if was_training:
            self.train()

    def segment(self, start: int, stop: int) -> Sequential:
        """A view over atoms ``[start, stop)`` sharing the same parameters."""
        if not (0 <= start < stop <= len(self.atoms)):
            raise IndexError(f"invalid atom range [{start}, {stop})")
        return Sequential(*(a.module for a in self.atoms[start:stop]))

    def feature_shape(self, atom_index: int) -> Tuple[int, ...]:
        """Output shape after atom ``atom_index`` (-1 for the raw input)."""
        if atom_index < 0:
            return self.in_shape
        return self.atoms[atom_index].out_shape

    def feature_size(self, atom_index: int) -> int:
        return int(np.prod(self.feature_shape(atom_index)))

    # -- model behaviour ------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        for atom in self.atoms:
            x = atom.module(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for atom in reversed(self.atoms):
            grad_out = atom.module.backward(grad_out)
        return grad_out

    def forward_until(self, x: np.ndarray, stop: int) -> np.ndarray:
        """Forward through atoms ``[0, stop)`` only (the fixed prefix)."""
        for atom in self.atoms[:stop]:
            x = atom.module(x)
        return x

    def atom_names(self) -> List[str]:
        return [a.name for a in self.atoms]
