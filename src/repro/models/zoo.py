"""Model registry and the per-dataset model families the baselines draw from.

Knowledge-distillation FL (paper Appendix B.2) lets each client pick the
largest model from a family that fits its memory:

* CIFAR-10 family:   {CNN3, VGG11, VGG13, VGG16}
* Caltech-256 family: {CNN4, ResNet10, ResNet18, ResNet34}

``build_model`` is the single entry point the experiments use.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.models.atoms import CascadeModel
from repro.models.cnn import build_cnn
from repro.models.resnet import build_resnet
from repro.models.vgg import build_vgg
from repro.nn.normalization import BatchNorm2d


def build_model(
    name: str,
    num_classes: int,
    in_shape: Tuple[int, int, int],
    width_mult: float = 1.0,
    rng: np.random.Generator | None = None,
    bn_cls=BatchNorm2d,
) -> CascadeModel:
    """Build any registered architecture by name."""
    name = name.lower()
    if name.startswith("vgg"):
        return build_vgg(
            name, num_classes=num_classes, in_shape=in_shape,
            width_mult=width_mult, rng=rng, bn_cls=bn_cls,
        )
    if name.startswith("resnet"):
        return build_resnet(
            name, num_classes=num_classes, in_shape=in_shape,
            width_mult=width_mult, rng=rng, bn_cls=bn_cls,
        )
    if name.startswith("cnn"):
        return build_cnn(
            int(name[3:]), num_classes=num_classes, in_shape=in_shape,
            width_mult=width_mult, rng=rng, bn_cls=bn_cls,
        )
    raise ValueError(f"unknown model {name!r}")


# Smallest-to-largest families used by knowledge-distillation baselines.
MODEL_FAMILIES: Dict[str, List[str]] = {
    "cifar10": ["cnn3", "vgg11", "vgg13", "vgg16"],
    "caltech256": ["cnn4", "resnet10", "resnet18", "resnet34"],
}


def model_family(dataset: str) -> List[str]:
    """Model family (smallest first) for a dataset key."""
    if dataset not in MODEL_FAMILIES:
        raise ValueError(f"no model family for dataset {dataset!r}")
    return list(MODEL_FAMILIES[dataset])
