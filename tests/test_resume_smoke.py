"""Kill/resume smoke as a pytest suite (satellite of the replay engine).

The orchestration lives in ``scripts/resume_smoke.py`` (which doubles as
the ``--child`` subprocess entry point); this module owns the assertions
so a CI failure produces pytest diffs instead of a bare script exit code.

Marked ``slow``: one uninterrupted reference run plus a subprocess that
is SIGKILLed mid-flight and resumed (~4 s total), heavier than the unit
suites but still tier-1.
"""

import os
import sys

import numpy as np
import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "scripts")
)

import resume_smoke  # noqa: E402

from repro.flsim import RunJournal  # noqa: E402
from repro.flsim.replay import replay_run  # noqa: E402


@pytest.fixture(scope="module")
def killed_run(tmp_path_factory):
    """Reference run + a SIGKILLed child journal + its resumed experiment."""
    ref_state, ref_alphas = resume_smoke.run_reference()
    journal = str(tmp_path_factory.mktemp("resume-smoke") / "run.jsonl")
    killed = resume_smoke.spawn_and_kill(journal)
    resumed = resume_smoke.build_experiment(journal, checkpoint_every=1)
    resumed.resume(journal)
    resumed.close()
    yield {
        "ref_state": ref_state,
        "ref_alphas": ref_alphas,
        "journal": journal,
        "killed": killed,
        "resumed": resumed,
    }


@pytest.mark.slow
class TestKillResume:
    def test_child_was_killed_mid_run(self, killed_run):
        # Informational on slow machines: if the child outran the poll
        # loop the remaining assertions still verify resume-from-last-
        # checkpoint, but the scenario is strictly weaker — surface it.
        if not killed_run["killed"]:  # pragma: no cover - timing dependent
            pytest.skip("child finished before SIGKILL landed; resume still checked")

    def test_resumed_weights_bit_identical(self, killed_run):
        final = killed_run["resumed"].global_model.state_dict()
        for key, expected in killed_run["ref_state"].items():
            np.testing.assert_array_equal(expected, final[key], err_msg=key)

    def test_resumed_history_complete_and_monotone(self, killed_run):
        history = killed_run["resumed"].history
        assert [r.round for r in history] == list(range(resume_smoke.ROUNDS))
        times = [r.sim_time_s for r in history]
        assert times == sorted(times)

    def test_resumed_merge_log_matches_reference(self, killed_run):
        alphas = [e.alpha for e in killed_run["resumed"].async_log]
        assert alphas == killed_run["ref_alphas"]

    def test_journal_lifecycle(self, killed_run):
        kinds = [e["kind"] for e in RunJournal.read(killed_run["journal"])]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        if killed_run["killed"]:
            assert "resume" in kinds

    def test_resumed_journal_replays_bit_identically(self, killed_run):
        # The resumed journal's canonical stream (resume folded onto its
        # checkpoint) must replay bit-for-bit — the strongest equivalence
        # check the engine offers, closing the loop on the kill/resume
        # scenario.
        report = replay_run(
            killed_run["journal"],
            lambda: resume_smoke.build_experiment(),
        )
        assert report.resumes_folded == (1 if killed_run["killed"] else 0)
        assert report.rounds == resume_smoke.ROUNDS
        assert report.events_verified > 0
