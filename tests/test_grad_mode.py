"""Input-grad-only backward: the no_param_grads scope and param_grads flag.

The correctness contract: skipping parameter gradients must not change
the *input* gradient (which is all attacks consume), must leave
``Parameter.grad`` untouched, and must be loud — not silently wrong —
when a caller asks for parameter gradients after an input-grad-only
forward.
"""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Linear,
    Sequential,
    attack_grad_scope,
    fast_path_enabled,
    no_param_grads,
    param_grads_enabled,
    set_fast_path,
)


def _grads_all_zero(layer):
    return all(np.all(p.grad == 0) for p in layer.parameters())


PARAM_LAYERS = [
    ("Conv2d", lambda: Conv2d(2, 3, 3, padding=1, rng=np.random.default_rng(0)), (2, 2, 5, 5)),
    ("Linear", lambda: Linear(6, 4, rng=np.random.default_rng(0)), (3, 6)),
    ("BatchNorm2d", lambda: BatchNorm2d(3), (4, 3, 4, 4)),
]


@pytest.mark.parametrize("name,factory,shape", PARAM_LAYERS, ids=[c[0] for c in PARAM_LAYERS])
class TestInputGradOnly:
    def test_scope_skips_param_grads_but_matches_input_grad(self, name, factory, shape):
        rng = np.random.default_rng(1)
        x = rng.normal(size=shape).astype(np.float32)
        g = rng.normal(size=factory()(x.copy()).shape).astype(np.float32)

        full = factory()
        full(x)
        ref = full.backward(g)
        assert not _grads_all_zero(full)

        lean = factory()
        with no_param_grads():
            lean(x)
            got = lean.backward(g)
        np.testing.assert_array_equal(got, ref)
        assert _grads_all_zero(lean)

    def test_explicit_param_grads_false_kwarg(self, name, factory, shape):
        """The per-call API: backward(g, param_grads=False) outside any scope."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=shape).astype(np.float32)
        layer = factory()
        out = layer(x)
        g = rng.normal(size=out.shape).astype(np.float32)
        ref_layer = factory()
        ref_layer(x)
        ref = ref_layer.backward(g)
        got = layer.backward(g, param_grads=False)
        np.testing.assert_array_equal(got, ref)
        assert _grads_all_zero(layer)

    def test_param_grads_after_lean_forward_raises(self, name, factory, shape):
        """An input-grad-only forward cannot serve a full backward."""
        if name == "BatchNorm2d":
            layer = factory()
            layer.eval()  # train-mode BN keeps x_hat for the input grad
        else:
            layer = factory()
        x = np.random.default_rng(3).normal(size=shape).astype(np.float32)
        with no_param_grads():
            out = layer(x)
        with pytest.raises(RuntimeError, match="input-grad-only"):
            layer.backward(np.ones_like(out))


def test_scope_nests_and_restores():
    assert param_grads_enabled()
    with no_param_grads():
        assert not param_grads_enabled()
        with no_param_grads():
            assert not param_grads_enabled()
        assert not param_grads_enabled()
    assert param_grads_enabled()


def test_fast_path_switch_gates_attack_scope():
    assert fast_path_enabled()
    try:
        set_fast_path(False)
        with attack_grad_scope():
            # disabled fast path: attacks behave like the seed (full grads)
            assert param_grads_enabled()
        set_fast_path(True)
        with attack_grad_scope():
            assert not param_grads_enabled()
    finally:
        set_fast_path(True)


def test_composite_under_scope_matches_full_input_grad():
    rng = np.random.default_rng(4)
    model = Sequential(
        Conv2d(1, 2, 3, padding=1, rng=rng),
        BatchNorm2d(2),
        Conv2d(2, 2, 3, padding=1, rng=rng),
    )
    model.eval()
    x = rng.normal(size=(2, 1, 4, 4)).astype(np.float32)
    out = model(x)
    g = rng.normal(size=out.shape).astype(np.float32)
    ref = model.backward(g)
    model.zero_grad()
    with no_param_grads():
        model(x)
        lean = model.backward(g)
    np.testing.assert_allclose(lean, ref, rtol=1e-6, atol=1e-7)
    assert all(np.all(p.grad == 0) for p in model.parameters())
