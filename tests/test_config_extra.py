"""Configuration-surface tests: defaults, derived values, paper values."""

import pytest

from repro.core import FedProphetConfig
from repro.flsim import FLConfig


class TestFLConfigDefaults:
    def test_paper_defaults(self):
        """FLConfig defaults are the paper's §B.4 hyperparameters."""
        cfg = FLConfig()
        assert cfg.num_clients == 100
        assert cfg.clients_per_round == 10
        assert cfg.local_iters == 30
        assert cfg.batch_size == 64
        assert cfg.lr == pytest.approx(0.005)
        assert cfg.lr_decay == pytest.approx(0.994)
        assert cfg.momentum == pytest.approx(0.9)
        assert cfg.weight_decay == pytest.approx(1e-4)
        assert cfg.train_pgd_steps == 10
        assert cfg.eval_pgd_steps == 20
        assert cfg.eps0 == pytest.approx(8 / 255)


class TestFedProphetConfigDefaults:
    def test_paper_defaults(self):
        cfg = FedProphetConfig()
        assert cfg.mu == pytest.approx(1e-5)
        assert cfg.gamma == pytest.approx(0.05)
        assert cfg.delta_alpha == pytest.approx(0.1)
        assert cfg.alpha_init == pytest.approx(0.3)
        assert cfg.rounds_per_module == 500
        assert cfg.patience == 50
        assert cfg.use_apa and cfg.use_dma

    def test_attack_steps_features_falls_back_to_train_steps(self):
        cfg = FedProphetConfig(train_pgd_steps=7)
        assert cfg.attack_steps_features == 7
        cfg2 = FedProphetConfig(train_pgd_steps=7, feature_pgd_steps=3)
        assert cfg2.attack_steps_features == 3

    def test_inherits_fl_validation(self):
        with pytest.warns(RuntimeWarning, match="clamping"):
            cfg = FedProphetConfig(num_clients=2, clients_per_round=5)
        assert cfg.clients_per_round == 2
