"""Tests for utilities: RNG streams, serialization, and the CLI."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.models import build_cnn
from repro.utils import (
    format_table,
    load_model,
    load_state,
    save_model,
    save_state,
    seeded_rng,
    spawn_rngs,
)


class TestRng:
    def test_seeded_rng_reproducible(self):
        a = seeded_rng(5).normal(size=4)
        b = seeded_rng(5).normal(size=4)
        np.testing.assert_array_equal(a, b)

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(0, 3)
        assert len(rngs) == 3
        draws = [r.normal(size=4) for r in rngs]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_spawn_rngs_reproducible(self):
        a = spawn_rngs(7, 2)[1].normal(size=3)
        b = spawn_rngs(7, 2)[1].normal(size=3)
        np.testing.assert_array_equal(a, b)


class TestSerialization:
    def test_state_roundtrip(self, tmp_path):
        state = {"a.weight": np.random.default_rng(0).normal(size=(3, 2)), "b": np.arange(4.0)}
        path = str(tmp_path / "ckpt.npz")
        save_state(path, state)
        loaded = load_state(path)
        assert set(loaded) == set(state)
        for k in state:
            np.testing.assert_array_equal(loaded[k], state[k])

    def test_model_roundtrip(self, tmp_path):
        m1 = build_cnn(2, 4, (3, 8, 8), base_channels=4, rng=np.random.default_rng(0))
        m2 = build_cnn(2, 4, (3, 8, 8), base_channels=4, rng=np.random.default_rng(1))
        path = str(tmp_path / "model.npz")
        save_model(path, m1)
        load_model(path, m2)
        x = np.random.default_rng(2).normal(size=(2, 3, 8, 8))
        m1.eval()
        m2.eval()
        np.testing.assert_allclose(m1(x), m2(x))

    def test_save_creates_directories(self, tmp_path):
        path = str(tmp_path / "nested" / "dir" / "s.npz")
        save_state(path, {"x": np.zeros(2)})
        assert load_state(path)["x"].shape == (2,)


class TestCLI:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["partition", "--model", "vgg11"])
        assert args.command == "partition"

    def test_partition_command_runs(self, capsys):
        rc = main([
            "partition", "--model", "cnn3", "--image-size", "16",
            "--batch-size", "8", "--r-min-fraction", "0.5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "modules" in out and "MemReq" in out

    def test_partition_low_bit_fewer_or_equal_modules(self, capsys):
        main(["partition", "--model", "vgg16", "--r-min-mb", "60"])
        fp32 = capsys.readouterr().out
        main(["partition", "--model", "vgg16", "--r-min-mb", "60", "--bytes-per-scalar", "2"])
        fp16 = capsys.readouterr().out

        def count(out):
            return int(out.split(" modules")[0].rsplit(" ", 1)[-1])

        assert count(fp16) <= count(fp32)

    def test_devices_command_runs(self, capsys):
        rc = main(["devices", "--pool", "cifar10", "--samples", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "TX2" in out and "avail mem" in out

    def test_train_command_tiny_run(self, capsys):
        rc = main([
            "train", "--method", "jfat", "--rounds", "1", "--clients", "4",
            "--clients-per-round", "2", "--local-iters", "1",
            "--train-per-class", "10", "--pgd-steps", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "clean" in out and "PGD" in out


class TestLowBitMemoryModel:
    def test_half_precision_halves_footprint(self):
        from repro.hardware import MemoryModel

        m = build_cnn(2, 4, (3, 8, 8), base_channels=4, rng=np.random.default_rng(0))
        fp32 = MemoryModel(batch_size=8, bytes_per_scalar=4).bytes_for(m, (3, 8, 8))
        fp16 = MemoryModel(batch_size=8, bytes_per_scalar=2).bytes_for(m, (3, 8, 8))
        assert fp16 * 2 == fp32

    def test_validation(self):
        from repro.hardware import MemoryModel

        with pytest.raises(ValueError):
            MemoryModel(batch_size=0)
        with pytest.raises(ValueError):
            MemoryModel(bytes_per_scalar=0)
