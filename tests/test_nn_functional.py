"""Tests for im2col/col2im and helpers."""

import numpy as np
import pytest

from repro.nn.functional import col2im, conv_output_size, im2col, one_hot


def test_conv_output_size_basic():
    assert conv_output_size(32, 3, 1, 1) == 32
    assert conv_output_size(32, 2, 2, 0) == 16
    assert conv_output_size(7, 3, 2, 1) == 4


def test_conv_output_size_invalid():
    with pytest.raises(ValueError):
        conv_output_size(1, 3, 1, 0)


def test_im2col_shapes():
    x = np.arange(2 * 3 * 5 * 5, dtype=float).reshape(2, 3, 5, 5)
    cols, oh, ow = im2col(x, 3, 3, 1, 1)
    assert (oh, ow) == (5, 5)
    assert cols.shape == (2, 3 * 9, 25)


def test_im2col_values_identity_kernel():
    """A 1x1 kernel with stride 1 is just a reshape."""
    x = np.random.default_rng(0).normal(size=(2, 4, 3, 3))
    cols, oh, ow = im2col(x, 1, 1, 1, 0)
    np.testing.assert_allclose(cols, x.reshape(2, 4, 9))


def test_im2col_window_content():
    x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
    cols, oh, ow = im2col(x, 2, 2, 2, 0)
    assert (oh, ow) == (2, 2)
    # first window is the top-left 2x2 patch
    np.testing.assert_array_equal(cols[0, :, 0], [0, 1, 4, 5])
    np.testing.assert_array_equal(cols[0, :, 3], [10, 11, 14, 15])


def test_col2im_is_adjoint_of_im2col():
    """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
    rng = np.random.default_rng(1)
    x = rng.normal(size=(2, 3, 6, 6))
    for kh, kw, s, p in [(3, 3, 1, 1), (2, 2, 2, 0), (3, 3, 2, 1)]:
        cols, _, _ = im2col(x, kh, kw, s, p)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, kh, kw, s, p)).sum())
        assert abs(lhs - rhs) < 1e-8


def test_col2im_accumulates_overlaps():
    x_shape = (1, 1, 3, 3)
    cols = np.ones((1, 4, 4))  # 2x2 kernel, stride 1 -> 2x2 output positions
    out = col2im(cols, x_shape, 2, 2, 1, 0)
    # centre pixel is covered by all four windows
    assert out[0, 0, 1, 1] == 4.0
    assert out[0, 0, 0, 0] == 1.0


def test_one_hot():
    oh = one_hot(np.array([0, 2, 1]), 3)
    np.testing.assert_array_equal(oh, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])


def test_one_hot_rejects_2d():
    with pytest.raises(ValueError):
        one_hot(np.zeros((2, 2), dtype=int), 3)
