"""Additional edge cases across the FL engine and coordinator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FedProphet, FedProphetConfig
from repro.core.apa import AdaptivePerturbationAdjustment
from repro.data import DataLoader, make_cifar10_like
from repro.data.dataset import ArrayDataset
from repro.models import build_cnn


def _task():
    return make_cifar10_like(image_size=8, train_per_class=20, test_per_class=8, seed=0)


def _builder(rng):
    return build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng)


class TestDataLoaderEpochs:
    def test_fresh_permutation_each_epoch(self):
        ds = ArrayDataset(np.arange(20).reshape(20, 1).astype(float), np.arange(20))
        loader = DataLoader(ds, batch_size=20, shuffle=True, rng=np.random.default_rng(0))
        first = next(iter(loader))[1]
        second = next(iter(loader))[1]
        assert not np.array_equal(first, second)

    def test_no_shuffle_preserves_order(self):
        ds = ArrayDataset(np.arange(6).reshape(6, 1).astype(float), np.arange(6))
        loader = DataLoader(ds, batch_size=2, shuffle=False)
        ys = np.concatenate([y for _, y in loader])
        np.testing.assert_array_equal(ys, np.arange(6))


class TestProphetBudget:
    def test_run_respects_total_round_cap(self):
        cfg = FedProphetConfig(
            num_clients=4, clients_per_round=2, local_iters=1, batch_size=8,
            rounds=3, rounds_per_module=10, patience=10, train_pgd_steps=1,
            eval_every=0, r_min_fraction=0.4, val_samples=16, val_pgd_steps=1,
            seed=0,
        )
        fed = FedProphet(_task(), _builder, cfg)
        history = fed.run()
        assert len(history) == 3  # cap hit before module budgets exhaust

    def test_explicit_rounds_argument_overrides_config(self):
        cfg = FedProphetConfig(
            num_clients=4, clients_per_round=2, local_iters=1, batch_size=8,
            rounds=50, rounds_per_module=2, patience=5, train_pgd_steps=1,
            eval_every=0, r_min_fraction=0.4, val_samples=16, val_pgd_steps=1,
            seed=0,
        )
        fed = FedProphet(_task(), _builder, cfg)
        history = fed.run(rounds=2)
        assert len(history) == 2

    def test_rbyte_budget_accepts_absolute_rmin(self):
        cfg = FedProphetConfig(
            num_clients=4, clients_per_round=2, local_iters=1, batch_size=8,
            rounds=1, rounds_per_module=1, patience=1, train_pgd_steps=1,
            eval_every=0, r_min_bytes=10**6, val_samples=16, val_pgd_steps=1,
            seed=0,
        )
        fed = FedProphet(_task(), _builder, cfg)
        assert fed.r_min == 10**6


@given(
    seed=st.integers(0, 2**31 - 1),
    n_updates=st.integers(1, 30),
)
@settings(max_examples=25, deadline=None)
def test_apa_alpha_always_within_bounds(seed, n_updates):
    """However noisy the validation accuracies, APA's α stays clamped."""
    rng = np.random.default_rng(seed)
    apa = AdaptivePerturbationAdjustment(alpha_min=0.05, alpha_max=2.0)
    apa.start_module(
        base_magnitude=float(rng.uniform(0.1, 5.0)),
        prev_clean_acc=float(rng.uniform(0.1, 1.0)),
        prev_adv_acc=float(rng.uniform(0.0, 1.0)),
    )
    for _ in range(n_updates):
        apa.update(float(rng.uniform(0, 1)), float(rng.uniform(0, 1)))
        assert 0.05 - 1e-12 <= apa.alpha <= 2.0 + 1e-12
        assert np.isfinite(apa.epsilon)


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_prophet_eps_star_nonnegative(seed):
    """Perturbation-magnitude collection never goes negative, whatever the
    client data looks like."""
    from repro.core.cascade import measure_output_perturbation
    from repro.core.heads import AuxHead

    rng = np.random.default_rng(seed)
    model = _builder(np.random.default_rng(seed))
    ds = ArrayDataset(
        np.clip(rng.normal(0.5, 0.3, size=(16, 3, 8, 8)), 0, 1),
        rng.integers(0, 10, size=16),
    )
    head = AuxHead(model.feature_shape(0), 10, rng=rng)
    v = measure_output_perturbation(
        model, 0, 1, head, ds, mu=1e-5, eps0=8 / 255, eps_feature=0.0,
        attack_steps=1, batch_size=8, rng=rng,
    )
    assert v >= 0.0 and np.isfinite(v)
