"""Crash tolerance: run journal, checkpoint/resume, seeded fault injection.

Load-bearing properties (PR 6):

* a run interrupted at a round boundary and resumed from its journal's
  last checkpoint produces **bit-identical** final weights, history, and
  merge-event log to the uninterrupted run — in sync, async, and
  ``pipeline_depth>=2`` modes, resuming on any backend at any worker
  count (the checkpoint stores no execution-engine state);
* the journal is an append-only JSONL log that tolerates a torn final
  line (the SIGKILL artefact) and refuses malformed lines elsewhere;
* fault injection is deterministic: the same :class:`FaultPlan` seed
  yields bit-identical surviving-cohort aggregation across backends and
  worker counts, and a disabled plan reproduces the fault-free engine
  exactly (the fault RNG is a separate stream);
* rounds degrade gracefully: dropped clients reweight the aggregation
  over the survivors, stragglers/retries stretch the simulated clock,
  and a cohort below ``min_clients_per_round`` aborts the round
  deterministically without touching the model.
"""

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.baselines import JointFAT
from repro.core import FedProphet, FedProphetConfig
from repro.data import make_cifar10_like
from repro.flsim import (
    CheckpointError,
    FaultPlan,
    FLConfig,
    JournalError,
    RoundExecutor,
    RunJournal,
    read_checkpoint,
)
from repro.hardware import DeviceSampler, device_pool
from repro.models import build_cnn

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _task():
    return make_cifar10_like(image_size=8, train_per_class=20, test_per_class=10, seed=0)


def _builder(rng):
    return build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng)


def _sampler():
    return DeviceSampler(device_pool("cifar10"), "unbalanced")


def _cfg(cls=FLConfig, **overrides):
    defaults = dict(
        num_clients=5, clients_per_round=3, local_iters=2, batch_size=8,
        lr=0.02, rounds=5, train_pgd_steps=2, eval_pgd_steps=2,
        eval_every=0, eval_max_samples=24, seed=0,
    )
    if cls is FedProphetConfig:
        defaults.update(rounds_per_module=2, patience=5, r_min_fraction=0.4,
                        val_samples=16, val_pgd_steps=2)
    defaults.update(overrides)
    return cls(**defaults)


def _state(exp):
    return {k: v.copy() for k, v in exp.global_model.state_dict().items()}


def _assert_states_equal(a, b, label=""):
    assert set(a) == set(b)
    for k in a:
        np.testing.assert_array_equal(a[k], b[k], err_msg=f"{label}{k}")


def _assert_runs_equal(ref, exp):
    _assert_states_equal(_state(ref), _state(exp))
    assert len(ref.history) == len(exp.history)
    for x, y in zip(ref.history, exp.history):
        assert (x.round, x.sim_time_s, x.compute_s, x.access_s, x.aborted) == (
            y.round, y.sim_time_s, y.compute_s, y.access_s, y.aborted
        )
        if x.eval is None:
            assert y.eval is None
        else:
            assert x.eval.as_dict() == y.eval.as_dict()
    assert ref.async_log == exp.async_log


# ---------------------------------------------------------------------------
# Journal format
# ---------------------------------------------------------------------------


class TestRunJournal:
    def test_append_and_read_round_trip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        journal = RunJournal.create(path)
        journal.append("run_start", fingerprint="abc", rounds=3)
        journal.append("round", round=0, sim_time_s=1.5)
        journal.close()
        events = RunJournal.read(path)
        assert [e["kind"] for e in events] == ["run_start", "round"]
        assert [e["seq"] for e in events] == [0, 1]
        assert events[1]["sim_time_s"] == 1.5

    def test_torn_final_line_tolerated(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        journal = RunJournal.create(path)
        journal.append("run_start", fingerprint="abc")
        journal.close()
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"seq": 1, "kind": "rou')  # SIGKILL mid-write
        events = RunJournal.read(path)
        assert [e["kind"] for e in events] == ["run_start"]

    def test_malformed_middle_line_rejected(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w", encoding="utf-8") as f:
            f.write('{"seq": 0, "kind": "run_start"}\nnot json\n{"seq": 2}\n')
        with pytest.raises(JournalError, match="malformed"):
            RunJournal.read(path)

    def test_seq_gap_mid_file_rejected(self, tmp_path):
        # A torn *middle* page (crashed overwrite, disk corruption) can
        # leave valid JSON with a hole in the seq chain — the reader must
        # notice even though every line parses.
        path = str(tmp_path / "run.jsonl")
        with open(path, "w", encoding="utf-8") as f:
            f.write('{"seq": 0, "kind": "run_start"}\n')
            f.write('{"seq": 2, "kind": "round", "round": 1}\n')
        with pytest.raises(JournalError, match="seq 2, expected 1"):
            RunJournal.read(path)

    def test_seq_repeat_mid_file_rejected(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w", encoding="utf-8") as f:
            f.write('{"seq": 0, "kind": "run_start"}\n')
            f.write('{"seq": 0, "kind": "round"}\n')
        with pytest.raises(JournalError, match="seq 0, expected 1"):
            RunJournal.read(path)

    def test_missing_seq_rejected(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w", encoding="utf-8") as f:
            f.write('{"kind": "run_start"}\n')
        with pytest.raises(JournalError, match="seq None, expected 0"):
            RunJournal.read(path)

    def test_resume_refuses_corrupt_journal(self, tmp_path):
        # resume_open reads the journal to continue the seq counter, so a
        # mid-file hole must refuse the resume cleanly (no silent append
        # past corruption) while leaving the file untouched.
        path = str(tmp_path / "run.jsonl")
        with open(path, "w", encoding="utf-8") as f:
            f.write('{"seq": 0, "kind": "run_start"}\n')
            f.write('{"seq": 5, "kind": "round"}\n')
        before = open(path, encoding="utf-8").read()
        with pytest.raises(JournalError, match="mid-file corruption"):
            RunJournal.resume_open(path)
        assert open(path, encoding="utf-8").read() == before

    def test_resume_open_continues_seq(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        journal = RunJournal.create(path)
        journal.append("run_start")
        journal.append("round", round=0)
        journal.close()
        journal = RunJournal.resume_open(path)
        journal.append("resume", next_round=1)
        journal.close()
        assert [e["seq"] for e in RunJournal.read(path)] == [0, 1, 2]

    def test_resume_open_requires_file(self, tmp_path):
        with pytest.raises(JournalError, match="not found"):
            RunJournal.resume_open(str(tmp_path / "missing.jsonl"))

    def test_run_journal_records_lifecycle(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        exp = JointFAT(_task(), _builder, _cfg(rounds=2, eval_every=2,
                                               journal_path=path))
        exp.run()
        exp.close()
        kinds = [e["kind"] for e in RunJournal.read(path)]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert kinds.count("sample") == 2
        assert kinds.count("round") == 2
        assert "eval" in kinds


# ---------------------------------------------------------------------------
# Checkpoint / resume bit-identity
# ---------------------------------------------------------------------------

MODES = [
    pytest.param(dict(), id="sync"),
    pytest.param(dict(aggregation_mode="async", max_staleness=2), id="async"),
    pytest.param(
        dict(aggregation_mode="async", max_staleness=2, pipeline_depth=2),
        id="pipeline2",
    ),
]

RESUME_ENGINES = [("serial", None), ("thread", 2), ("thread", 4)] + (
    [("process", 2)] if HAS_FORK else []
)


class TestCheckpointResume:
    @pytest.mark.parametrize("mode", MODES)
    def test_resume_is_bit_identical(self, tmp_path, mode):
        ref = JointFAT(_task(), _builder, _cfg(**mode))
        ref.run()
        ref.close()

        path = str(tmp_path / "run.jsonl")
        interrupted = JointFAT(
            _task(), _builder, _cfg(journal_path=path, checkpoint_every=2, **mode)
        )
        interrupted.run(rounds=3)  # dies after round 3; checkpoint at round 2
        interrupted.close()

        resumed = JointFAT(
            _task(), _builder, _cfg(journal_path=path, checkpoint_every=2, **mode)
        )
        resumed.resume(path)
        _assert_runs_equal(ref, resumed)
        resumed.close()
        events = RunJournal.read(path)
        kinds = [e["kind"] for e in events]
        assert "resume" in kinds and kinds[-1] == "run_end"

    @pytest.mark.parametrize("backend,workers", RESUME_ENGINES)
    def test_resume_on_any_backend(self, tmp_path, backend, workers):
        """The checkpoint carries no engine state: resume anywhere."""
        mode = dict(aggregation_mode="async", max_staleness=2, pipeline_depth=2)
        ref = JointFAT(_task(), _builder, _cfg(**mode))
        ref.run()
        ref.close()

        path = str(tmp_path / "run.jsonl")
        interrupted = JointFAT(
            _task(), _builder, _cfg(journal_path=path, checkpoint_every=2, **mode)
        )
        interrupted.run(rounds=3)
        interrupted.close()

        resumed = JointFAT(
            _task(), _builder,
            _cfg(journal_path=path, checkpoint_every=2,
                 executor_backend=backend, round_parallelism=workers, **mode),
        )
        resumed.resume(path)
        _assert_runs_equal(ref, resumed)
        resumed.close()

    def test_resume_without_checkpoint_replays_from_scratch(self, tmp_path):
        ref = JointFAT(_task(), _builder, _cfg(rounds=3))
        ref.run()
        ref.close()

        path = str(tmp_path / "run.jsonl")
        interrupted = JointFAT(_task(), _builder, _cfg(rounds=3, journal_path=path))
        interrupted.run(rounds=1)  # no checkpoint_every: journal only
        interrupted.close()

        resumed = JointFAT(_task(), _builder, _cfg(rounds=3, journal_path=path))
        resumed.resume(path)
        _assert_runs_equal(ref, resumed)
        resumed.close()

    def test_checkpoint_file_is_valid_and_atomic(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        exp = JointFAT(_task(), _builder,
                       _cfg(rounds=2, journal_path=path, checkpoint_every=1))
        exp.run()
        exp.close()
        payload = read_checkpoint(path + ".ckpt")
        assert payload["next_round"] == 2
        assert payload["mode"] == "sync"
        assert not [p for p in os.listdir(str(tmp_path)) if p.endswith(".tmp")]

    def test_unreadable_checkpoint_raises(self, tmp_path):
        bad = str(tmp_path / "bad.ckpt")
        with open(bad, "wb") as f:
            f.write(b"garbage")
        with pytest.raises(CheckpointError):
            read_checkpoint(bad)

    def test_fingerprint_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        exp = JointFAT(_task(), _builder,
                       _cfg(journal_path=path, checkpoint_every=2))
        exp.run(rounds=3)
        exp.close()
        other = JointFAT(_task(), _builder,
                         _cfg(lr=0.05, journal_path=path, checkpoint_every=2))
        with pytest.raises(JournalError, match="fingerprint"):
            other.resume(path)
        other.close()

    def test_nonsemantic_field_change_allowed(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        exp = JointFAT(_task(), _builder,
                       _cfg(journal_path=path, checkpoint_every=2))
        exp.run(rounds=3)
        exp.close()
        resumed = JointFAT(
            _task(), _builder,
            _cfg(journal_path=path, checkpoint_every=2,
                 executor_backend="thread", round_parallelism=2),
        )
        resumed.resume(path)  # no JournalError: backend is non-semantic
        assert len(resumed.history) == 5
        resumed.close()

    def test_resume_requires_fresh_experiment(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        exp = JointFAT(_task(), _builder,
                       _cfg(journal_path=path, checkpoint_every=2))
        exp.run(rounds=3)
        with pytest.raises(RuntimeError, match="fresh"):
            exp.resume(path)
        exp.close()

    def test_fedprophet_refuses_resume_and_checkpointing(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with pytest.raises(ValueError, match="checkpoint"):
            FedProphet(
                _task(), _builder,
                _cfg(FedProphetConfig, journal_path=path, checkpoint_every=1),
            )
        exp = FedProphet(_task(), _builder, _cfg(FedProphetConfig))
        with pytest.raises(RuntimeError, match="resume"):
            exp.resume(path)
        exp.close()

    def test_checkpoint_every_requires_journal(self):
        with pytest.raises(ValueError, match="journal_path"):
            _cfg(checkpoint_every=2)

    def test_fedprophet_journals_its_cascade_loop(self, tmp_path):
        path = str(tmp_path / "prophet.jsonl")
        exp = FedProphet(_task(), _builder,
                         _cfg(FedProphetConfig, rounds=2, journal_path=path))
        exp.run()
        exp.close()
        kinds = [e["kind"] for e in RunJournal.read(path)]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert kinds.count("round") == 2


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError, match="dropout_prob"):
            FaultPlan(dropout_prob=1.5)
        with pytest.raises(ValueError, match="exceed 1"):
            FaultPlan(dropout_prob=0.6, straggler_prob=0.3, flaky_prob=0.3)
        with pytest.raises(ValueError, match="straggler_slowdown"):
            FaultPlan(straggler_slowdown=0.5)
        assert not FaultPlan(seed=9).active
        assert FaultPlan(dropout_prob=0.1).active

    def test_outcome_is_deterministic(self):
        plan = FaultPlan(seed=3, dropout_prob=0.3, straggler_prob=0.3, flaky_prob=0.3)
        for r in range(5):
            for cid in range(8):
                a = plan.outcome(r, cid, max_retries=2)
                b = plan.outcome(r, cid, max_retries=2)
                assert a == b

    def test_flaky_retries_bounded_with_backoff(self):
        plan = FaultPlan(seed=0, flaky_prob=1.0, retry_success_prob=0.0,
                         backoff_base_s=2.0)
        oc = plan.outcome(0, 0, max_retries=3)
        assert oc.kind == "flaky" and not oc.survived
        assert oc.attempts == 4  # first try + 3 retries
        assert oc.extra_delay_s == 2.0 + 4.0 + 8.0
        assert plan.outcome(0, 0, max_retries=0).attempts == 1

    def test_json_round_trip_and_parse(self, tmp_path):
        plan = FaultPlan(seed=5, dropout_prob=0.2, flaky_prob=0.1)
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert FaultPlan.parse(plan.to_json()) == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.parse(str(path)) == plan
        with pytest.raises(ValueError, match="neither"):
            FaultPlan.parse(str(tmp_path / "missing.json"))

    def test_timeout_drops_slow_clients(self):
        plan = FaultPlan(seed=0, straggler_prob=1.0, straggler_slowdown=10.0)
        faults = plan.plan_round(
            0, [0, 1, 2], [1.0, 1.0, 1.0],
            client_timeout=5.0, max_retries=2, min_clients=1,
        )
        assert faults.survivors == []
        assert all(oc.timed_out for oc in faults.outcomes)
        assert faults.aborted and faults.timeout_floor_s == 5.0


class TestFaultInjection:
    PLAN = FaultPlan(seed=7, dropout_prob=0.3, straggler_prob=0.2, flaky_prob=0.2)

    ENGINES = [("serial", None), ("thread", 4)] + ([("process", 2)] if HAS_FORK else [])

    @pytest.mark.parametrize("mode", MODES)
    def test_deterministic_across_engines(self, mode):
        runs = []
        for backend, workers in self.ENGINES:
            exp = JointFAT(
                _task(), _builder,
                _cfg(fault_plan=self.PLAN, executor_backend=backend,
                     round_parallelism=workers, **mode),
                device_sampler=_sampler(),
            )
            exp.run()
            runs.append(exp)
            exp.close()
        for other in runs[1:]:
            _assert_runs_equal(runs[0], other)

    def test_disabled_plan_reproduces_fault_free_run(self):
        plain = JointFAT(_task(), _builder, _cfg())
        plain.run()
        plain.close()
        inactive = JointFAT(_task(), _builder, _cfg(fault_plan=FaultPlan(seed=3)))
        inactive.run()
        inactive.close()
        _assert_runs_equal(plain, inactive)

    def test_dropout_reweights_over_survivors(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        exp = JointFAT(
            _task(), _builder,
            _cfg(fault_plan=FaultPlan(seed=7, dropout_prob=0.4),
                 journal_path=path),
        )
        exp.run()
        exp.close()
        events = RunJournal.read(path)
        dropped = [e for e in events if e["kind"] == "faults" and e["dropped"]]
        assert dropped, "seed 7 at 40% dropout must drop somebody in 5 rounds"
        by_round = {e["round"]: e for e in events if e["kind"] == "sample"}
        for fault_event in dropped:
            cohort = by_round[fault_event["round"]]["cids"]
            assert not set(cohort) & set(fault_event["dropped"])
            assert len(cohort) == 3 - len(fault_event["dropped"])

    def test_all_dropout_aborts_without_touching_model(self):
        exp = JointFAT(_task(), _builder, _cfg(fault_plan=FaultPlan(dropout_prob=1.0)))
        before = _state(exp)
        history = exp.run()
        exp.close()
        assert all(rec.aborted for rec in history)
        _assert_states_equal(before, _state(exp))

    def test_min_clients_threshold_aborts_deterministically(self):
        plan = FaultPlan(seed=0, dropout_prob=0.5)
        a = JointFAT(_task(), _builder, _cfg(fault_plan=plan, min_clients_per_round=2))
        b = JointFAT(_task(), _builder, _cfg(fault_plan=plan, min_clients_per_round=2))
        ha, hb = a.run(), b.run()
        a.close()
        b.close()
        aborts = [rec.aborted for rec in ha]
        assert aborts == [rec.aborted for rec in hb]
        assert any(aborts) and not all(aborts)

    def test_stragglers_stretch_the_clock(self):
        plain = JointFAT(_task(), _builder, _cfg(), device_sampler=_sampler())
        plain.run()
        plain.close()
        slow = JointFAT(
            _task(), _builder,
            _cfg(fault_plan=FaultPlan(straggler_prob=1.0, straggler_slowdown=4.0)),
            device_sampler=_sampler(),
        )
        slow.run()
        slow.close()
        assert slow.clock_s == pytest.approx(4.0 * plain.clock_s)
        _assert_states_equal(_state(plain), _state(slow))  # latency-only fault

    def test_sync_timeout_waits_then_drops(self):
        plan = FaultPlan(seed=0, straggler_prob=1.0, straggler_slowdown=1e6)
        exp = JointFAT(
            _task(), _builder,
            _cfg(fault_plan=plan, client_timeout=1e-4, min_clients_per_round=1),
            device_sampler=_sampler(),
        )
        history = exp.run()
        exp.close()
        assert all(rec.aborted for rec in history)
        # The synchronous server waits out client_timeout per aborted round.
        assert exp.clock_s == pytest.approx(1e-4 * len(history))

    def test_faults_compose_with_resume(self, tmp_path):
        mode = dict(aggregation_mode="async", max_staleness=2, pipeline_depth=2)
        plan = FaultPlan(seed=7, dropout_prob=0.3, straggler_prob=0.2)
        ref = JointFAT(_task(), _builder, _cfg(fault_plan=plan, **mode),
                       device_sampler=_sampler())
        ref.run()
        ref.close()
        path = str(tmp_path / "run.jsonl")
        interrupted = JointFAT(
            _task(), _builder,
            _cfg(fault_plan=plan, journal_path=path, checkpoint_every=2, **mode),
            device_sampler=_sampler(),
        )
        interrupted.run(rounds=3)
        interrupted.close()
        resumed = JointFAT(
            _task(), _builder,
            _cfg(fault_plan=plan, journal_path=path, checkpoint_every=2, **mode),
            device_sampler=_sampler(),
        )
        resumed.resume(path)
        _assert_runs_equal(ref, resumed)
        resumed.close()

    def test_fedprophet_survives_aborted_rounds(self):
        exp = FedProphet(
            _task(), _builder,
            _cfg(FedProphetConfig, rounds=4,
                 fault_plan=FaultPlan(seed=11, dropout_prob=0.5),
                 min_clients_per_round=3),
        )
        history = exp.run()
        exp.close()
        assert len(history) == 4
        assert any(rec.aborted for rec in history)


# ---------------------------------------------------------------------------
# Satellites: executor context manager, pool shutdown on abort, clamping
# ---------------------------------------------------------------------------


class TestLifecycleSatellites:
    def test_round_executor_context_manager(self):
        with RoundExecutor("thread", max_workers=2) as ex:
            assert ex.thread_pool is not None
        assert ex._thread_pool is None

    def test_experiment_context_manager(self):
        with JointFAT(_task(), _builder, _cfg(rounds=1)) as exp:
            exp.run()
        assert exp.executor._thread_pool is None

    @pytest.mark.parametrize("mode", MODES)
    def test_aborted_run_releases_pools(self, mode):
        class Exploding(JointFAT):
            def async_client_fn(self, round_idx, base_state):
                if round_idx == 1:
                    raise RuntimeError("boom")
                return super().async_client_fn(round_idx, base_state)

            def run_round(self, round_idx, clients, states):
                if round_idx == 1:
                    raise RuntimeError("boom")
                return super().run_round(round_idx, clients, states)

        exp = Exploding(
            _task(), _builder,
            _cfg(executor_backend="thread", round_parallelism=2, **mode),
        )
        pool = exp.executor.thread_pool  # force-create the persistent pool
        with pytest.raises(RuntimeError, match="boom"):
            exp.run()
        assert exp.executor._thread_pool is None
        assert pool._shutdown

    def test_clients_per_round_clamps_with_warning(self):
        with pytest.warns(RuntimeWarning, match="clamping"):
            cfg = _cfg(num_clients=3, clients_per_round=7, rounds=1)
        assert cfg.clients_per_round == 3
        exp = JointFAT(_task(), _builder, cfg)
        history = exp.run()
        exp.close()
        assert len(history) == 1
