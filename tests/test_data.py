"""Tests for synthetic tasks, loaders, and federated partitioners."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    DataLoader,
    dirichlet_partition,
    iid_partition,
    make_caltech256_like,
    make_cifar10_like,
    pathological_partition,
    public_private_split,
)
from repro.data.synthetic import make_synthetic_task


class TestArrayDataset:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_subset(self):
        ds = ArrayDataset(np.arange(10).reshape(10, 1), np.arange(10))
        sub = ds.subset([1, 3, 5])
        np.testing.assert_array_equal(sub.y, [1, 3, 5])

    def test_class_counts(self):
        ds = ArrayDataset(np.zeros((4, 1)), np.array([0, 1, 1, 3]))
        np.testing.assert_array_equal(ds.class_counts(5), [1, 2, 0, 1, 0])


class TestDataLoader:
    def _ds(self, n=10):
        return ArrayDataset(np.arange(n).reshape(n, 1).astype(float), np.arange(n))

    def test_covers_all_samples(self):
        loader = DataLoader(self._ds(), batch_size=3, shuffle=True, rng=np.random.default_rng(0))
        seen = np.concatenate([y for _, y in loader])
        assert sorted(seen.tolist()) == list(range(10))

    def test_drop_last(self):
        loader = DataLoader(self._ds(10), batch_size=3, drop_last=True)
        batches = list(loader)
        assert len(batches) == 3
        assert all(len(y) == 3 for _, y in batches)

    def test_len(self):
        assert len(DataLoader(self._ds(10), batch_size=3)) == 4
        assert len(DataLoader(self._ds(10), batch_size=3, drop_last=True)) == 3

    def test_shuffling_is_reproducible(self):
        d1 = DataLoader(self._ds(), batch_size=4, rng=np.random.default_rng(5))
        d2 = DataLoader(self._ds(), batch_size=4, rng=np.random.default_rng(5))
        for (x1, _), (x2, _) in zip(d1, d2):
            np.testing.assert_array_equal(x1, x2)

    def test_infinite_stream(self):
        loader = DataLoader(self._ds(4), batch_size=4)
        stream = loader.infinite()
        for _ in range(5):
            x, y = next(stream)
            assert len(y) == 4

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(self._ds(), batch_size=0)


class TestSyntheticTask:
    def test_cifar10_like_shapes_and_range(self):
        task = make_cifar10_like(image_size=8, train_per_class=5, test_per_class=2)
        assert task.num_classes == 10
        assert task.train.x.shape == (50, 3, 8, 8)
        assert task.test.x.shape == (20, 3, 8, 8)
        assert task.train.x.min() >= 0.0 and task.train.x.max() <= 1.0

    def test_caltech256_like_many_classes(self):
        task = make_caltech256_like(image_size=8, num_classes=16, train_per_class=3, test_per_class=1)
        assert task.num_classes == 16
        assert set(np.unique(task.train.y)) == set(range(16))

    def test_determinism(self):
        t1 = make_cifar10_like(image_size=8, train_per_class=4, test_per_class=2, seed=3)
        t2 = make_cifar10_like(image_size=8, train_per_class=4, test_per_class=2, seed=3)
        np.testing.assert_array_equal(t1.train.x, t2.train.x)

    def test_different_seeds_differ(self):
        t1 = make_cifar10_like(image_size=8, train_per_class=4, test_per_class=2, seed=3)
        t2 = make_cifar10_like(image_size=8, train_per_class=4, test_per_class=2, seed=4)
        assert not np.allclose(t1.train.x, t2.train.x)

    def test_task_is_learnable_by_linear_probe(self):
        """Nearest-prototype should beat chance by a wide margin."""
        task = make_cifar10_like(image_size=8, train_per_class=30, test_per_class=10, seed=0)
        protos = np.stack([
            task.train.x[task.train.y == c].mean(axis=0) for c in range(10)
        ]).reshape(10, -1)
        xt = task.test.x.reshape(len(task.test.x), -1)
        d = ((xt[:, None, :] - protos[None]) ** 2).sum(axis=2)
        acc = (d.argmin(axis=1) == task.test.y).mean()
        assert acc > 0.5

    def test_min_classes(self):
        with pytest.raises(ValueError):
            make_synthetic_task("t", 1, (3, 8, 8), 2, 2)


class TestPartitions:
    def _labels(self, n=600, classes=10):
        return np.arange(n) % classes

    def test_iid_partition_covers_everything(self):
        shards = iid_partition(self._labels(), 10)
        all_idx = np.concatenate(shards)
        assert len(all_idx) == 600
        assert len(np.unique(all_idx)) == 600

    def test_pathological_partition_majority_structure(self):
        labels = self._labels()
        shards = pathological_partition(labels, 10, rng=np.random.default_rng(0))
        for shard in shards:
            counts = np.bincount(labels[shard], minlength=10)
            top2 = np.sort(counts)[-2:].sum()
            # 80% of data concentrated in ~20% (=2) classes
            assert top2 / counts.sum() > 0.6

    def test_pathological_partition_disjoint(self):
        shards = pathological_partition(self._labels(), 10, rng=np.random.default_rng(1))
        all_idx = np.concatenate(shards)
        assert len(np.unique(all_idx)) == len(all_idx)

    def test_pathological_fraction_validation(self):
        with pytest.raises(ValueError):
            pathological_partition(self._labels(), 5, major_data_frac=0.0)

    def test_dirichlet_partition_covers_everything(self):
        shards = dirichlet_partition(self._labels(), 8, alpha=0.5, rng=np.random.default_rng(0))
        all_idx = np.concatenate(shards)
        assert len(np.unique(all_idx)) == 600

    def test_dirichlet_alpha_validation(self):
        with pytest.raises(ValueError):
            dirichlet_partition(self._labels(), 5, alpha=0.0)

    def test_dirichlet_low_alpha_is_skewed(self):
        labels = self._labels()
        shards = dirichlet_partition(labels, 5, alpha=0.05, rng=np.random.default_rng(2))
        skews = []
        for shard in shards:
            if len(shard) == 0:
                continue
            counts = np.bincount(labels[shard], minlength=10)
            skews.append(counts.max() / max(counts.sum(), 1))
        assert np.mean(skews) > 0.4  # highly concentrated shards

    def test_public_private_split(self):
        pub, priv = public_private_split(self._labels(), 0.1, rng=np.random.default_rng(0))
        assert len(pub) == 60
        assert len(np.intersect1d(pub, priv)) == 0
        assert len(pub) + len(priv) == 600

    def test_public_frac_validation(self):
        with pytest.raises(ValueError):
            public_private_split(self._labels(), 1.0)
