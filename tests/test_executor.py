"""Round execution engine: backend determinism and stage-scoped caching.

The load-bearing property: a round run with the ``serial``, ``thread``,
and ``process`` backends produces **bit-identical** global state and
history (aggregation order is fixed by the client list, per-client RNGs
are counter-derived), and the version-keyed prefix cache is bit-identical
to running with the cache off while serving cross-round hits.
"""

import multiprocessing

import numpy as np
import pytest

from repro.baselines import FedRBN, HeteroFLAT, JointFAT
from repro.core import FedProphet, FedProphetConfig
from repro.data import make_cifar10_like
from repro.flsim import FLConfig, RoundExecutor
from repro.hardware import DEVICE_POOL_CIFAR10, DeviceSampler
from repro.models import build_cnn, build_vgg
from repro.nn import DualBatchNorm2d

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
BACKENDS = ["serial", "thread"] + (["process"] if HAS_FORK else [])


def _assert_states_equal(a, b, label=""):
    assert set(a) == set(b)
    for k in a:
        np.testing.assert_array_equal(a[k], b[k], err_msg=f"{label}{k}")


# ---------------------------------------------------------------------------
# RoundExecutor unit behaviour
# ---------------------------------------------------------------------------


class TestRoundExecutor:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            RoundExecutor("gpu")

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            RoundExecutor("thread", max_workers=0)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_map_preserves_input_order(self, backend):
        ex = RoundExecutor(backend, max_workers=3)
        items = list(range(11))
        assert ex.map(lambda i, slot: i * i, items) == [i * i for i in items]

    def test_map_empty(self):
        assert RoundExecutor("thread").map(lambda i, s: i, []) == []

    def test_serial_always_slot_zero(self):
        slots = RoundExecutor("serial").map(lambda i, slot: slot, range(5))
        assert slots == [0] * 5

    def test_thread_slots_stripe_deterministically(self):
        ex = RoundExecutor("thread", max_workers=2)
        slots = ex.map(lambda i, slot: slot, range(5))
        # item i runs on slot i % workers, regardless of scheduling
        assert slots == [0, 1, 0, 1, 0]
        assert ex.slots_for(5) == [0, 1]
        assert ex.slots_for(1) == [0]

    def test_workers_clamped_to_items(self):
        ex = RoundExecutor("thread", max_workers=8)
        assert ex.workers_for(3) == 3

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exceptions_propagate(self, backend):
        ex = RoundExecutor(backend, max_workers=2)

        def boom(i, slot):
            if i == 3:
                raise RuntimeError("work unit failed")
            return i

        with pytest.raises(RuntimeError, match="work unit failed"):
            ex.map(boom, range(5))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FLConfig(executor_backend="cluster")
        with pytest.raises(ValueError):
            FLConfig(round_parallelism=0)


# ---------------------------------------------------------------------------
# Backend determinism: parallel == serial, bit for bit
# ---------------------------------------------------------------------------


def _task():
    return make_cifar10_like(image_size=8, train_per_class=20, test_per_class=5, seed=0)


def _prophet(backend, **overrides):
    defaults = dict(
        num_clients=4, clients_per_round=3, local_iters=2, batch_size=8,
        lr=0.02, rounds=4, train_pgd_steps=2, rounds_per_module=2,
        patience=5, val_samples=16, val_pgd_steps=2, eval_every=0,
        eval_pgd_steps=2, r_min_fraction=0.4, seed=0,
        executor_backend=backend, round_parallelism=2,
    )
    defaults.update(overrides)
    cfg = FedProphetConfig(**defaults)
    return FedProphet(
        _task(),
        lambda rng: build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng),
        cfg,
    )


class TestFedProphetBackendDeterminism:
    @pytest.fixture(scope="class")
    def serial_run(self):
        exp = _prophet("serial")
        history = exp.run()
        return exp, history

    @pytest.mark.parametrize("backend", [b for b in BACKENDS if b != "serial"])
    def test_bit_identical_to_serial(self, backend, serial_run):
        ref, ref_history = serial_run
        exp = _prophet(backend)
        history = exp.run()
        # the 4-round run crosses a stage boundary (rounds_per_module=2),
        # so prefix syncing and cache versioning are both exercised
        assert len({e.module for e in exp.pert_log}) >= 2
        _assert_states_equal(
            ref.global_model.state_dict(), exp.global_model.state_dict()
        )
        for h_ref, h in zip(ref.heads, exp.heads):
            if h_ref is not None:
                _assert_states_equal(h_ref.state_dict(), h.state_dict(), "head ")
        assert len(history) == len(ref_history)
        for a, b in zip(ref_history, history):
            assert a.eval.clean_acc == b.eval.clean_acc
            assert a.eval.pgd_acc == b.eval.pgd_acc
            assert a.sim_time_s == b.sim_time_s


class TestBaselineBackendDeterminism:
    """jFAT / FedRBN / partial-training rounds are backend-invariant too."""

    def _cfg(self, backend, **overrides):
        defaults = dict(
            num_clients=4, clients_per_round=3, local_iters=2, batch_size=8,
            lr=0.02, rounds=2, train_pgd_steps=2, eval_every=0,
            eval_pgd_steps=2, seed=0,
            executor_backend=backend, round_parallelism=2,
        )
        defaults.update(overrides)
        return FLConfig(**defaults)

    def _run(self, cls, builder, backend):
        sampler = DeviceSampler(DEVICE_POOL_CIFAR10, "balanced")
        exp = cls(_task(), builder, self._cfg(backend), device_sampler=sampler)
        exp.run()
        return exp.global_model.state_dict()

    @pytest.mark.parametrize(
        "cls,builder",
        [
            (JointFAT, lambda rng: build_vgg("vgg11", 10, (3, 8, 8), width_mult=0.25, rng=rng)),
            (
                FedRBN,
                lambda rng: build_vgg(
                    "vgg11", 10, (3, 8, 8), width_mult=0.25, rng=rng,
                    bn_cls=DualBatchNorm2d,
                ),
            ),
            (HeteroFLAT, lambda rng: build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng)),
        ],
        ids=["jfat", "fedrbn", "heterofl"],
    )
    def test_thread_matches_serial(self, cls, builder):
        _assert_states_equal(
            self._run(cls, builder, "serial"), self._run(cls, builder, "thread")
        )


# ---------------------------------------------------------------------------
# Stage-scoped (version-keyed) prefix cache
# ---------------------------------------------------------------------------


def _stage_prophet(use_cache, backend="serial"):
    """An experiment pinned at module 1 where every client is sampled every
    round and one batch covers a client's whole shard — so after round 0
    the cache must serve every prefix forward of rounds 1+."""
    cfg = FedProphetConfig(
        num_clients=2, clients_per_round=2, local_iters=3, batch_size=128,
        lr=0.05, rounds=4, train_pgd_steps=2, eval_pgd_steps=2, eval_every=0,
        seed=0, rounds_per_module=4, patience=4, r_min_fraction=0.35,
        val_samples=16, val_pgd_steps=2, use_prefix_cache=use_cache,
        executor_backend=backend, round_parallelism=2,
    )
    exp = FedProphet(
        _task(),
        lambda rng: build_vgg("vgg11", 10, (3, 8, 8), width_mult=0.25, rng=rng),
        cfg,
    )
    exp.current_module = 1
    exp.eps_feature = 0.5
    return exp


class TestStageScopedCache:
    def _run_rounds(self, exp, rounds=3):
        for t in range(rounds):
            clients, states = exp.sample_round(t)
            exp.run_round(t, clients, states)
        return exp

    # hits/misses accrue wherever the lookups run; in process mode the
    # forked children ship their counter deltas back to the parent, so the
    # stats assertions hold on every backend
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cross_round_hits_with_zero_recompute(self, backend):
        exp = self._run_rounds(_stage_prophet(True, backend))
        stats = exp.prefix_cache.stats()
        # one bump on stage entry, none across the stage's rounds
        assert stats["invalidations"] == 1
        assert stats["version"] == 1
        # round 0 fills each client's entry; rounds 1-2 are pure hits:
        # 2 clients x 3 iterations x 2 rounds of full-shard batches
        assert stats["hits"] > 0
        shard = sum(len(c.dataset) for c in exp.clients)
        assert stats["misses"] == shard  # every sample forwarded exactly once
        assert stats["hits"] >= stats["misses"]

    def test_version_keyed_cache_bit_identical_to_off(self):
        exp_on = self._run_rounds(_stage_prophet(True))
        exp_off = self._run_rounds(_stage_prophet(False))
        assert exp_off.prefix_cache is None
        _assert_states_equal(
            exp_on.global_model.state_dict(), exp_off.global_model.state_dict()
        )
        for h_on, h_off in zip(exp_on.heads, exp_off.heads):
            if h_on is not None:
                _assert_states_equal(h_on.state_dict(), h_off.state_dict(), "head ")

    def test_stage_advance_bumps_version(self):
        exp = _stage_prophet(True)
        self._run_rounds(exp, rounds=2)
        assert exp.prefix_cache.version == 1
        exp.current_module = 2  # stage advances: the prefix grew
        clients, states = exp.sample_round(2)
        exp.run_round(2, clients, states)
        assert exp.prefix_cache.version == 2

    @pytest.mark.skipif(not HAS_FORK, reason="process backend requires fork()")
    def test_process_backend_adopts_child_entries(self):
        exp = self._run_rounds(_stage_prophet(True, "process"), rounds=2)
        stats = exp.prefix_cache.stats()
        # children computed the prefix forwards; the parent adopted their
        # entries, so its cache holds every client's activations
        assert stats["entries"] == len(exp.clients)
        assert all(
            exp.prefix_cache._entries[k].filled.all()
            for k in exp.prefix_cache._entries
        )


class TestPrefixCacheVersioning:
    def test_adopt_entry_merges_missing_rows(self):
        from repro.core.prefix_cache import PrefixCache

        cache = PrefixCache()
        x = np.arange(8, dtype=np.float32).reshape(4, 2)
        cache.fetch("k", np.array([0, 1]), x[[0, 1]], lambda b: b * 2, 4)
        data = np.zeros((4, 2), dtype=np.float32)
        data[2] = 7.0
        filled = np.array([False, False, True, False])
        assert cache.adopt_entry("k", cache.version, data, filled)
        out = cache.fetch("k", np.array([0, 2]), x[[0, 2]], lambda b: b * 2, 4)
        np.testing.assert_array_equal(out[0], x[0] * 2)
        np.testing.assert_array_equal(out[1], [7.0, 7.0])

    def test_adopt_entry_rejects_stale_version(self):
        from repro.core.prefix_cache import PrefixCache

        cache = PrefixCache()
        old_version = cache.version
        cache.bump_version()
        assert not cache.adopt_entry(
            "k", old_version, np.ones((2, 2), np.float32), np.array([True, True])
        )
        assert len(cache) == 0

    def test_fetch_resets_entry_from_older_version(self):
        from repro.core.prefix_cache import PrefixCache

        cache = PrefixCache()
        x = np.ones((2, 2), dtype=np.float32)
        cache.fetch("k", np.array([0, 1]), x, lambda b: b * 2, 2)
        entry = cache._entries["k"]
        entry.version -= 1  # simulate a stale survivor
        calls = []

        def fwd(b):
            calls.append(len(b))
            return b * 3

        out = cache.fetch("k", np.array([0, 1]), x, fwd, 2)
        assert calls == [2]
        np.testing.assert_array_equal(out, x * 3)
