"""Tests for evaluation metrics and robustness measurements."""

import numpy as np
import pytest

from repro.attacks import ModelWithLoss, PGDConfig
from repro.data import ArrayDataset
from repro.metrics import (
    EvalResult,
    empirical_robustness_constant,
    evaluate_model,
    output_perturbation,
)
from repro.models import build_cnn
from repro.utils import format_table

RNG = np.random.default_rng(0)


def _model():
    return build_cnn(2, 4, (3, 8, 8), base_channels=4, rng=np.random.default_rng(1))


def _dataset(n=24):
    rng = np.random.default_rng(2)
    y = rng.integers(0, 4, size=n)
    x = np.clip(0.5 + 0.2 * rng.normal(size=(n, 3, 8, 8)), 0, 1)
    return ArrayDataset(x, y)


class TestEvaluateModel:
    def test_returns_all_requested_metrics(self):
        res = evaluate_model(
            _model(), _dataset(), eps=0.03, pgd_steps=2, with_autoattack=True,
            batch_size=8,
        )
        assert 0 <= res.clean_acc <= 1
        assert 0 <= res.pgd_acc <= 1
        assert 0 <= res.aa_acc <= 1

    def test_adversarial_not_better_than_clean(self):
        res = evaluate_model(_model(), _dataset(), eps=0.1, pgd_steps=5, batch_size=8)
        assert res.pgd_acc <= res.clean_acc + 1e-9

    def test_aa_not_better_than_pgd(self):
        res = evaluate_model(
            _model(), _dataset(), eps=0.1, pgd_steps=5, with_autoattack=True, batch_size=8
        )
        assert res.aa_acc <= res.pgd_acc + 1e-9

    def test_zero_eps_skips_attacks(self):
        res = evaluate_model(_model(), _dataset(), eps=0.0, pgd_steps=5)
        assert res.pgd_acc is None and res.aa_acc is None

    def test_max_samples_caps_work(self):
        res = evaluate_model(
            _model(), _dataset(n=50), eps=0.03, pgd_steps=1, max_samples=10
        )
        assert res.pgd_acc is not None

    def test_as_dict(self):
        d = EvalResult(0.5, 0.4, 0.3).as_dict()
        assert d == {"clean_acc": 0.5, "pgd_acc": 0.4, "aa_acc": 0.3}

    def test_model_left_in_eval_with_zero_grads(self):
        model = _model()
        evaluate_model(model, _dataset(), eps=0.05, pgd_steps=2, batch_size=8)
        assert all(np.abs(p.grad).sum() == 0 for p in model.parameters())


class TestRobustnessMeasures:
    def test_output_perturbation_positive(self):
        model = _model()
        model.eval()
        seg = model.segment(0, 1)
        mwl = ModelWithLoss(model)
        ds = _dataset(8)
        norms = output_perturbation(
            seg, ds.x, ds.y, mwl, PGDConfig(eps=0.05, steps=2), rng=RNG
        )
        assert norms.shape == (8,)
        assert np.all(norms >= 0) and norms.max() > 0

    def test_empirical_robustness_constant_nonnegative_for_found_attack(self):
        model = _model()
        model.eval()
        mwl = ModelWithLoss(model)
        ds = _dataset(8)
        c = empirical_robustness_constant(
            mwl, ds.x, ds.y, PGDConfig(eps=0.05, steps=3), rng=RNG
        )
        assert np.isfinite(c)

    def test_constant_grows_with_eps(self):
        model = _model()
        model.eval()
        mwl = ModelWithLoss(model)
        ds = _dataset(16)
        small = empirical_robustness_constant(
            mwl, ds.x, ds.y, PGDConfig(eps=0.01, steps=3), rng=np.random.default_rng(0)
        )
        large = empirical_robustness_constant(
            mwl, ds.x, ds.y, PGDConfig(eps=0.2, steps=3), rng=np.random.default_rng(0)
        )
        assert large >= small


class TestFormatTable:
    def test_basic_render(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 0.00001]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_alignment_width(self):
        out = format_table(["col"], [["averylongvalue"]])
        header, sep, row = out.splitlines()
        assert len(header) == len(row)
