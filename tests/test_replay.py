"""Deterministic journal replay + streaming metrics service (PR 10).

Load-bearing properties:

* :func:`~repro.flsim.replay.replay_run` re-executes a journalled run
  and verifies **every** recorded event bit-for-bit at the JSON
  serialisation level — across backends and worker counts, with fault
  plans, robust aggregation, and ``pipeline_depth>=2`` async all active;
* the canonicaliser folds resume segments back onto their anchoring
  checkpoints and refuses journals that never completed;
* any tampering with the journal yields a :class:`ReplayDivergence`
  naming the first divergent ``seq`` and the differing fields;
* :class:`~repro.flsim.service.MetricsService` streams JSONL metrics
  rows as events happen and serves a live read-only JSON status endpoint
  over HTTP, without perturbing results (pure observability);
* ``eval_every_merge`` samples the accuracy-vs-version staleness curve
  at merge-event granularity, survives checkpoint/resume bit-for-bit,
  and is refused where it cannot hook the merge stream.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.baselines import JointFAT
from repro.data import make_cifar10_like
from repro.flsim import (
    FaultPlan,
    FLConfig,
    JournalError,
    MetricsService,
    ReplayDivergence,
    RunJournal,
    canonical_events,
    merge_eval_rows,
    replay_run,
)
from repro.models import build_cnn


def _task():
    return make_cifar10_like(image_size=8, train_per_class=20, test_per_class=10, seed=0)


def _builder(rng):
    return build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng)


def _cfg(**overrides):
    defaults = dict(
        num_clients=5, clients_per_round=3, local_iters=2, batch_size=8,
        lr=0.02, rounds=3, train_pgd_steps=2, eval_pgd_steps=2,
        eval_every=0, eval_max_samples=24, seed=0,
    )
    defaults.update(overrides)
    return FLConfig(**defaults)


def _exp(**overrides):
    return JointFAT(_task(), _builder, _cfg(**overrides))


#: The hardest journalled scenario the engine offers: depth-2 async
#: pipeline with an active fault plan and robust aggregation.
HARD_MODE = dict(
    aggregation_mode="async", max_staleness=2, pipeline_depth=2,
    aggregation_rule="median",
    fault_plan=FaultPlan(seed=7, dropout_prob=0.3, straggler_prob=0.2),
)


def _record_run(path, **overrides):
    exp = _exp(journal_path=path, **overrides)
    exp.run()
    exp.close()
    return exp


# ---------------------------------------------------------------------------
# canonical_events
# ---------------------------------------------------------------------------

def _ev(seq, kind, **payload):
    return {"seq": seq, "kind": kind, **payload}


class TestCanonicalEvents:
    def test_passthrough_without_resumes(self):
        events = [
            _ev(0, "run_start"), _ev(1, "round", round=0), _ev(2, "run_end"),
        ]
        canonical, folds = canonical_events(events)
        assert canonical == events
        assert folds == 0

    def test_fold_truncates_to_anchor_checkpoint(self):
        events = [
            _ev(0, "run_start"),
            _ev(1, "round", round=0),
            _ev(2, "checkpoint", next_round=1),
            _ev(3, "round", round=1),       # dying process's tail
            _ev(4, "resume", next_round=1),
            _ev(5, "round", round=1),       # resumed re-emission
            _ev(6, "run_end"),
        ]
        canonical, folds = canonical_events(events)
        assert folds == 1
        assert [e["seq"] for e in canonical] == [0, 1, 2, 5, 6]

    def test_fold_recovers_run_abort(self):
        events = [
            _ev(0, "run_start"),
            _ev(1, "checkpoint", next_round=1),
            _ev(2, "run_abort", error="boom"),
            _ev(3, "resume", next_round=1),
            _ev(4, "run_end"),
        ]
        canonical, folds = canonical_events(events)
        assert folds == 1
        assert [e["kind"] for e in canonical] == ["run_start", "checkpoint", "run_end"]

    def test_fold_strips_process_local_cache_counters(self):
        cache = {"hits": 3, "misses": 2, "evictions": 0, "live": 5, "peak_live": 5}
        events = [
            _ev(0, "run_start"),
            _ev(1, "sample", round=0, clients=[0, 1], cache=cache),
            _ev(2, "checkpoint", next_round=1),
            _ev(3, "resume", next_round=1),
            _ev(4, "sample", round=1, clients=[2], cache=cache),
            _ev(5, "run_end"),
        ]
        canonical, _ = canonical_events(events)
        samples = [e for e in canonical if e["kind"] == "sample"]
        assert samples and all("cache" not in e for e in samples)
        # ...but an uninterrupted journal keeps them for verification.
        clean = [e for e in events if e["kind"] != "resume"]
        clean = [dict(e, seq=i) for i, e in enumerate(clean)]
        canonical, _ = canonical_events(clean)
        assert all("cache" in e for e in canonical if e["kind"] == "sample")

    def test_refuses_journal_without_run_start(self):
        with pytest.raises(JournalError, match="run_start"):
            canonical_events([_ev(0, "round", round=0)])

    def test_refuses_resume_without_matching_checkpoint(self):
        events = [
            _ev(0, "run_start"),
            _ev(1, "checkpoint", next_round=1),
            _ev(2, "resume", next_round=2),
            _ev(3, "run_end"),
        ]
        with pytest.raises(JournalError, match="no.*matching checkpoint"):
            canonical_events(events)

    def test_refuses_surviving_run_abort(self):
        events = [
            _ev(0, "run_start"), _ev(1, "run_abort", error="ValueError"),
        ]
        with pytest.raises(JournalError, match="run_abort"):
            canonical_events(events)

    def test_refuses_incomplete_journal(self):
        events = [_ev(0, "run_start"), _ev(1, "round", round=0)]
        with pytest.raises(JournalError, match="no run_end"):
            canonical_events(events)


# ---------------------------------------------------------------------------
# replay_run end-to-end
# ---------------------------------------------------------------------------

class TestReplayRun:
    @pytest.mark.parametrize(
        "backend,workers", [("serial", 1), ("thread", 2)],
        ids=["serial", "thread-x2"],
    )
    def test_hard_mode_replays_on_any_backend(self, tmp_path, backend, workers):
        path = str(tmp_path / "run.jsonl")
        _record_run(path, executor_backend="thread", round_parallelism=2,
                    **HARD_MODE)
        report = replay_run(
            path,
            lambda: _exp(executor_backend=backend, round_parallelism=workers,
                         **HARD_MODE),
        )
        assert report.rounds == 3
        assert report.merges > 0
        assert report.events_verified == len(RunJournal.read(path))
        assert report.resumes_folded == 0
        assert "bit-identical" in report.summary()

    def test_sync_mode_replays(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        _record_run(path)
        report = replay_run(path, lambda: _exp())
        assert report.rounds == 3
        assert report.merges == 0

    def test_checkpoints_verified_bit_for_bit(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        _record_run(path, checkpoint_every=1, **HARD_MODE)
        replay_path = str(tmp_path / "replay" / "run.jsonl")
        report = replay_run(
            path,
            lambda: _exp(journal_path=replay_path, checkpoint_every=1,
                         **HARD_MODE),
        )
        assert report.skipped_checkpoints == 0
        assert any(
            e["kind"] == "checkpoint" for e in RunJournal.read(path)
        )

    def test_checkpoints_skipped_when_replay_has_them_off(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        _record_run(path, checkpoint_every=1, **HARD_MODE)
        report = replay_run(path, lambda: _exp(**HARD_MODE))
        assert report.skipped_checkpoints == 3
        assert report.events_verified == len(RunJournal.read(path)) - 3

    def test_checkpoint_basename_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        _record_run(path, checkpoint_every=1)
        other = str(tmp_path / "replay" / "other.jsonl")
        with pytest.raises(JournalError, match="basename"):
            replay_run(
                path, lambda: _exp(journal_path=other, checkpoint_every=1)
            )

    def test_fingerprint_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        _record_run(path)
        with pytest.raises(JournalError, match="fingerprint"):
            replay_run(path, lambda: _exp(lr=0.05))

    def test_used_experiment_refused(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        _record_run(path)
        used = _exp()
        used.run()
        used.close()
        with pytest.raises(RuntimeError, match="fresh"):
            replay_run(path, lambda: used)

    def test_tampered_event_names_divergent_seq(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        _record_run(path)
        events = RunJournal.read(path)
        victim = next(e for e in events if e["kind"] == "round")
        victim["sim_time_s"] = victim["sim_time_s"] + 1.0
        with open(path, "w", encoding="utf-8") as fh:
            for e in events:
                fh.write(json.dumps(e) + "\n")
        with pytest.raises(ReplayDivergence) as exc:
            replay_run(path, lambda: _exp())
        assert exc.value.seq == victim["seq"]
        assert exc.value.kind == "round"
        assert "sim_time_s" in str(exc.value)

    def test_surplus_recorded_events_diverge(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        _record_run(path)
        events = RunJournal.read(path)
        # Claim fewer rounds than the journal records: re-execution stops
        # early and the surplus recorded round must be reported.
        events[-1]["rounds"] = 2
        with open(path, "w", encoding="utf-8") as fh:
            for e in events:
                fh.write(json.dumps(e) + "\n")
        with pytest.raises(ReplayDivergence):
            replay_run(path, lambda: _exp())

    def test_replay_closes_experiment_on_divergence(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        _record_run(path)
        events = RunJournal.read(path)
        events[1]["clients"] = [0]
        with open(path, "w", encoding="utf-8") as fh:
            for e in events:
                fh.write(json.dumps(e) + "\n")
        holder = {}

        def factory():
            holder["exp"] = _exp()
            return holder["exp"]

        with pytest.raises(ReplayDivergence):
            replay_run(path, factory)
        # close() is idempotent; a second call after replay's cleanup
        # must not raise.
        holder["exp"].close()


# ---------------------------------------------------------------------------
# MetricsService + status endpoint
# ---------------------------------------------------------------------------

def _get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


class TestMetricsService:
    def test_streams_jsonl_rows_for_stream_kinds_only(self, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        svc = MetricsService(metrics_path=path)
        svc.observe("run_start", {"rounds": 2, "fingerprint": "abc"})
        svc.observe("dispatch", {"round": 0})          # snapshot-only kind
        svc.observe("round", {"round": 0, "sim_time_s": 1.5})
        svc.observe("run_end", {"rounds": 2, "clock_s": 3.0})
        svc.close()
        rows = [json.loads(l) for l in open(path, encoding="utf-8")]
        assert [r["kind"] for r in rows] == ["run_start", "round", "run_end"]

    def test_snapshot_folds_counters(self):
        svc = MetricsService()
        svc.observe("run_start", {"rounds": 4, "mode": "async"})
        svc.observe("faults", {"round": 0, "dropped": [1, 2]})
        svc.observe("threats", {"round": 0, "byzantine": [3]})
        svc.observe("round", {"round": 0, "sim_time_s": 2.0, "aborted": True})
        svc.observe("merge", {"round": 0, "sim_time_s": 2.5})
        svc.close()
        snap = svc.snapshot()
        assert snap["state"] == "running"
        assert snap["rounds_completed"] == 1
        assert snap["aborted_rounds"] == 1
        assert snap["server_version"] == 1
        assert snap["clock_s"] == 2.5
        assert snap["counters"]["faults_dropped"] == 2
        assert snap["counters"]["byzantine_clients"] == 1

    def test_run_end_and_abort_set_terminal_state(self):
        svc = MetricsService()
        svc.observe("run_end", {"rounds": 1, "clock_s": 1.0})
        assert svc.snapshot()["state"] == "finished"
        svc.observe("run_abort", {"error": "ValueError"})
        assert svc.snapshot()["state"] == "aborted"
        svc.close()

    def test_status_endpoint_serves_snapshot_and_tail(self):
        svc = MetricsService(status_port=0)
        try:
            assert svc.port and svc.port > 0
            svc.observe("run_start", {"rounds": 2, "fingerprint": "abc"})
            svc.observe("round", {"round": 0, "sim_time_s": 1.0})
            status, snap = _get(f"{svc.address}/status")
            assert status == 200
            assert snap["state"] == "running"
            assert snap["round"] == 0
            status, tail = _get(f"{svc.address}/events")
            assert [e["kind"] for e in tail["events"]] == ["run_start", "round"]
            status, health = _get(f"{svc.address}/health")
            assert health == {"ok": True, "state": "running"}
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get(f"{svc.address}/nope")
            assert exc.value.code == 404
        finally:
            svc.close()

    def test_endpoint_live_during_run(self, tmp_path):
        """The status endpoint answers while the run loop is executing."""
        metrics = str(tmp_path / "metrics.jsonl")
        exp = _exp(metrics_path=metrics, status_port=0, **HARD_MODE)
        address = exp.status_address
        assert address is not None
        status, snap = _get(f"{address}/status")
        assert snap["state"] == "init"

        seen = []
        stop = threading.Event()

        def poll():
            while not stop.is_set():
                try:
                    seen.append(_get(f"{address}/status")[1]["state"])
                except Exception:  # pragma: no cover - server teardown race
                    return
                stop.wait(0.005)

        poller = threading.Thread(target=poll, daemon=True)
        poller.start()
        exp.run()
        stop.set()
        poller.join(timeout=5)
        status, snap = _get(f"{address}/status")
        assert snap["state"] == "finished"
        assert snap["rounds_completed"] == 3
        assert snap["server_version"] > 0
        assert snap["pipeline"]["version"] == snap["server_version"]
        assert "running" in seen
        exp.close()
        rows = [json.loads(l) for l in open(metrics, encoding="utf-8")]
        assert rows[0]["kind"] == "run_start"
        assert rows[-1]["kind"] == "run_end"

    def test_observability_does_not_perturb_results(self, tmp_path):
        bare = _exp(**HARD_MODE)
        bare.run()
        bare.close()
        observed = _exp(
            metrics_path=str(tmp_path / "m.jsonl"), status_port=0, **HARD_MODE
        )
        observed.run()
        observed.close()
        for k, v in bare.global_model.state_dict().items():
            np.testing.assert_array_equal(
                v, observed.global_model.state_dict()[k], err_msg=k
            )
        assert [r.sim_time_s for r in bare.history] == [
            r.sim_time_s for r in observed.history
        ]

    def test_metrics_stream_alongside_journal_matches_events(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        metrics = str(tmp_path / "metrics.jsonl")
        exp = _exp(journal_path=journal, metrics_path=metrics, **HARD_MODE)
        exp.run()
        exp.close()
        rows = [json.loads(l) for l in open(metrics, encoding="utf-8")]
        streamed = [
            {k: v for k, v in e.items() if k != "seq"}
            for e in RunJournal.read(journal)
            if e["kind"] in {"run_start", "round", "merge", "eval",
                             "merge_eval", "run_end", "run_abort"}
        ]
        assert rows == streamed


# ---------------------------------------------------------------------------
# eval_every_merge (merge-event-granularity staleness curve)
# ---------------------------------------------------------------------------

class TestEvalEveryMerge:
    def test_requires_async_mode(self):
        with pytest.raises(ValueError, match="async"):
            _cfg(eval_every_merge=2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            _cfg(eval_every_merge=-1, aggregation_mode="async", max_staleness=2)

    def test_rejects_out_of_range_status_port(self):
        with pytest.raises(ValueError, match="status_port"):
            _cfg(status_port=70000)

    def test_rejects_custom_run_override(self):
        class CustomRun(JointFAT):
            def run(self, rounds=None, verbose=False):  # pragma: no cover
                return super().run(rounds, verbose)

        with pytest.raises(ValueError, match="eval_every_merge"):
            CustomRun(
                _task(), _builder,
                _cfg(eval_every_merge=2, aggregation_mode="async",
                     max_staleness=2),
            )

    def test_samples_curve_at_merge_granularity(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        exp = _exp(journal_path=path, eval_every_merge=2, **HARD_MODE)
        exp.run()
        exp.close()
        merges = len(exp.async_log)
        assert len(exp.merge_evals) == merges // 2
        assert [rec.version for rec in exp.merge_evals] == [
            v for v in range(1, merges + 1) if v % 2 == 0
        ]
        for rec in exp.merge_evals:
            assert rec.staleness >= 0
            assert 0.0 <= rec.eval.clean_acc <= 1.0
        journalled = [
            e for e in RunJournal.read(path) if e["kind"] == "merge_eval"
        ]
        assert [e["version"] for e in journalled] == [
            rec.version for rec in exp.merge_evals
        ]

    def test_merge_eval_rows_flatten_records(self):
        exp = _exp(eval_every_merge=1, **HARD_MODE)
        exp.run()
        exp.close()
        rows = merge_eval_rows(exp.merge_evals)
        assert len(rows) == len(exp.merge_evals) == len(exp.async_log)
        assert [r["version"] for r in rows] == list(
            range(1, len(exp.async_log) + 1)
        )
        assert all(
            set(r) == {"version", "round", "event", "staleness", "sim_time_s",
                       "clean_acc", "pgd_acc", "aa_acc"}
            for r in rows
        )

    def test_merge_evals_survive_checkpoint_resume(self, tmp_path):
        overrides = dict(eval_every_merge=2, **HARD_MODE)
        ref = _exp(**overrides)
        ref.run()
        ref.close()

        path = str(tmp_path / "run.jsonl")
        interrupted = _exp(journal_path=path, checkpoint_every=1, **overrides)
        interrupted.run(rounds=2)
        interrupted.close()
        resumed = _exp(journal_path=path, checkpoint_every=1, **overrides)
        resumed.resume(path)
        resumed.close()
        assert resumed.merge_evals == ref.merge_evals

    def test_curve_is_fingerprint_semantic(self, tmp_path):
        """A replayed journal re-emits merge_eval events bit-for-bit, and
        a config without the knob cannot impersonate one with it."""
        path = str(tmp_path / "run.jsonl")
        _record_run(path, eval_every_merge=2, **HARD_MODE)
        report = replay_run(
            path, lambda: _exp(eval_every_merge=2, **HARD_MODE)
        )
        assert report.evals > 0
        with pytest.raises(JournalError, match="fingerprint"):
            replay_run(path, lambda: _exp(**HARD_MODE))
