"""Tests for SGD and learning-rate schedules."""

import numpy as np
import pytest

from repro.nn import Linear
from repro.nn.module import Parameter
from repro.optim import SGD, ExponentialDecay


def _quadratic_param():
    return Parameter(np.array([4.0, -2.0]))


def test_sgd_plain_step():
    p = _quadratic_param()
    opt = SGD([p], lr=0.1)
    p.grad[...] = np.array([1.0, -1.0])
    opt.step()
    np.testing.assert_allclose(p.data, [3.9, -1.9])


def test_sgd_weight_decay():
    p = Parameter(np.array([2.0]))
    opt = SGD([p], lr=0.1, weight_decay=0.5)
    p.grad[...] = 0.0
    opt.step()
    np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0])


def test_sgd_momentum_accumulates():
    p = Parameter(np.array([0.0]))
    opt = SGD([p], lr=1.0, momentum=0.9)
    p.grad[...] = 1.0
    opt.step()  # v=1, p=-1
    p.grad[...] = 1.0
    opt.step()  # v=1.9, p=-2.9
    np.testing.assert_allclose(p.data, [-2.9])


def test_sgd_converges_on_quadratic():
    """Minimise f(w) = 0.5 ||w - target||^2."""
    target = np.array([1.0, -3.0, 2.0])
    p = Parameter(np.zeros(3))
    opt = SGD([p], lr=0.1, momentum=0.9)
    for _ in range(500):
        opt.zero_grad()
        p.grad[...] = p.data - target
        opt.step()
    np.testing.assert_allclose(p.data, target, atol=1e-5)


def test_sgd_zero_grad():
    p = _quadratic_param()
    opt = SGD([p], lr=0.1)
    p.grad[...] = 5.0
    opt.zero_grad()
    np.testing.assert_array_equal(p.grad, np.zeros(2))


def test_sgd_state_size():
    layer = Linear(4, 3)
    with_m = SGD(layer.parameters(), lr=0.1, momentum=0.9)
    without_m = SGD(layer.parameters(), lr=0.1, momentum=0.0)
    assert with_m.state_size() == layer.num_parameters()
    assert without_m.state_size() == 0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"lr": 0.0},
        {"lr": -1.0},
        {"lr": 0.1, "momentum": 1.0},
        {"lr": 0.1, "momentum": -0.1},
        {"lr": 0.1, "weight_decay": -1e-4},
    ],
)
def test_sgd_validates_hyperparameters(kwargs):
    with pytest.raises(ValueError):
        SGD([Parameter(np.zeros(1))], **kwargs)


def test_sgd_empty_params_rejected():
    with pytest.raises(ValueError):
        SGD([], lr=0.1)


def test_exponential_decay_schedule():
    p = Parameter(np.zeros(1))
    opt = SGD([p], lr=0.1)
    sched = ExponentialDecay(opt, gamma=0.5)
    assert sched.step() == pytest.approx(0.05)
    assert sched.step() == pytest.approx(0.025)
    assert opt.lr == pytest.approx(0.025)


def test_exponential_decay_set_round():
    opt = SGD([Parameter(np.zeros(1))], lr=1.0)
    sched = ExponentialDecay(opt, gamma=0.9)
    sched.set_round(10)
    assert opt.lr == pytest.approx(0.9**10)


def test_exponential_decay_validates_gamma():
    opt = SGD([Parameter(np.zeros(1))], lr=1.0)
    with pytest.raises(ValueError):
        ExponentialDecay(opt, gamma=0.0)
    with pytest.raises(ValueError):
        ExponentialDecay(opt, gamma=1.5)
