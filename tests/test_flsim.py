"""Tests for the FL engine: aggregation, local training, the round loop."""

import numpy as np
import pytest

from repro.attacks import PGDConfig
from repro.data import ArrayDataset, make_cifar10_like
from repro.flsim import (
    FLConfig,
    fedavg,
    adversarial_local_train,
    masked_partial_average,
    standard_local_train,
    weighted_average_states,
)
from repro.flsim.base import FederatedExperiment, RoundRecord
from repro.hardware.latency import LocalTrainingCost
from repro.models import build_cnn
from repro.nn import Linear, ReLU, Sequential


class TestAggregation:
    def test_weighted_average_identity(self):
        s = {"w": np.array([1.0, 2.0])}
        out = weighted_average_states([s, s], [1.0, 3.0])
        np.testing.assert_allclose(out["w"], [1.0, 2.0])

    def test_weighted_average_weights(self):
        s1 = {"w": np.array([0.0])}
        s2 = {"w": np.array([4.0])}
        out = weighted_average_states([s1, s2], [3.0, 1.0])
        np.testing.assert_allclose(out["w"], [1.0])

    def test_fedavg_weighted_by_samples(self):
        s1 = {"w": np.array([0.0])}
        s2 = {"w": np.array([10.0])}
        out = fedavg([s1, s2], [90, 10])
        np.testing.assert_allclose(out["w"], [1.0])

    def test_empty_states_rejected(self):
        with pytest.raises(ValueError):
            weighted_average_states([], [])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            weighted_average_states([{"w": np.zeros(1)}], [1.0, 2.0])

    def test_zero_weight_sum_rejected(self):
        with pytest.raises(ValueError):
            weighted_average_states([{"w": np.zeros(1)}], [0.0])

    def test_masked_partial_average_keeps_uncovered(self):
        g = {"w": np.array([1.0, 2.0, 3.0])}
        update = ({"w": np.array([10.0, 0.0, 0.0])}, {"w": np.array([1.0, 0.0, 0.0])}, 2.0)
        out = masked_partial_average(g, [update])
        np.testing.assert_allclose(out["w"], [10.0, 2.0, 3.0])

    def test_masked_partial_average_overlap(self):
        g = {"w": np.zeros(2)}
        u1 = ({"w": np.array([2.0, 0.0])}, {"w": np.array([1.0, 0.0])}, 1.0)
        u2 = ({"w": np.array([4.0, 6.0])}, {"w": np.array([1.0, 1.0])}, 1.0)
        out = masked_partial_average(g, [u1, u2])
        np.testing.assert_allclose(out["w"], [3.0, 6.0])


def _tiny_dataset(n=40, dim=6, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, classes, size=n)
    x = np.clip(0.5 + 0.3 * rng.normal(size=(n, dim)) + 0.3 * (y[:, None] - 1), 0, 1)
    return ArrayDataset(x, y)


class TestLocalTraining:
    def _model(self):
        rng = np.random.default_rng(4)
        return Sequential(Linear(6, 16, rng=rng), ReLU(), Linear(16, 3, rng=rng))

    def test_standard_training_reduces_loss(self):
        model = self._model()
        ds = _tiny_dataset()
        first = standard_local_train(model, ds, 1, 20, lr=0.5, rng=np.random.default_rng(0))
        for _ in range(20):
            last = standard_local_train(model, ds, 5, 20, lr=0.5, rng=np.random.default_rng(0))
        assert last < first

    def test_adversarial_training_runs_and_learns(self):
        model = self._model()
        ds = _tiny_dataset()
        pgd = PGDConfig(eps=0.05, steps=2)
        first = adversarial_local_train(model, ds, 1, 20, lr=0.5, pgd=pgd, rng=np.random.default_rng(0))
        for _ in range(20):
            last = adversarial_local_train(model, ds, 5, 20, lr=0.5, pgd=pgd, rng=np.random.default_rng(0))
        assert last < first

    def test_batch_size_capped_at_dataset(self):
        model = self._model()
        ds = _tiny_dataset(n=5)
        loss = standard_local_train(model, ds, 2, 999, lr=0.1)
        assert np.isfinite(loss)


class _CountingExperiment(FederatedExperiment):
    """Minimal concrete experiment for exercising the base-class loop."""

    name = "counting"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.rounds_seen = []

    def run_round(self, round_idx, clients, states):
        self.rounds_seen.append(round_idx)
        return [LocalTrainingCost(compute_s=1.0, access_s=0.5) for _ in clients]


class TestFederatedExperiment:
    def _experiment(self, **overrides):
        task = make_cifar10_like(image_size=8, train_per_class=20, test_per_class=5)
        defaults = dict(
            num_clients=5, clients_per_round=2, local_iters=1, batch_size=8,
            rounds=3, eval_every=0, eval_pgd_steps=2, seed=0,
        )
        defaults.update(overrides)
        cfg = FLConfig(**defaults)
        builder = lambda rng: build_cnn(1, 10, (3, 8, 8), base_channels=4, rng=rng)
        return _CountingExperiment(task, builder, cfg)

    def test_partitions_data_across_clients(self):
        exp = self._experiment()
        assert len(exp.clients) == 5
        assert exp.total_samples == sum(c.num_samples for c in exp.clients)

    def test_run_advances_clock_by_bottleneck(self):
        exp = self._experiment()
        history = exp.run()
        assert exp.rounds_seen == [0, 1, 2]
        assert exp.clock_s == pytest.approx(3 * 1.5)
        assert all(isinstance(r, RoundRecord) for r in history)

    def test_lr_decay(self):
        exp = self._experiment()
        assert exp.lr_at(0) == exp.config.lr
        assert exp.lr_at(10) == pytest.approx(exp.config.lr * exp.config.lr_decay**10)

    def test_sample_round_sizes(self):
        exp = self._experiment()
        clients, states = exp.sample_round(0)
        assert len(clients) == 2
        assert len(states) == 2
        assert all(s is None for s in states)  # no device sampler configured

    def test_eval_every_records_metrics(self):
        exp = self._experiment(eval_every=2, rounds=4, eval_max_samples=20)
        history = exp.run()
        evals = [r.eval for r in history if r.eval is not None]
        assert len(evals) == 2
        assert all(0.0 <= e.clean_acc <= 1.0 for e in evals)

    def test_config_validation(self):
        with pytest.warns(RuntimeWarning, match="clamping"):
            cfg = FLConfig(num_clients=2, clients_per_round=5)
        assert cfg.clients_per_round == 2
        with pytest.raises(ValueError):
            FLConfig(lr_decay=0.0)
