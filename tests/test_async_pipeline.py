"""Cross-round async pipeline: every baseline, bounded depth, determinism.

Load-bearing properties (PR 5):

* asynchronous aggregation is no longer jFAT-only: FedRBN (staleness-aware
  dual-BN propagation), the partial-training family (masked partial
  average, attenuated), and FedProphet (per-module Eq. 16 merges) all
  accept ``aggregation_mode="async"``; the distillation baselines reject
  it with a clear error;
* ``max_staleness=0`` with ``pipeline_depth=1`` reproduces the
  synchronous run **bit for bit** on every backend at 1/2/4 workers —
  model state, history, and evals;
* ``pipeline_depth>1`` really pipelines (more than one round in flight)
  and stays bit-identical across backends and worker counts, because
  merge order, base versions, and dispatch times derive from simulated
  latency only;
* the FedRBN dual-BN rule attenuates clean and adversarial running
  statistics separately under staleness and collapses to the sync result
  at staleness 0.
"""

import multiprocessing

import numpy as np
import pytest

from repro.baselines import FedDFAT, FedRBN, HeteroFLAT, JointFAT
from repro.core import FedProphet, FedProphetConfig, merge_async_partial
from repro.data import make_cifar10_like
from repro.flsim import AsyncMergeEvent, CrossRoundPipeline, FLConfig
from repro.flsim.base import AsyncRoundContext, FLClient
from repro.hardware import DeviceSampler, device_pool
from repro.models import build_cnn
from repro.nn.normalization import DualBatchNorm2d

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
BACKENDS = ["serial", "thread"] + (["process"] if HAS_FORK else [])


def _task():
    return make_cifar10_like(image_size=8, train_per_class=20, test_per_class=10, seed=0)


def _builder(rng):
    return build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng)


def _dual_builder(rng):
    return build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng, bn_cls=DualBatchNorm2d)


def _sampler(kind="unbalanced"):
    return DeviceSampler(device_pool("cifar10"), kind)


def _cfg(cls=FLConfig, **overrides):
    defaults = dict(
        num_clients=4, clients_per_round=3, local_iters=2, batch_size=8,
        lr=0.02, rounds=3, train_pgd_steps=2, eval_pgd_steps=2,
        eval_every=0, eval_max_samples=24, seed=0,
    )
    if cls is FedProphetConfig:
        defaults.update(rounds_per_module=2, patience=5, r_min_fraction=0.4,
                        val_samples=16, val_pgd_steps=2)
    defaults.update(overrides)
    return cls(**defaults)


def _assert_states_equal(a, b, label=""):
    assert set(a) == set(b)
    for k in a:
        np.testing.assert_array_equal(a[k], b[k], err_msg=f"{label}{k}")


def _histories_equal(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.round == y.round
        assert x.sim_time_s == y.sim_time_s
        if x.eval is None:
            assert y.eval is None
        else:
            assert x.eval.as_dict() == y.eval.as_dict()


# ---------------------------------------------------------------------------
# Config / capability surface
# ---------------------------------------------------------------------------


class TestAsyncCapability:
    def test_pipeline_depth_validation(self):
        with pytest.raises(ValueError):
            FLConfig(pipeline_depth=0)
        with pytest.raises(ValueError, match="aggregation_mode"):
            FLConfig(pipeline_depth=2)  # sync + cross-round dispatch
        FLConfig(pipeline_depth=2, aggregation_mode="async")  # fine

    @pytest.mark.parametrize(
        "cls,builder,sampler",
        [
            (JointFAT, _builder, None),
            (FedRBN, _dual_builder, None),
            (HeteroFLAT, _builder, None),
        ],
    )
    def test_baselines_accept_async(self, cls, builder, sampler):
        exp = cls(_task(), builder, _cfg(aggregation_mode="async"))
        assert exp.supports_async_aggregation

    def test_distillation_rejects_async(self):
        with pytest.raises(ValueError, match="async"):
            FedDFAT(
                _task(),
                {"cnn": _builder},
                _cfg(aggregation_mode="async"),
            )


# ---------------------------------------------------------------------------
# Acceptance: max_staleness=0 + pipeline_depth=1 == sync, every backend,
# 1/2/4 workers, every async-capable baseline family
# ---------------------------------------------------------------------------


class TestZeroStalenessIsSync:
    @pytest.fixture(scope="class")
    def sync_runs(self):
        runs = {}
        for name, cls, builder in [
            ("jfat", JointFAT, _builder),
            ("fedrbn", FedRBN, _dual_builder),
            ("heterofl", HeteroFLAT, _builder),
        ]:
            exp = cls(_task(), builder, _cfg(eval_every=1), device_sampler=_sampler())
            history = exp.run()
            runs[name] = (exp, history)
        return runs

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", ["jfat", "fedrbn", "heterofl"])
    def test_bit_identical_to_sync(self, name, backend, workers, sync_runs):
        cls, builder = {
            "jfat": (JointFAT, _builder),
            "fedrbn": (FedRBN, _dual_builder),
            "heterofl": (HeteroFLAT, _builder),
        }[name]
        ref, ref_history = sync_runs[name]
        exp = cls(
            _task(), builder,
            _cfg(eval_every=1, aggregation_mode="async", max_staleness=0,
                 pipeline_depth=1, executor_backend=backend,
                 round_parallelism=workers),
            device_sampler=_sampler(),
        )
        history = exp.run()
        _assert_states_equal(
            ref.global_model.state_dict(), exp.global_model.state_dict(),
            label=f"{name}/{backend}x{workers}: ",
        )
        _histories_equal(ref_history, history)
        assert all(e.alpha == 1.0 and e.staleness == 0 for e in exp.async_log)

    def test_prophet_zero_staleness_is_sync(self):
        sync = FedProphet(_task(), _builder, _cfg(FedProphetConfig, rounds=4),
                          device_sampler=_sampler())
        hs = sync.run()
        exp = FedProphet(
            _task(), _builder,
            _cfg(FedProphetConfig, rounds=4, aggregation_mode="async",
                 max_staleness=0),
            device_sampler=_sampler(),
        )
        ha = exp.run()
        _assert_states_equal(
            sync.global_model.state_dict(), exp.global_model.state_dict()
        )
        assert [r.eval.as_dict() for r in hs] == [r.eval.as_dict() for r in ha]
        assert exp.async_log
        assert all(e.alpha == 1.0 and e.staleness == 0 for e in exp.async_log)


# ---------------------------------------------------------------------------
# Cross-round pipelining
# ---------------------------------------------------------------------------


def _jfat_async(backend="serial", workers=None, **overrides):
    cfg = _cfg(aggregation_mode="async", max_staleness=2, rounds=5,
               executor_backend=backend, round_parallelism=workers, **overrides)
    return JointFAT(_task(), _builder, cfg, device_sampler=_sampler())


class TestCrossRoundPipeline:
    def test_depth_two_actually_pipelines(self):
        exp = _jfat_async(pipeline_depth=2)
        exp.run()
        assert exp._last_pipeline_stats["peak_in_flight"] == 2
        # every sampled client of every round merged exactly once
        per_round = {}
        for e in exp.async_log:
            per_round.setdefault(e.round, []).extend(e.client_ids)
        assert len(per_round) == 5
        for cids in per_round.values():
            assert len(cids) == len(set(cids)) == exp.config.clients_per_round

    def test_base_versions_advance_with_depth(self):
        shallow = _jfat_async(pipeline_depth=1)
        shallow.run()
        # depth 1: every round's base version is the total merge count of
        # all earlier rounds (the pipeline fully drained before dispatch)
        events_per_round = {}
        for e in shallow.async_log:
            events_per_round[e.round] = max(events_per_round.get(e.round, 0), e.event + 1)
        for e in shallow.async_log:
            assert e.base_version == sum(
                n for r, n in events_per_round.items() if r < e.round
            )
        deep = _jfat_async(pipeline_depth=3)
        deep.run()
        # at depth 1 every round's base is the full merge count of the
        # previous rounds; at depth > 1 some round dispatches against a
        # smaller base (that is the cross-round overlap)
        firsts_shallow = {e.round: e.base_version for e in shallow.async_log if e.event == 0}
        firsts_deep = {e.round: e.base_version for e in deep.async_log if e.event == 0}
        assert any(firsts_deep[r] < firsts_shallow[r] for r in firsts_deep)
        # total staleness counts interleaved merges: it may exceed the
        # intra-round event index, never undershoot it
        assert all(e.staleness >= e.event for e in deep.async_log)

    @pytest.mark.parametrize("depth", [2, 3])
    @pytest.mark.parametrize("backend,workers", [("serial", 1), ("thread", 2), ("thread", 4)])
    def test_deterministic_across_backends_and_workers(self, depth, backend, workers):
        ref = _jfat_async(pipeline_depth=depth)
        ref.run()
        exp = _jfat_async(backend, workers=workers, pipeline_depth=depth)
        exp.run()
        _assert_states_equal(
            ref.global_model.state_dict(), exp.global_model.state_dict()
        )
        assert ref.async_log == exp.async_log
        _histories_equal(ref.history, exp.history)

    @pytest.mark.skipif(not HAS_FORK, reason="process backend needs fork()")
    def test_process_backend_matches(self):
        ref = _jfat_async(pipeline_depth=2)
        ref.run()
        exp = _jfat_async("process", workers=2, pipeline_depth=2)
        exp.run()
        _assert_states_equal(
            ref.global_model.state_dict(), exp.global_model.state_dict()
        )
        assert ref.async_log == exp.async_log

    def test_depth_changes_trajectory(self):
        a = _jfat_async(pipeline_depth=1)
        a.run()
        b = _jfat_async(pipeline_depth=2)
        b.run()
        diff = sum(
            float(np.abs(x - y).max())
            for x, y in zip(
                a.global_model.state_dict().values(),
                b.global_model.state_dict().values(),
            )
        )
        assert diff > 0  # stale cross-round bases actually change training

    def test_eval_during_pipelined_run_is_deterministic(self):
        a = _jfat_async(pipeline_depth=2, eval_every=2)
        b = _jfat_async("thread", workers=4, pipeline_depth=2, eval_every=2)
        ha, hb = a.run(), b.run()
        evals_a = [r.eval.as_dict() for r in ha if r.eval is not None]
        evals_b = [r.eval.as_dict() for r in hb if r.eval is not None]
        assert evals_a and evals_a == evals_b

    def test_overlapped_eval_matches_barrier_in_async_mode(self):
        barrier = _jfat_async(pipeline_depth=2, eval_every=2)
        hb = barrier.run()
        overlap = _jfat_async(
            "thread", workers=4, pipeline_depth=2, eval_every=2, overlap_eval=True
        )
        ho = overlap.run()
        evals_b = [(r.round, r.eval.as_dict()) for r in hb if r.eval is not None]
        evals_o = [(r.round, r.eval.as_dict()) for r in ho if r.eval is not None]
        assert evals_b == evals_o
        _assert_states_equal(
            barrier.global_model.state_dict(), overlap.global_model.state_dict()
        )
        overlap.close()

    def test_direct_run_round_refuses_async_config(self):
        # run_round is the synchronous path; calling it directly with an
        # async config must fail loudly, never silently FedAvg.
        exp = _jfat_async()
        clients, states = exp.sample_round(0)
        with pytest.raises(RuntimeError, match="synchronous"):
            exp.run_round(0, clients, states)

    def test_cumulative_compute_accrues_in_round_order(self):
        exp = _jfat_async(pipeline_depth=3)
        history = exp.run()
        computes = [r.compute_s for r in history]
        accesses = [r.access_s for r in history]
        assert computes == sorted(computes)  # cumulative in round order
        assert accesses == sorted(accesses)
        assert exp.total_compute_s == computes[-1]
        assert exp.total_access_s == accesses[-1]
        # matches the sync accounting: per-round bottleneck compute sums
        sync = JointFAT(
            _task(), _builder, _cfg(rounds=5), device_sampler=_sampler()
        )
        sync_history = sync.run()
        # same sampled clients/devices -> same bottleneck costs per round
        assert [r.compute_s for r in sync_history] == computes

    def test_pipeline_rejects_bad_args(self):
        exp = _jfat_async()
        with pytest.raises(ValueError):
            CrossRoundPipeline(
                exp.scheduler, max_staleness=0, depth=0,
                merge_event=lambda *a: None, round_complete=lambda *a: None,
            )
        with pytest.raises(ValueError):
            CrossRoundPipeline(
                exp.scheduler, max_staleness=-1, depth=1,
                merge_event=lambda *a: None, round_complete=lambda *a: None,
            )


# ---------------------------------------------------------------------------
# FedRBN: staleness-aware dual-BN propagation
# ---------------------------------------------------------------------------


def _fedrbn_merge_fixture():
    """A FedRBN instance plus a handcrafted two-client merge context."""
    exp = FedRBN(_task(), _dual_builder, _cfg())
    server = exp.async_server_state()
    base = {k: v.copy() for k, v in server.items()}
    rng = np.random.default_rng(0)
    updates = []
    for _ in range(2):
        state = {k: v + rng.normal(size=v.shape).astype(v.dtype) for k, v in base.items()}
        updates.append(state)
    clients = [FLClient(cid=i, dataset=exp.clients[i].dataset) for i in range(2)]
    weights = [float(c.num_samples) for c in clients]
    ctx = AsyncRoundContext(
        round_idx=0, clients=clients, states=[None, None], costs=[],
        weights=weights, round_weight=float(sum(weights)),
        extra={"at": [True, False], "at_weight": weights[0]},
    )
    return exp, server, base, updates, ctx, weights


class TestFedRBNStalenessDualBN:
    def test_zero_staleness_collapses_to_sync_rule(self):
        exp, server, base, updates, ctx, weights = _fedrbn_merge_fixture()
        exp.async_merge_event(server, ctx, [0, 1], updates, staleness=0)
        adv_keys = set(exp._adv_stat_keys)
        from repro.flsim.aggregation import weighted_average_states

        full = weighted_average_states(updates, weights)
        for k in server:
            if k in adv_keys:
                # adversarial stats: AT client (index 0) only, rate 1
                np.testing.assert_array_equal(server[k], updates[0][k], err_msg=k)
            else:
                np.testing.assert_array_equal(server[k], full[k], err_msg=k)

    def test_stale_event_attenuates_clean_and_adv_separately(self):
        exp, server, base, updates, ctx, weights = _fedrbn_merge_fixture()
        s = 1
        exp.async_merge_event(server, ctx, [0, 1], updates, staleness=s)
        adv_keys = set(exp._adv_stat_keys)
        assert adv_keys, "dual-BN model must expose _adv running stats"
        from repro.flsim.aggregation import weighted_average_states

        full = weighted_average_states(updates, weights)
        alpha = 1.0 / (1.0 + s)          # whole round in one event
        alpha_adv = 1.0 / (1.0 + s)      # whole AT weight in one event
        for k in server:
            if k in adv_keys:
                expected = base[k] + alpha_adv * (updates[0][k] - base[k])
            else:
                expected = base[k] + alpha * (full[k] - base[k])
            np.testing.assert_allclose(server[k], expected, rtol=1e-6, err_msg=k)
            # attenuated: strictly between base and target when they differ
            moved = np.abs(server[k] - base[k])
            target = np.abs((updates[0][k] if k in adv_keys else full[k]) - base[k])
            assert np.all(moved <= target + 1e-12)

    def test_event_without_at_members_leaves_adv_stats(self):
        exp, server, base, updates, ctx, weights = _fedrbn_merge_fixture()
        # client 1 (no AT) merges alone at staleness 0
        exp.async_merge_event(server, ctx, [1], [updates[1]], staleness=0)
        for k in exp._adv_stat_keys:
            np.testing.assert_array_equal(server[k], base[k], err_msg=k)

    def test_end_to_end_stats_diverge_under_staleness(self):
        sync = FedRBN(_task(), _dual_builder, _cfg(), device_sampler=_sampler())
        sync.run()
        stale = FedRBN(
            _task(), _dual_builder,
            _cfg(aggregation_mode="async", max_staleness=2),
            device_sampler=_sampler(),
        )
        stale.run()
        assert max(e.staleness for e in stale.async_log) > 0
        sync_state = sync.global_model.state_dict()
        stale_state = stale.global_model.state_dict()
        adv = [k for k in stale._adv_stat_keys if k.endswith("running_mean_adv")]
        clean = [k.replace("_adv", "") for k in adv]
        assert any(float(np.abs(sync_state[k] - stale_state[k]).max()) > 0 for k in adv)
        assert any(float(np.abs(sync_state[k] - stale_state[k]).max()) > 0 for k in clean)

    @pytest.mark.parametrize("backend,workers", [("thread", 2), ("thread", 4)])
    def test_stale_run_deterministic(self, backend, workers):
        ref = FedRBN(
            _task(), _dual_builder,
            _cfg(aggregation_mode="async", max_staleness=2, pipeline_depth=2),
            device_sampler=_sampler(),
        )
        ref.run()
        exp = FedRBN(
            _task(), _dual_builder,
            _cfg(aggregation_mode="async", max_staleness=2, pipeline_depth=2,
                 executor_backend=backend, round_parallelism=workers),
            device_sampler=_sampler(),
        )
        exp.run()
        _assert_states_equal(
            ref.global_model.state_dict(), exp.global_model.state_dict()
        )
        assert ref.async_log == exp.async_log


# ---------------------------------------------------------------------------
# FedProphet: per-module async merges
# ---------------------------------------------------------------------------


class TestProphetAsync:
    @pytest.mark.parametrize("backend,workers", [("thread", 2), ("thread", 4)])
    def test_stale_run_deterministic_across_workers(self, backend, workers):
        ref = FedProphet(
            _task(), _builder,
            _cfg(FedProphetConfig, rounds=4, aggregation_mode="async",
                 max_staleness=2),
            device_sampler=_sampler(),
        )
        ref.run()
        exp = FedProphet(
            _task(), _builder,
            _cfg(FedProphetConfig, rounds=4, aggregation_mode="async",
                 max_staleness=2, executor_backend=backend,
                 round_parallelism=workers),
            device_sampler=_sampler(),
        )
        exp.run()
        _assert_states_equal(
            ref.global_model.state_dict(), exp.global_model.state_dict()
        )
        assert ref.async_log == exp.async_log
        assert max(e.staleness for e in ref.async_log) <= 2

    def test_merge_log_covers_every_round(self):
        exp = FedProphet(
            _task(), _builder,
            _cfg(FedProphetConfig, rounds=4, aggregation_mode="async",
                 max_staleness=1),
            device_sampler=_sampler(),
        )
        exp.run()
        rounds_seen = {e.round for e in exp.async_log}
        assert rounds_seen == {r.round for r in exp.history}
        per_round = {}
        for e in exp.async_log:
            per_round.setdefault(e.round, []).extend(e.client_ids)
        for cids in per_round.values():
            assert len(cids) == len(set(cids)) == exp.config.clients_per_round

    def test_merge_async_partial_validates(self):
        exp = FedProphet(_task(), _builder, _cfg(FedProphetConfig))
        with pytest.raises(ValueError):
            merge_async_partial(
                exp.global_model, exp.partition, 0, {}, [None], [{}], [],
                [0], [1.0], [1.0], [1.0], staleness=0,
            )


class TestAsyncMergeEventLog:
    def test_log_entries_are_comparable_records(self):
        exp = _jfat_async(pipeline_depth=1)
        exp.run()
        assert all(isinstance(e, AsyncMergeEvent) for e in exp.async_log)
        # sim times are the simulated merge times: non-decreasing in log order
        times = [e.sim_time_s for e in exp.async_log]
        assert times == sorted(times)
