"""Tests for adversarial cascade learning (client side, Eq. 9)."""

import numpy as np
import pytest

from repro.core.cascade import (
    CascadeBatchSpec,
    CascadeLossModel,
    cascade_local_train,
    measure_output_perturbation,
)
from repro.data import ArrayDataset
from repro.models import build_cnn
from repro.core.heads import AuxHead
from repro.nn import Linear
from tests.helpers import numerical_grad

RNG = np.random.default_rng(0)


def _model():
    return build_cnn(3, 4, (3, 8, 8), base_channels=4, rng=np.random.default_rng(1))


def _dataset(n=32):
    rng = np.random.default_rng(2)
    y = rng.integers(0, 4, size=n)
    x = np.clip(0.5 + 0.2 * rng.normal(size=(n, 3, 8, 8)) + 0.1 * y[:, None, None, None], 0, 1)
    return ArrayDataset(x, y)


class TestCascadeLossModel:
    def test_with_head_matches_strong_convexity_loss(self):
        model = _model()
        model.eval()
        seg = model.segment(0, 1)
        head = AuxHead(model.feature_shape(0), 4, rng=RNG)
        clm = CascadeLossModel(seg, head, mu=0.01)
        x = RNG.uniform(0.2, 0.8, size=(4, 3, 8, 8))
        y = np.array([0, 1, 2, 3])
        loss, grad = clm.loss_and_input_grad(x, y)
        assert np.isfinite(loss)
        assert grad.shape == x.shape

    def test_input_grad_matches_numeric(self):
        model = _model()
        model.eval()
        seg = model.segment(1, 2)  # intermediate module: conv on features
        in_shape = model.feature_shape(0)
        head = AuxHead(model.feature_shape(1), 4, rng=RNG)
        clm = CascadeLossModel(seg, head, mu=0.05)
        z = RNG.normal(size=(2,) + in_shape) + 0.1
        y = np.array([1, 3])
        _, analytic = clm.loss_and_input_grad(z, y)
        numeric = numerical_grad(lambda: clm.loss(z, y), z)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-3, atol=1e-6)

    def test_without_head_is_plain_ce(self):
        model = _model()
        model.eval()
        seg = model.segment(0, len(model.atoms))  # whole model: last "module"
        clm = CascadeLossModel(seg, head=None, mu=0.0)
        x = RNG.uniform(0.2, 0.8, size=(3, 3, 8, 8))
        y = np.array([0, 1, 2])
        logits = clm.logits(x)
        assert logits.shape == (3, 4)
        loss, grad = clm.loss_and_input_grad(x, y)
        assert np.isfinite(loss) and grad.shape == x.shape

    def test_per_sample_losses(self):
        model = _model()
        model.eval()
        seg = model.segment(0, 1)
        head = AuxHead(model.feature_shape(0), 4, rng=RNG)
        clm = CascadeLossModel(seg, head, mu=0.0)
        x = RNG.uniform(size=(5, 3, 8, 8))
        y = np.array([0, 1, 2, 3, 0])
        ps = clm.per_sample_losses(x, y)
        assert ps.shape == (5,)
        assert np.all(ps > 0)


class TestCascadeLocalTrain:
    def test_first_module_trains_and_reduces_loss(self):
        model = _model()
        head = AuxHead(model.feature_shape(0), 4, rng=RNG)
        spec = CascadeBatchSpec(start_atom=0, stop_atom=1, head=head)
        ds = _dataset()
        losses = [
            cascade_local_train(
                model, spec, ds, iterations=5, batch_size=16, lr=0.1,
                mu=1e-4, eps0=0.02, eps_feature=0.0, attack_steps=2,
                rng=np.random.default_rng(i),
            )
            for i in range(8)
        ]
        assert losses[-1] < losses[0]

    def test_only_assigned_params_change(self):
        model = _model()
        head = AuxHead(model.feature_shape(1), 4, rng=RNG)
        before = model.state_dict()
        spec = CascadeBatchSpec(start_atom=1, stop_atom=2, head=head)
        cascade_local_train(
            model, spec, _dataset(), iterations=2, batch_size=8, lr=0.1,
            mu=1e-4, eps0=0.02, eps_feature=0.5, attack_steps=2,
        )
        after = model.state_dict()
        changed = {k for k in before if not np.allclose(before[k], after[k])}
        assert changed, "assigned module must update"
        assert all(k.startswith("atom1.") for k in changed), changed

    def test_multi_module_span_updates_both(self):
        model = _model()
        head = AuxHead(model.feature_shape(2), 4, rng=RNG)
        before = model.state_dict()
        spec = CascadeBatchSpec(start_atom=1, stop_atom=3, head=head)
        cascade_local_train(
            model, spec, _dataset(), iterations=2, batch_size=8, lr=0.1,
            mu=1e-4, eps0=0.02, eps_feature=0.5, attack_steps=1,
        )
        after = model.state_dict()
        changed_atoms = {
            k.split(".")[0] for k in before if not np.allclose(before[k], after[k])
        }
        assert changed_atoms == {"atom1", "atom2"}

    def test_last_module_without_head(self):
        model = _model()
        n_atoms = len(model.atoms)
        spec = CascadeBatchSpec(start_atom=n_atoms - 1, stop_atom=n_atoms, head=None)
        loss = cascade_local_train(
            model, spec, _dataset(), iterations=2, batch_size=8, lr=0.05,
            mu=0.0, eps0=0.02, eps_feature=0.3, attack_steps=1,
        )
        assert np.isfinite(loss)


class TestMeasureOutputPerturbation:
    def test_positive_for_nonzero_eps(self):
        model = _model()
        head = AuxHead(model.feature_shape(0), 4, rng=RNG)
        v = measure_output_perturbation(
            model, 0, 1, head, _dataset(), mu=0.0, eps0=0.05,
            eps_feature=0.0, attack_steps=2, batch_size=16,
        )
        assert v > 0

    def test_zero_for_zero_eps(self):
        model = _model()
        head = AuxHead(model.feature_shape(0), 4, rng=RNG)
        v = measure_output_perturbation(
            model, 0, 1, head, _dataset(), mu=0.0, eps0=0.0,
            eps_feature=0.0, attack_steps=2, batch_size=16,
        )
        assert v == pytest.approx(0.0)

    def test_larger_eps_larger_displacement(self):
        model = _model()
        head = AuxHead(model.feature_shape(0), 4, rng=RNG)
        small = measure_output_perturbation(
            model, 0, 1, head, _dataset(), mu=0.0, eps0=0.01,
            eps_feature=0.0, attack_steps=3, batch_size=16,
            rng=np.random.default_rng(0),
        )
        large = measure_output_perturbation(
            model, 0, 1, head, _dataset(), mu=0.0, eps0=0.1,
            eps_feature=0.0, attack_steps=3, batch_size=16,
            rng=np.random.default_rng(0),
        )
        assert large > small
