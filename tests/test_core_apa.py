"""Tests for Adaptive Perturbation Adjustment (Eq. 11–12)."""

import numpy as np
import pytest

from repro.core.apa import AdaptivePerturbationAdjustment, _safe_ratio


def _armed(**kwargs):
    apa = AdaptivePerturbationAdjustment(**kwargs)
    apa.start_module(base_magnitude=2.0, prev_clean_acc=0.8, prev_adv_acc=0.4)
    return apa


class TestAPA:
    def test_initial_epsilon(self):
        apa = _armed(alpha_init=0.3)
        assert apa.epsilon == pytest.approx(0.6)

    def test_ratio_too_high_increases_alpha(self):
        """Clean >> adv accuracy: robustness lags, crank ε up."""
        apa = _armed()
        # prev ratio = 2.0; current ratio 0.9/0.3 = 3.0 > 2.0 * 1.05
        apa.update(clean_acc=0.9, adv_acc=0.3)
        assert apa.alpha == pytest.approx(0.4)

    def test_ratio_too_low_decreases_alpha(self):
        apa = _armed()
        # current ratio 0.5/0.45 ≈ 1.1 < 2.0 * 0.95
        apa.update(clean_acc=0.5, adv_acc=0.45)
        assert apa.alpha == pytest.approx(0.2)

    def test_ratio_in_band_keeps_alpha(self):
        apa = _armed()
        apa.update(clean_acc=0.8, adv_acc=0.4)  # exactly prev ratio
        assert apa.alpha == pytest.approx(0.3)

    def test_alpha_clamped(self):
        apa = _armed(alpha_init=0.1, alpha_min=0.05, delta_alpha=0.1)
        for _ in range(5):
            apa.update(clean_acc=0.5, adv_acc=0.5)  # ratio 1 < 1.9 -> decrease
        assert apa.alpha == pytest.approx(0.05)
        apa2 = _armed(alpha_init=1.95, alpha_max=2.0, delta_alpha=0.1)
        for _ in range(5):
            apa2.update(clean_acc=0.9, adv_acc=0.1)  # huge ratio -> increase
        assert apa2.alpha == pytest.approx(2.0)

    def test_disabled_apa_freezes_alpha(self):
        apa = AdaptivePerturbationAdjustment(enabled=False)
        apa.start_module(1.0, 0.8, 0.4)
        apa.update(clean_acc=0.99, adv_acc=0.01)
        assert apa.alpha == pytest.approx(apa.alpha_init)

    def test_zero_adv_accuracy_guarded(self):
        apa = _armed()
        apa.update(clean_acc=0.9, adv_acc=0.0)  # ratio -> huge, must not crash
        assert np.isfinite(apa.epsilon)
        assert apa.alpha > 0.3

    def test_history_records_epsilons(self):
        apa = _armed()
        apa.update(0.8, 0.4)
        apa.update(0.8, 0.4)
        assert len(apa.history) == 2

    def test_start_module_resets_alpha(self):
        apa = _armed()
        apa.update(0.9, 0.1)
        assert apa.alpha != apa.alpha_init
        apa.start_module(1.0, 0.7, 0.5)
        assert apa.alpha == apa.alpha_init
        assert apa.history == []

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptivePerturbationAdjustment(gamma=0.0)
        with pytest.raises(ValueError):
            AdaptivePerturbationAdjustment(delta_alpha=0.0)
        apa = AdaptivePerturbationAdjustment()
        with pytest.raises(ValueError):
            apa.start_module(-1.0, 0.5, 0.5)

    def test_safe_ratio(self):
        assert _safe_ratio(0.8, 0.4) == pytest.approx(2.0)
        assert np.isfinite(_safe_ratio(0.8, 0.0))
