"""Tests for per-client latency/cost accounting inside the algorithms."""

import numpy as np
import pytest

from repro.baselines import FedRolexAT, JointFAT
from repro.core import FedProphet, FedProphetConfig
from repro.data import make_cifar10_like
from repro.flsim import FLConfig
from repro.hardware import Device, DeviceState
from repro.models import build_cnn


def _task():
    return make_cifar10_like(image_size=8, train_per_class=20, test_per_class=8, seed=0)


def _builder(rng):
    return build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng)


def _cfg(**overrides):
    defaults = dict(
        num_clients=4, clients_per_round=2, local_iters=2, batch_size=8,
        rounds=1, train_pgd_steps=2, eval_every=0, seed=0,
    )
    defaults.update(overrides)
    return FLConfig(**defaults)


def _state(mem_bytes=1e12, perf=1e12, io_gbps=1.0):
    return DeviceState(
        Device("t", perf / 1e12, mem_bytes / 1024**3 * 5, io_gbps),
        avail_mem_bytes=mem_bytes,
        avail_perf_flops=perf,
    )


class TestJointFATCost:
    def test_none_state_is_free(self):
        exp = JointFAT(_task(), _builder, _cfg())
        cost = exp._cost(None)
        assert cost.total_s == 0.0

    def test_memory_pressure_adds_access_time(self):
        exp = JointFAT(_task(), _builder, _cfg())
        roomy = exp._cost(_state(mem_bytes=10 * exp.mem_req))
        tight = exp._cost(_state(mem_bytes=0.5 * exp.mem_req))
        assert roomy.access_s == 0.0
        assert tight.access_s > 0.0
        assert tight.compute_s == pytest.approx(roomy.compute_s)

    def test_faster_device_lower_compute(self):
        exp = JointFAT(_task(), _builder, _cfg())
        slow = exp._cost(_state(perf=1e10))
        fast = exp._cost(_state(perf=1e12))
        assert fast.compute_s < slow.compute_s

    def test_pgd_steps_scale_flops(self):
        e1 = JointFAT(_task(), _builder, _cfg(train_pgd_steps=1))
        e2 = JointFAT(_task(), _builder, _cfg(train_pgd_steps=9))
        assert e2.flops_per_iter == pytest.approx(5 * e1.flops_per_iter)


class TestPartialTrainingCost:
    def test_smaller_ratio_cheaper(self):
        exp = FedRolexAT(_task(), _builder, _cfg())
        from repro.baselines.subnet import extract_submodel

        full = extract_submodel(exp.global_model, 1.0, "rolling").model
        half = extract_submodel(exp.global_model, 0.5, "rolling").model
        state = _state()
        assert exp._cost(state, half).compute_s < exp._cost(state, full).compute_s


class TestFedProphetCost:
    def _prophet(self):
        cfg = FedProphetConfig(
            num_clients=4, clients_per_round=2, local_iters=2, batch_size=8,
            rounds=1, rounds_per_module=1, patience=1, train_pgd_steps=2,
            eval_every=0, r_min_fraction=0.4, val_samples=16, val_pgd_steps=1,
            seed=0,
        )
        return FedProphet(_task(), _builder, cfg)

    def test_later_modules_pay_prefix_forward(self):
        fed = self._prophet()
        assert fed.partition.num_modules >= 2
        state = _state()
        first = fed._client_cost(state, 0, 0)
        # cost of the same single-module span later in the cascade includes
        # the prefix forward, so normalising by segment flops it can only
        # grow; simply assert both are positive and finite
        last = fed.partition.num_modules - 1
        later = fed._client_cost(state, last, last)
        assert first.compute_s > 0 and later.compute_s > 0

    def test_dma_span_costs_more_than_single(self):
        fed = self._prophet()
        if fed.partition.num_modules < 2:
            pytest.skip("needs >= 2 modules")
        state = _state()
        single = fed._client_cost(state, 0, 0)
        span = fed._client_cost(state, 0, 1)
        assert span.compute_s > single.compute_s

    def test_prefix_flops_cumulative(self):
        fed = self._prophet()
        assert fed._prefix_flops[0] == 0
        diffs = np.diff(fed._prefix_flops)
        assert np.all(diffs > 0)
        assert len(fed._prefix_flops) == len(fed.global_model.atoms) + 1

    def test_none_state_free(self):
        fed = self._prophet()
        assert fed._client_cost(None, 0, 0).total_s == 0.0
