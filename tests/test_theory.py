"""Empirical validation of the paper's theory (Lemma 1, Prop. 1).

The early-exit loss l_m(z) = CE(W z + b, y) + (μ/2)‖z‖² is *exactly*
μ-strongly convex in z (convex CE∘linear plus a μ-quadratic), so Lemma 1's
perturbation bound

    ‖Δz‖ ≤ ‖∇_z l_m(z)‖/μ + sqrt( 2c/μ + ‖∇_z l_m(z)‖²/μ² )

must hold for every Δz whose loss increase is at most c.  These tests
check the bound numerically, including under hypothesis-generated
perturbations — if the bound ever failed, either the loss implementation
or the lemma transcription would be wrong.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Linear, StrongConvexityLoss
from repro.nn.losses import softmax
from repro.nn.functional import one_hot


def _loss_and_grad(head: Linear, mu: float, z: np.ndarray, y: int):
    """Per-sample l_m(z) and ∇_z l_m(z) for a single flat feature z."""
    zb = z[None, :]
    logits = zb @ head.weight.data.T + head.bias.data
    p = softmax(logits)[0]
    ce = -np.log(max(p[y], 1e-300))
    loss = ce + 0.5 * mu * float(z @ z)
    grad = (p - one_hot(np.array([y]), head.out_features)[0]) @ head.weight.data + mu * z
    return loss, grad


def _lemma1_bound(grad_norm: float, c: float, mu: float) -> float:
    c = max(c, 0.0)
    return grad_norm / mu + np.sqrt(2 * c / mu + grad_norm**2 / mu**2)


@pytest.mark.parametrize("mu", [0.1, 1.0, 10.0])
def test_lemma1_bound_holds_for_random_perturbations(mu):
    rng = np.random.default_rng(0)
    head = Linear(8, 4, rng=rng)
    z = rng.normal(size=8)
    y = 2
    base_loss, grad = _loss_and_grad(head, mu, z, y)
    grad_norm = float(np.linalg.norm(grad))
    for _ in range(100):
        delta = rng.normal(size=8) * rng.uniform(0.01, 3.0)
        perturbed_loss, _ = _loss_and_grad(head, mu, z + delta, y)
        c = perturbed_loss - base_loss
        bound = _lemma1_bound(grad_norm, c, mu)
        assert np.linalg.norm(delta) <= bound + 1e-8


@given(
    seed=st.integers(0, 2**31 - 1),
    mu=st.floats(0.05, 20.0),
    scale=st.floats(0.01, 5.0),
)
@settings(max_examples=60)
def test_lemma1_bound_property(seed, mu, scale):
    rng = np.random.default_rng(seed)
    head = Linear(6, 3, rng=rng)
    z = rng.normal(size=6)
    y = int(rng.integers(0, 3))
    base_loss, grad = _loss_and_grad(head, mu, z, y)
    grad_norm = float(np.linalg.norm(grad))
    delta = rng.normal(size=6) * scale
    c = _loss_and_grad(head, mu, z + delta, y)[0] - base_loss
    assert np.linalg.norm(delta) <= _lemma1_bound(grad_norm, c, mu) * (1 + 1e-9) + 1e-8


def test_larger_mu_tightens_the_bound():
    """Lemma 1's practical content: stronger convexity ⇒ smaller certified
    output perturbation at the same robustness level c."""
    c, grad_norm = 1.0, 0.5
    bounds = [_lemma1_bound(grad_norm, c, mu) for mu in (0.1, 1.0, 10.0)]
    assert bounds == sorted(bounds, reverse=True)


def test_strong_convexity_loss_matches_reference():
    """The library's StrongConvexityLoss agrees with the closed form used
    in the lemma tests (single-sample batch)."""
    rng = np.random.default_rng(1)
    head = Linear(5, 3, rng=rng)
    z = rng.normal(size=5)
    y = 1
    mu = 0.7
    scl = StrongConvexityLoss(head, mu=mu)
    lib_loss = scl(z[None, :], np.array([y]))
    ref_loss, ref_grad = _loss_and_grad(head, mu, z, y)
    assert lib_loss == pytest.approx(ref_loss)
    lib_grad = scl.backward(accumulate_head_grads=False)[0]
    np.testing.assert_allclose(lib_grad, ref_grad, rtol=1e-9, atol=1e-12)


def test_proposition1_chain_composition():
    """Prop. 1's induction step, checked numerically on two modules: if
    each module's output displacement is bounded for inputs within its
    input ball, the composed displacement is bounded by the chained
    budgets."""
    rng = np.random.default_rng(2)
    from repro.models import build_cnn

    model = build_cnn(2, 4, (3, 6, 6), base_channels=4, rng=rng)
    model.eval()
    seg1 = model.segment(0, 1)
    seg2 = model.segment(1, 2)
    x = rng.uniform(0.3, 0.7, size=(16, 3, 6, 6))
    z1 = seg1(x)

    eps0 = 0.05
    # empirical eps1: max displacement of z1 over random eps0-balls
    disps = []
    for _ in range(20):
        delta = rng.uniform(-eps0, eps0, size=x.shape)
        disps.append(np.linalg.norm((seg1(x + delta) - z1).reshape(len(x), -1), axis=1))
    eps1 = np.max(disps) * 1.01

    # any input perturbation within eps0 must displace z2 by at most the
    # max displacement of z2 over the eps1 ball around z1
    z2 = seg2(z1)
    z2_ball = []
    for _ in range(20):
        d = rng.normal(size=z1.shape)
        d = d / np.linalg.norm(d.reshape(len(x), -1), axis=1).reshape(-1, 1, 1, 1) * eps1
        z2_ball.append(np.linalg.norm((seg2(z1 + d) - z2).reshape(len(x), -1), axis=1))
    # the chain bound is finite and positive — the qualitative content
    assert np.isfinite(np.max(z2_ball))
    delta = rng.uniform(-eps0, eps0, size=x.shape)
    composed = np.linalg.norm(
        (seg2(seg1(x + delta)) - z2).reshape(len(x), -1), axis=1
    )
    # composed displacement stays within the same order as the ball sweep
    assert composed.max() <= 10 * max(np.max(z2_ball), 1e-6)
