"""Documentation cannot rot: config-table completeness + link integrity.

Two contracts:

* ``docs/configuration.md`` documents **every** ``FLConfig`` /
  ``FedProphetConfig`` field and **every** CLI flag — adding a config
  knob without documenting it fails this suite (and the CI ``docs``
  job);
* every relative markdown link in ``README.md`` + ``docs/`` resolves
  (``scripts/check_md_links.py``).
"""

import dataclasses
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser
from repro.core import FedProphetConfig
from repro.flsim import FLConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
CONFIG_DOC = REPO_ROOT / "docs" / "configuration.md"


def _documented_tokens() -> set:
    """Every backtick-quoted token in the configuration reference."""
    text = CONFIG_DOC.read_text()
    return set(re.findall(r"`([^`\n]+)`", text))


def _cli_option_strings() -> set:
    """All ``--flag`` option strings across every subcommand."""
    parser = build_parser()
    options = set()
    stack = [parser]
    while stack:
        p = stack.pop()
        for action in p._actions:
            if action.dest == "help":
                continue
            options.update(s for s in action.option_strings if s.startswith("--"))
            if hasattr(action, "choices") and isinstance(action.choices, dict):
                stack.extend(action.choices.values())  # subparsers
    return options


class TestConfigurationTableComplete:
    def test_doc_exists(self):
        assert CONFIG_DOC.exists(), "docs/configuration.md is missing"

    def test_every_flconfig_field_documented(self):
        documented = _documented_tokens()
        missing = [
            f.name for f in dataclasses.fields(FLConfig) if f.name not in documented
        ]
        assert not missing, (
            f"FLConfig fields missing from docs/configuration.md: {missing}"
        )

    def test_every_fedprophet_field_documented(self):
        documented = _documented_tokens()
        missing = [
            f.name
            for f in dataclasses.fields(FedProphetConfig)
            if f.name not in documented
        ]
        assert not missing, (
            f"FedProphetConfig fields missing from docs/configuration.md: {missing}"
        )

    def test_every_cli_flag_documented(self):
        text = CONFIG_DOC.read_text()
        missing = [flag for flag in _cli_option_strings() if flag not in text]
        assert not missing, (
            f"CLI flags missing from docs/configuration.md: {sorted(missing)}"
        )

    def test_detects_missing_entries(self):
        # The guard itself must bite: a field absent from the doc text
        # must be reported missing (i.e. the check is not vacuous).
        documented = _documented_tokens()
        assert "definitely_not_a_config_field" not in documented


class TestDocsSuitePresent:
    @pytest.mark.parametrize(
        "page",
        ["architecture.md", "async-aggregation.md", "benchmarks.md",
         "configuration.md", "fault-tolerance.md", "threat-model.md"],
    )
    def test_page_exists_and_linked_from_readme(self, page):
        path = REPO_ROOT / "docs" / page
        assert path.exists(), f"docs/{page} is missing"
        readme = (REPO_ROOT / "README.md").read_text()
        assert f"docs/{page}" in readme, f"README does not link docs/{page}"


class TestMarkdownLinks:
    def test_all_links_resolve(self):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "check_md_links.py")],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stdout + result.stderr
