"""Unified task scheduler: groups, deps, overlap, async aggregation.

Load-bearing properties:

* ``FLScheduler`` task groups honour declared dependencies, stream
  completions, and gather in input order with exceptions propagated —
  the drop-in replacement for the ``map`` barrier;
* the default engine (``aggregation_mode="sync"``, overlap off) is
  **bit-identical** to the pre-scheduler output on every backend at
  1/2/4 workers;
* overlapped evaluation (``overlap_eval=True``) reads only the published
  immutable snapshot and reproduces the barrier path's eval stream bit
  for bit;
* asynchronous aggregation respects ``max_staleness``, is
  seed-reproducible, and is deterministic across backends and worker
  counts (simulated-arrival order, never wall-clock order);
  ``max_staleness=0`` is exactly synchronous FedAvg.
"""

import multiprocessing
import threading
import time

import numpy as np
import pytest

from repro.baselines import JointFAT
from repro.baselines.jfat import AsyncMergeEvent
from repro.core import FedProphet, FedProphetConfig, async_merge_schedule, publish_snapshot
from repro.core.aggregator import merge_async_update
from repro.data import make_cifar10_like
from repro.flsim import FLConfig, FLScheduler, RoundExecutor
from repro.models import build_cnn

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
BACKENDS = ["serial", "thread"] + (["process"] if HAS_FORK else [])


def _assert_states_equal(a, b, label=""):
    assert set(a) == set(b)
    for k in a:
        np.testing.assert_array_equal(a[k], b[k], err_msg=f"{label}{k}")


# ---------------------------------------------------------------------------
# FLScheduler unit behaviour
# ---------------------------------------------------------------------------


class TestFLScheduler:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_in_input_order(self, backend):
        sched = FLScheduler(RoundExecutor(backend, max_workers=3))
        group = sched.submit_group("t", lambda i, slot: i * i, range(9))
        assert group.results() == [i * i for i in range(9)]

    def test_empty_group_is_done(self):
        sched = FLScheduler(RoundExecutor("thread", max_workers=2))
        group = sched.submit_group("t", lambda i, s: i, [])
        assert group.done()
        assert group.results() == []

    def test_stream_yields_every_item_exactly_once(self):
        sched = FLScheduler(RoundExecutor("thread", max_workers=3))
        group = sched.submit_group("t", lambda i, slot: i + 100, range(7))
        seen = dict(group.stream())
        assert seen == {i: i + 100 for i in range(7)}

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exceptions_propagate(self, backend):
        sched = FLScheduler(RoundExecutor(backend, max_workers=2))

        def boom(i, slot):
            if i == 2:
                raise RuntimeError("work unit failed")
            return i

        with pytest.raises(RuntimeError, match="work unit failed"):
            sched.submit_group("t", boom, range(5)).results()

    def test_dependent_group_waits_for_dep(self):
        sched = FLScheduler(RoundExecutor("thread", max_workers=2))
        order = []
        lock = threading.Lock()

        def slow(i, slot):
            time.sleep(0.02)
            with lock:
                order.append(("a", i))
            return i

        def fast(i, slot):
            with lock:
                order.append(("b", i))
            return i

        first = sched.submit_group("a", slow, range(3))
        second = sched.submit_group("b", fast, range(3), deps=[first])
        second.results()
        assert first.done()
        # every "a" completion precedes every "b" start
        assert order[:3] == [("a", 0), ("a", 1), ("a", 2)] or all(
            tag == "a" for tag, _ in order[:3]
        )
        assert all(tag == "b" for tag, _ in order[3:])

    def test_dep_on_completed_group_launches_immediately(self):
        sched = FLScheduler(RoundExecutor("serial"))
        first = sched.submit_group("a", lambda i, s: i, range(2))
        assert first.done()
        assert sched.submit_group("b", lambda i, s: -i, range(2), deps=[first]).results() == [0, -1]

    def test_thread_slots_exclusive_within_group(self):
        workers = 3
        sched = FLScheduler(RoundExecutor("thread", max_workers=workers))
        active = set()
        lock = threading.Lock()
        overlaps = []

        def task(i, slot):
            with lock:
                if slot in active:
                    overlaps.append(slot)
                active.add(slot)
            time.sleep(0.005)
            with lock:
                active.discard(slot)
            return slot

        slots = sched.submit_group("t", task, range(12)).results()
        assert not overlaps
        assert set(slots) <= set(range(workers))
        assert sched.slots_for(12) == list(range(workers))

    def test_serial_and_process_use_slot_zero_namespace(self):
        assert FLScheduler(RoundExecutor("serial")).slots_for(5) == [0]
        if HAS_FORK:
            assert FLScheduler(RoundExecutor("process", 2)).slots_for(5) == [0]

    def test_run_group_matches_map(self):
        ex = RoundExecutor("thread", max_workers=2)
        sched = FLScheduler(ex)
        items = list(range(10))
        assert sched.run_group("t", lambda i, s: i * 3, items) == ex.map(
            lambda i, s: i * 3, items
        )

    def test_persistent_pool_reused_across_groups(self):
        ex = RoundExecutor("thread", max_workers=2)
        ex.map(lambda i, s: i, range(4))
        pool = ex.thread_pool
        FLScheduler(ex).run_group("t", lambda i, s: i, range(4))
        assert ex.thread_pool is pool  # one pool across map and scheduler
        ex.close()
        assert ex._thread_pool is None
        ex.close()  # idempotent


# ---------------------------------------------------------------------------
# Published snapshots (double-buffered weights)
# ---------------------------------------------------------------------------


class TestPublishSnapshot:
    def test_snapshot_is_immutable_and_stable(self):
        model = build_cnn(2, 4, (3, 8, 8), base_channels=4, rng=np.random.default_rng(0))
        snap = publish_snapshot(model, version=7)
        assert snap.version == 7
        key = next(iter(snap.state))
        before = snap.state[key].copy()
        with pytest.raises(ValueError):
            snap.state[key][...] = 0.0
        with pytest.raises(TypeError):
            snap.state[key] = None  # mapping proxy rejects writes
        # mutating the live model must not leak into the published view
        for p in model.parameters():
            p.data += 1.0
        np.testing.assert_array_equal(snap.state[key], before)

    def test_replica_loads_snapshot_bit_identically(self):
        model = build_cnn(2, 4, (3, 8, 8), base_channels=4, rng=np.random.default_rng(0))
        snap = publish_snapshot(model)
        replica = build_cnn(2, 4, (3, 8, 8), base_channels=4, rng=np.random.default_rng(9))
        replica.load_state_dict(dict(snap.state))
        _assert_states_equal(model.state_dict(), replica.state_dict())


# ---------------------------------------------------------------------------
# Async merge schedule (unit level)
# ---------------------------------------------------------------------------


class TestAsyncMergeSchedule:
    def test_bound_respected_and_tail_coalesced(self):
        assert async_merge_schedule(5, 2) == [[0], [1], [2, 3, 4]]
        assert async_merge_schedule(3, 10) == [[0], [1], [2]]
        assert async_merge_schedule(4, 0) == [[0, 1, 2, 3]]
        assert async_merge_schedule(0, 3) == []
        for n, s in [(7, 0), (7, 3), (7, 99)]:
            events = async_merge_schedule(n, s)
            assert sorted(i for e in events for i in e) == list(range(n))
            assert len(events) - 1 <= s

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            async_merge_schedule(-1, 0)
        with pytest.raises(ValueError):
            async_merge_schedule(3, -1)

    def test_single_full_event_replaces_server_exactly(self):
        rng = np.random.default_rng(0)
        server = {"w": rng.normal(size=(3, 3)).astype(np.float32)}
        states = [{"w": rng.normal(size=(3, 3)).astype(np.float32)} for _ in range(3)]
        weights = [1.0, 2.0, 3.0]
        alpha = merge_async_update(server, states, weights, sum(weights), staleness=0)
        assert alpha == 1.0
        from repro.flsim.aggregation import weighted_average_states

        np.testing.assert_array_equal(
            server["w"], weighted_average_states(states, weights)["w"]
        )

    def test_stale_event_attenuated(self):
        server = {"w": np.zeros(2, dtype=np.float32)}
        states = [{"w": np.ones(2, dtype=np.float32)}]
        alpha = merge_async_update(server, states, [1.0], 2.0, staleness=1)
        assert alpha == pytest.approx(0.25)  # (1/2) / (1 + 1)
        np.testing.assert_allclose(server["w"], 0.25)


# ---------------------------------------------------------------------------
# Experiment-level determinism
# ---------------------------------------------------------------------------


def _task():
    return make_cifar10_like(image_size=8, train_per_class=20, test_per_class=10, seed=0)


def _jfat(backend="serial", workers=None, **overrides):
    defaults = dict(
        num_clients=4, clients_per_round=3, local_iters=2, batch_size=8,
        lr=0.02, rounds=3, train_pgd_steps=2, eval_pgd_steps=2,
        eval_every=1, eval_max_samples=24, seed=0,
        executor_backend=backend, round_parallelism=workers,
    )
    defaults.update(overrides)
    return JointFAT(
        _task(),
        lambda rng: build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng),
        FLConfig(**defaults),
    )


class TestSyncDeterminism:
    """Default mode: scheduler output == PR 3 barrier output, bit for bit."""

    @pytest.fixture(scope="class")
    def reference(self):
        exp = _jfat("serial", workers=1)
        history = exp.run()
        return exp, history

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bit_identical_across_backends_and_workers(self, backend, workers, reference):
        ref, ref_history = reference
        exp = _jfat(backend, workers=workers)
        history = exp.run()
        _assert_states_equal(
            ref.global_model.state_dict(), exp.global_model.state_dict()
        )
        assert len(history) == len(ref_history)
        for a, b in zip(ref_history, history):
            assert a.eval.as_dict() == b.eval.as_dict()
            assert a.sim_time_s == b.sim_time_s


class TestOverlappedEvaluation:
    @pytest.fixture(scope="class")
    def barrier(self):
        exp = _jfat("serial")
        return exp, exp.run()

    @pytest.mark.parametrize("backend,workers", [("serial", 1), ("thread", 2), ("thread", 4)])
    def test_overlap_matches_barrier_bitwise(self, backend, workers, barrier):
        ref, ref_history = barrier
        exp = _jfat(backend, workers=workers, overlap_eval=True)
        history = exp.run()
        assert all(r.eval is not None for r in history)
        for a, b in zip(ref_history, history):
            assert a.eval.as_dict() == b.eval.as_dict()
            assert a.eval.attack_accs == b.eval.attack_accs
        _assert_states_equal(
            ref.global_model.state_dict(), exp.global_model.state_dict()
        )
        exp.close()

    def test_overlap_publishes_each_eval_round(self, barrier):
        exp = _jfat("thread", workers=2, overlap_eval=True, rounds=2)
        exp.run()
        assert exp._published is not None
        assert exp._published.version == 1  # last eval round's snapshot
        assert exp._pending_eval is None  # drained at run() exit
        # overlap replicas never alias the live model
        assert all(m is not exp.global_model for m in exp._overlap_models.values())
        exp.close()

    def test_prophet_rejects_overlap(self):
        with pytest.raises(ValueError, match="overlap_eval"):
            FedProphet(
                _task(),
                lambda rng: build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng),
                FedProphetConfig(
                    num_clients=2, clients_per_round=1, rounds=1, overlap_eval=True
                ),
            )


class TestAsyncAggregation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            FLConfig(aggregation_mode="lazy")
        with pytest.raises(ValueError):
            FLConfig(max_staleness=-1)

    def test_prophet_accepts_async_but_rejects_cross_round_pipeline(self):
        # PR 5: FedProphet speaks async (per-module within-round merges)
        # but cascade_eval gates every round, so depth > 1 must raise.
        builder = lambda rng: build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng)
        exp = FedProphet(
            _task(), builder,
            FedProphetConfig(
                num_clients=2, clients_per_round=1, rounds=1,
                aggregation_mode="async",
            ),
        )
        assert exp.supports_async_aggregation
        with pytest.raises(ValueError, match="pipeline_depth"):
            FedProphet(
                _task(), builder,
                FedProphetConfig(
                    num_clients=2, clients_per_round=1, rounds=1,
                    aggregation_mode="async", pipeline_depth=2,
                ),
            )

    def test_staleness_bound_respected_and_logged(self):
        exp = _jfat(aggregation_mode="async", max_staleness=1, eval_every=0)
        exp.run()
        assert exp.async_log, "async rounds must log their merge events"
        assert all(isinstance(e, AsyncMergeEvent) for e in exp.async_log)
        assert max(e.staleness for e in exp.async_log) <= 1
        # each round's events cover every sampled client exactly once
        per_round = {}
        for e in exp.async_log:
            per_round.setdefault(e.round, []).extend(e.client_ids)
        for cids in per_round.values():
            assert len(cids) == len(set(cids)) == exp.config.clients_per_round

    def test_seed_reproducible_at_fixed_worker_count(self):
        a = _jfat("thread", workers=2, aggregation_mode="async", max_staleness=2)
        b = _jfat("thread", workers=2, aggregation_mode="async", max_staleness=2)
        a.run(), b.run()
        _assert_states_equal(a.global_model.state_dict(), b.global_model.state_dict())
        assert a.async_log == b.async_log

    @pytest.mark.parametrize("backend,workers", [("serial", 1), ("thread", 2), ("thread", 4)])
    def test_deterministic_across_backends_and_workers(self, backend, workers):
        ref = _jfat("serial", aggregation_mode="async", max_staleness=2)
        ref.run()
        exp = _jfat(backend, workers=workers, aggregation_mode="async", max_staleness=2)
        exp.run()
        # simulated-arrival merge order makes async independent of
        # wall-clock scheduling: any backend/worker count is bit-identical
        _assert_states_equal(
            ref.global_model.state_dict(), exp.global_model.state_dict()
        )
        assert ref.async_log == exp.async_log

    def test_zero_staleness_is_exactly_sync(self):
        sync = _jfat(eval_every=0)
        sync.run()
        async0 = _jfat(aggregation_mode="async", max_staleness=0, eval_every=0)
        async0.run()
        _assert_states_equal(
            sync.global_model.state_dict(), async0.global_model.state_dict()
        )
        assert all(e.alpha == 1.0 and e.staleness == 0 for e in async0.async_log)

    def test_async_differs_from_sync_when_stale(self):
        # sanity that the async path actually changes the aggregation when
        # staleness attenuation kicks in (it is not a silent no-op)
        sync = _jfat(eval_every=0)
        sync.run()
        stale = _jfat(aggregation_mode="async", max_staleness=2, eval_every=0)
        stale.run()
        diff = sum(
            float(np.abs(a - b).max())
            for a, b in zip(
                sync.global_model.state_dict().values(),
                stale.global_model.state_dict().values(),
            )
        )
        assert diff > 0
