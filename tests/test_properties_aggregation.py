"""Property tests tying the aggregation rules together.

The key equivalence: when every client trains the *full* model, masked
partial averaging must reduce exactly to FedAvg — Eq. 16 generalises
McMahan's rule, it does not replace it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.subnet import extract_submodel, scatter_submodel_state
from repro.flsim.aggregation import fedavg, masked_partial_average
from repro.models import build_cnn

RNG = np.random.default_rng(0)


@given(st.integers(0, 2**31 - 1), st.integers(1, 4))
@settings(max_examples=15, deadline=None)
def test_full_coverage_partial_average_equals_fedavg(seed, n_clients):
    rng = np.random.default_rng(seed)
    model = build_cnn(2, 4, (3, 8, 8), base_channels=4, rng=rng)
    global_state = model.state_dict()

    states, sizes, updates = [], [], []
    for k in range(n_clients):
        local = {key: v + rng.normal(size=v.shape) for key, v in global_state.items()}
        size = int(rng.integers(1, 100))
        states.append(local)
        sizes.append(size)
        mask = {key: np.ones_like(v) for key, v in global_state.items()}
        updates.append((local, mask, float(size)))

    via_fedavg = fedavg(states, sizes)
    via_partial = masked_partial_average(global_state, updates)
    for key in global_state:
        np.testing.assert_allclose(via_partial[key], via_fedavg[key], atol=1e-10)


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_scatter_of_unmodified_submodel_is_lossless(seed):
    """Extract, scatter back untouched: the covered region reproduces the
    global values exactly and the mask marks precisely that region."""
    rng = np.random.default_rng(seed)
    model = build_cnn(2, 4, (3, 8, 8), base_channels=8, rng=rng)
    ratio = float(rng.uniform(0.3, 1.0))
    strategy = ["static", "random", "rolling"][int(rng.integers(0, 3))]
    piece = extract_submodel(model, ratio, strategy, round_idx=int(rng.integers(0, 10)), rng=rng)
    global_state = model.state_dict()
    scattered, mask = scatter_submodel_state(
        piece.model.state_dict(), piece.index_map, global_state
    )
    for key in piece.index_map:
        covered = mask[key] > 0
        np.testing.assert_allclose(
            scattered[key][covered], global_state[key][covered], atol=1e-12
        )
        assert not np.any(scattered[key][~covered])


@given(st.floats(0.26, 1.0), st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_submodel_param_fraction_tracks_ratio(ratio, seed):
    """Parameter count of a width-r sub-model is ~r^2 of the full model's
    conv weights (both in and out channels shrink)."""
    model = build_cnn(2, 4, (3, 8, 8), base_channels=16, rng=np.random.default_rng(seed))
    piece = extract_submodel(model, ratio, "static")
    frac = piece.model.num_parameters() / model.num_parameters()
    assert frac <= 1.0 + 1e-9
    # not tighter than r^2/4, not looser than ~r (classifier keeps outputs)
    assert ratio**2 / 4 <= frac <= max(ratio * 1.6, 0.35)
